//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this miniature crate supplies the slice of the criterion 0.5 API
//! the workspace's benches use: [`Criterion::benchmark_group`] with
//! `warm_up_time` / `measurement_time` / `sample_size`, `bench_function`
//! and `bench_with_input`, [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], and the `criterion_group!` / `criterion_main!`
//! macros (the benches are built with `harness = false`).
//!
//! It is a *timing harness*, not a statistics engine: each benchmark is
//! warmed briefly, then timed over an adaptive iteration count, and a
//! single mean ns/iter line is printed. There is no outlier analysis,
//! HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from
/// deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Things accepted as the first argument of `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.full
    }
}

/// Timing state handed to the benchmark closure.
pub struct Bencher {
    measurement: Duration,
    /// Mean nanoseconds per iteration recorded by the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming it up, then running an adaptive
    /// iteration count sized to the group's measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call also yields a per-iteration cost estimate.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        // Size the measured batch to roughly fill the measurement
        // window, clamped so even a misconfigured group stays quick.
        let budget = self.measurement.min(Duration::from_millis(200));
        let iters = (budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration (retained for API compatibility; the
    /// stub warms up with a single probe call instead).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window used to size iteration counts.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the sample count (retained for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id_string();
        let mut b = Bencher {
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id_string();
        let mut b = Bencher {
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        println!(
            "{}/{:<40} {:>12.1} ns/iter  ({} iters)",
            self.name, id, b.mean_ns, b.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let measurement = self.default_measurement;
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: Duration::from_millis(1),
            measurement,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub_smoke");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(2));
        g.sample_size(5);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_with_input(BenchmarkId::new("mul", 7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
