//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this miniature crate supplies the slice of the proptest 1.x API
//! the workspace's property tests use: the [`strategy::Strategy`] trait
//! with `prop_map`, `any::<T>()` for primitives / arrays / tuples,
//! integer-range strategies, a small regex-subset string strategy (the
//! `"[a-z][a-z0-9]{0,6}"` style patterns the tests rely on),
//! [`collection::vec`], and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted for a stub:
//! cases are generated from a fixed seed (fully deterministic runs, no
//! failure persistence files), there is no shrinking, and failed
//! assertions panic immediately instead of being replayed.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration (subset of `proptest::test_runner`).

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; a quarter of that keeps the
            // deterministic stub runner fast while still exercising
            // every strategy widely.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single property case did not pass: a genuine failure, or
    /// a rejection from `prop_assume!` (which merely skips the case).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input does not satisfy a precondition; skip it.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic SplitMix64 source backing every strategy.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded for reproducible case streams.
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            (self.next_u64() as u128) % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform over the whole domain of `T`; used by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value from `rng`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// One parsed element of a regex-subset pattern: a set of candidate
    /// characters and the repetition range it applies to.
    #[derive(Clone, Debug)]
    struct RegexAtom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the regex subset the workspace tests use: literal
    /// characters and `[a-z0-9]`-style classes, each optionally
    /// followed by `{n}` or `{m,n}`.
    fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                assert!(
                    !"(){}|*+?.\\^$".contains(c),
                    "regex feature {c:?} not supported by the proptest stub (pattern {pattern:?})"
                );
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repeat lower bound"),
                        n.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
            atoms.push(RegexAtom { choices, min, max });
        }
        atoms
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_regex_subset(self) {
                let reps = atom.min + rng.below((atom.max - atom.min + 1) as u128) as usize;
                for _ in 0..reps {
                    out.push(atom.choices[rng.below(atom.choices.len() as u128) as usize]);
                }
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Per-test deterministic seed so distinct properties see
            // distinct streams even with identical strategies.
            let seed = ::std::line!() as u64 ^ 0x1971_0645;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::seeded(seed.wrapping_add(case as u64));
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                );
                // The closure lets prop_assume! skip a case and
                // `Err(TestCaseError::fail(..))` report one; plain
                // assertion failures panic directly.
                #[allow(unused_mut)]
                let mut one_case = || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match one_case() {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(e) => {
                        ::std::panic!("proptest case {case} failed: {e}")
                    }
                }
            }
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        ::std::assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        ::std::assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        ::std::assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        ::std::assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        ::std::assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::seeded(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = Strategy::generate(&"[a-z]{1,5}", &mut rng);
            assert!((1..=5).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::seeded(11);
        let strat = crate::collection::vec(0u32..10, 1..20);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro handles doc comments, tuples, maps, and assume.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u8..8, 0u8..8),
            flag in any::<bool>(),
            v in crate::collection::vec(any::<u64>(), 1..4),
        ) {
            prop_assume!(a != 7);
            prop_assert!(a < 8 && b < 8);
            prop_assert_eq!(v.len(), v.len());
            let _ = flag;
        }
    }
}
