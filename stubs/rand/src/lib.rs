//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this miniature crate supplies the (small) slice of the rand 0.8
//! API the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is SplitMix64-seeded xoshiro256**, so streams are of good
//! statistical quality and — unlike the real `StdRng` — stable across
//! versions, which suits the deterministic fuzz tests that depend on it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Uniform: Sized {
    /// Draws a uniform value from `rng`.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for bool {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of an inferred type.
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits, the standard conversion to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`; unlike the real one, the stream is stable forever).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = r.gen_range(0..8);
            assert!(v < 8);
            let w: u32 = r.gen_range(5..=10);
            assert!((5..=10).contains(&w));
            let s: i64 = r.gen_range(-4..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
