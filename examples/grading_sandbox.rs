//! The grading sandbox from the paper's "Use of Rings": "Ring 6 of a
//! process might be used, for example, to provide a suitably isolated
//! environment for student programs being evaluated by a grading
//! program executing in ring 4."
//!
//! The student program runs in ring 6: it can compute and write its
//! answer where the grader allows, but it cannot call supervisor gates
//! (their gate extension ends at ring 5) and it cannot touch the
//! grader's ring-4 records.
//!
//! Run with: `cargo run --example grading_sandbox`

use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::conventions::segs;
use multiring::os::System;

fn main() {
    let mut sys = System::boot();
    let pid = sys.login("student");

    // The grader's private records: ring-4 brackets.
    let records = sys.install_data(pid, Ring::R4, Ring::R4, &[Word::new(0o777); 8], 16);
    // The answer sheet the student may write: brackets end at ring 6.
    let answers = sys.install_data(pid, Ring::R6, Ring::R6, &[Word::ZERO; 8], 16);

    // Student program (ring 6): compute 6 * 7, store the answer, then
    // try two forbidden things — reading the grader's records and
    // calling a supervisor gate.
    let assignment = format!(
        "
        eap pr4, ansp,*
        lda =6
        mpy =7
        sta pr4|0           ; legitimate: the answer sheet
        eap pr5, recp,*
        lda pr5|0           ; forbidden: the grader's records
        drl 0o777
ansp:   its 6, {ans}, 0
recp:   its 6, {rec}, 0
",
        ans = answers.segno,
        rec = records.segno,
    );
    let code = sys.install_code(pid, Ring::R6, Ring::R6, 0, &assignment);
    let exit = sys.run_user(pid, code.segno, 0, Ring::R6, 1_000);
    let reason = sys.state.borrow().processes[pid].aborted.clone().unwrap();
    println!("student run: {exit:?}");
    println!("  snooping attempt: {reason}");
    assert!(reason.contains("access violation"));

    // The answer landed; the records were never readable.
    let asdw = sys.read_sdw(pid, answers.segno);
    let answer = sys.machine.phys().peek(asdw.addr).unwrap();
    println!("  answer sheet[0] = {}", answer.raw());
    assert_eq!(answer.raw(), 42);

    // A second student tries to call the supervisor directly from
    // ring 6: the gate extension (rings <= 5) refuses the CALL itself.
    let mut sys = System::boot();
    let pid = sys.login("student2");
    let cheat = format!(
        "
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0
ret0:   drl 0o777
gatep:  its 6, {hcs}, 0
",
        hcs = segs::HCS,
    );
    let code = sys.install_code(pid, Ring::R6, Ring::R6, 0, &cheat);
    sys.run_user(pid, code.segno, 0, Ring::R6, 1_000);
    let reason = sys.state.borrow().processes[pid].aborted.clone().unwrap();
    println!("supervisor call from ring 6: {reason}");
    assert!(reason.contains("gate extension"));

    // The grader (ring 4) reads the answer and grades it — ring 4 is
    // within the answer sheet's read bracket [0,6].
    let mut sys = System::boot();
    let pid = sys.login("grader");
    let answers = sys.install_data(pid, Ring::R6, Ring::R6, &[Word::new(42); 1], 16);
    let grader = format!(
        "
        eap pr4, ansp,*
        lda pr4|0
        cmpa =42
        tze pass
        lda =0
        tra out
pass:   lda =100
out:    drl 0o777
ansp:   its 4, {ans}, 0
",
        ans = answers.segno,
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &grader);
    sys.run_user(pid, code.segno, 0, Ring::R4, 1_000);
    println!("grader's score for the student: {}", sys.machine.a().raw());
    assert_eq!(sys.machine.a().raw(), 100);
}
