//! User self-protection (the paper's "Use of Rings"): running an
//! untested program in ring 5 so its addressing errors cannot damage
//! the segments accessible from ring 4.
//!
//! The same buggy program — it scribbles through a wild pointer — is
//! run twice: once in ring 4, where it corrupts a ring-4 data segment;
//! then in ring 5, where the ring mechanisms catch the wild write
//! before any damage.
//!
//! Run with: `cargo run --example debug_ring5`

use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::System;

/// The buggy program: writes 0 through a pointer it "computed wrong" —
/// it lands in valuable ring-4 data.
fn buggy_program(victim_segno: u32) -> String {
    format!(
        "
        eap pr4, wildp,*
        stz pr4|5           ; the wild store
        drl 0o777
wildp:  its 4, {victim_segno}, 0
"
    )
}

fn main() {
    // --- Run in ring 4: the bug silently destroys data ---------------
    let mut sys = System::boot();
    let pid = sys.login("alice");
    let valuable = sys.install_data(
        pid,
        Ring::R4,
        Ring::R5, // readable from ring 5, writable only through ring 4
        &[Word::new(7); 16],
        16,
    );
    let src = buggy_program(valuable.segno);
    // The untested program is certified for rings 4-5 (execute bracket
    // [4,5]) so it can be tried in either ring.
    let base = {
        let out = ring_asm::assemble(&src).unwrap();
        let base = sys.alloc.borrow_mut().alloc(out.len().max(1)).unwrap();
        for (i, w) in out.words.iter().enumerate() {
            sys.machine
                .phys_mut()
                .poke(base.wrapping_add(i as u32), *w)
                .unwrap();
        }
        base
    };
    let sdw = multiring::core::sdw::SdwBuilder::new()
        .rings(Ring::R4, Ring::R5, Ring::R5)
        .read(true)
        .execute(true)
        .addr(base)
        .bound_words(32)
        .build();
    let code_segno = sys.state.borrow_mut().processes[pid].alloc_segno().unwrap();
    sys.install_sdw(pid, code_segno, &sdw);

    let exit = sys.run_user(pid, code_segno, 0, Ring::R4, 1_000);
    let vsdw = sys.read_sdw(pid, valuable.segno);
    let after = sys.machine.phys().peek(vsdw.addr.wrapping_add(5)).unwrap();
    println!(
        "ring 4 run: {exit:?}; valuable[5] = {} (was 7)",
        after.raw()
    );
    assert_eq!(after, Word::ZERO, "the bug corrupted the data in ring 4");

    // --- Run in ring 5: the wild store is refused ---------------------
    let mut sys = System::boot();
    let pid = sys.login("alice");
    let valuable = sys.install_data(pid, Ring::R4, Ring::R5, &[Word::new(7); 16], 16);
    let src = buggy_program(valuable.segno);
    let out = ring_asm::assemble(&src).unwrap();
    let base = sys.alloc.borrow_mut().alloc(out.len().max(1)).unwrap();
    for (i, w) in out.words.iter().enumerate() {
        sys.machine
            .phys_mut()
            .poke(base.wrapping_add(i as u32), *w)
            .unwrap();
    }
    let sdw = multiring::core::sdw::SdwBuilder::new()
        .rings(Ring::R4, Ring::R5, Ring::R5)
        .read(true)
        .execute(true)
        .addr(base)
        .bound_words(32)
        .build();
    let code_segno = sys.state.borrow_mut().processes[pid].alloc_segno().unwrap();
    sys.install_sdw(pid, code_segno, &sdw);

    let exit = sys.run_user(pid, code_segno, 0, Ring::R5, 1_000);
    let vsdw = sys.read_sdw(pid, valuable.segno);
    let after = sys.machine.phys().peek(vsdw.addr.wrapping_add(5)).unwrap();
    let reason = sys.state.borrow().processes[pid].aborted.clone().unwrap();
    println!(
        "ring 5 run: {exit:?}; valuable[5] = {} (still 7)",
        after.raw()
    );
    println!("caught: {reason}");
    assert_eq!(after.raw(), 7, "ring 5 debugging protected the data");
    assert!(reason.contains("access violation"));
    println!(
        "the same program, the same bug — ring 5 turned silent corruption into a caught fault"
    );
}
