//! A user-constructed protected subsystem (the paper's "Use of Rings"):
//! alice lets bob at her sensitive data *only* through her ring-2 audit
//! program. Bob's direct references fault; his gated calls succeed and
//! leave an audit trail — and no supervisor code was involved or
//! audited for inclusion.
//!
//! Run with: `cargo run --example protected_subsystem`

use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::cpu::machine::RunExit;
use multiring::os::subsystems;
use multiring::os::System;

fn main() {
    // --- Attempt 1: bob reads the sensitive data directly ------------
    let mut sys = System::boot();
    sys.enable_metrics();
    let pid = sys.login("bob");
    let sensitive: Vec<Word> = (0..8).map(|i| Word::new(1000 + i)).collect();
    let sub = subsystems::install(&mut sys, pid, "alice", &sensitive);
    println!(
        "alice's data is segment {} (brackets end at ring 2); audit gates at segment {}",
        sub.data_segno, sub.gate_segno
    );

    let direct = format!(
        "
        eap pr4, datap,*
        lda pr4|3           ; direct reference from ring 4
        drl 0o777
datap:  its 4, {}, 0
",
        sub.data_segno
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &direct);
    let exit = sys.run_user(pid, code.segno, 0, Ring::R4, 1_000);
    let reason = sys.state.borrow().processes[pid].aborted.clone().unwrap();
    println!("direct access from ring 4: {exit:?} — process aborted: {reason}");
    assert!(reason.contains("access violation"));

    // --- Attempt 2: bob calls through alice's audit gate --------------
    let snap = sys.metrics_snapshot();
    println!(
        "metrics: {} faults; segment {} saw {} violation(s) out of {} read attempt(s)",
        snap.faults_total,
        sub.data_segno,
        snap.heatmap
            .iter()
            .find(|(segno, _)| *segno == sub.data_segno)
            .map_or(0, |(_, h)| h.violations),
        snap.heatmap
            .iter()
            .find(|(segno, _)| *segno == sub.data_segno)
            .map_or(0, |(_, h)| h.reads),
    );

    let mut sys = System::boot();
    sys.enable_metrics();
    let pid = sys.login("bob");
    let sub = subsystems::install(&mut sys, pid, "alice", &sensitive);
    let mut data = vec![Word::new(3)]; // index to read
    data.resize(64, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 64);
    let gated = format!(
        "
        eap pr1, args
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0          ; ring 4 -> ring 2, through the gate
ret0:   drl 0o777
gatep:  its 4, {gseg}, {read}
args:   its 4, {sc}, 0      ; arg0: index
        its 4, {sc}, 10     ; arg1: result
",
        gseg = sub.gate_segno,
        read = subsystems::gate::READ,
        sc = scratch.segno,
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &gated);
    let exit = sys.run_user(pid, code.segno, 0, Ring::R4, 10_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(sys.machine.a().raw(), 0, "gate call succeeded");

    let sdw = sys.read_sdw(pid, scratch.segno);
    let value = sys.machine.phys().peek(sdw.addr.wrapping_add(10)).unwrap();
    println!("gated read returned {}", value.raw());
    assert_eq!(value.raw(), 1003);

    for rec in sys.state.borrow().audit_log.iter() {
        println!(
            "audit: user {} (ring {}) did {}",
            rec.user, rec.caller_ring, rec.operation
        );
    }
    assert_eq!(sys.state.borrow().audit_log.len(), 1);
    assert_eq!(
        sys.stats().gate_calls_hcs,
        0,
        "no supervisor gate was involved — the subsystem protects itself"
    );
    println!("supervisor involvement: none (rings 2-3 protect user subsystems by themselves)");

    // The gated run, as the observability layer saw it: the crossings
    // are hardware call/returns into ring 2 and back, with no trap.
    let snap = sys.metrics_snapshot();
    let crossings: Vec<String> = snap
        .crossings
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, v)| format!("{v} {k}"))
        .collect();
    println!(
        "metrics: crossings {} ({} ring changes), {} fault(s), sdw cache {:.0}% hit",
        crossings.join(", "),
        snap.ring_changes,
        snap.faults_total,
        100.0 * snap.sdw_cache.hit_ratio(),
    );
}
