//! The typewriter I/O example from the paper's Conclusions: "only the
//! functions of copying data in and out of shared buffer areas and of
//! executing the privileged instruction to initiate I/O channel
//! operation need to be protected", yet the 645-era package put the
//! whole thing — code conversion included — in the most privileged
//! ring.
//!
//! This example runs the same message through both designs on the
//! simulated hardware, spins until the channel completion interrupt
//! lands, and prints what the typewriter typed plus the ring-0 work
//! each design incurred.
//!
//! Run with: `cargo run --example typewriter`

use multiring::core::addr::SegAddr;
use multiring::core::registers::PtrReg;
use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::cpu::native::NativeAction;
use multiring::os::conventions::{gate_addr, hcs, segs, PR_RP};
use multiring::os::driver::gen_call_sequence;
use multiring::os::services;
use multiring::os::strings::encode_string;
use multiring::os::System;

const MESSAGE: &str = "GREETINGS FROM 1971";

/// Appends a spin-wait to the generated call sequence so the channel
/// completion interrupt is serviced before the program exits.
fn with_spin(seq: String) -> String {
    seq.replace(
        &format!("        drl 0o{:o}\n", multiring::os::traps::EXIT_CODE),
        &format!(
            "
        lda =2000           ; spin long enough for the channel
spin:   sba =1
        tnz spin
        drl 0o{:o}
",
            multiring::os::traps::EXIT_CODE
        ),
    )
}

fn run_variant(split: bool) -> (String, u64, u64) {
    let mut sys = System::boot();
    let pid = sys.login("alice");
    let mut data = encode_string(MESSAGE);
    data.pop();
    let count_pos = data.len() as u32;
    let len = MESSAGE.len() as u32;
    data.push(Word::new(u64::from(len)));
    let out_pos = data.len() as u32;
    data.resize(data.len() + len as usize + 8, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 512);

    let calls: Vec<(SegAddr, Vec<SegAddr>)> = if split {
        // Conversion runs as an ordinary ring-4 library; only the
        // copy + SIO primitive is protected.
        let lib = sys.install_native(pid, Ring::R4, Ring::R4, 1, move |m, _| {
            let ap = m.pr(1);
            let src = m.arg_pointer(ap, 0)?;
            let cnt_ptr = m.arg_pointer(ap, 1)?;
            let cnt = m.read_validated(cnt_ptr)?.raw() as u32;
            let dst = m.arg_pointer(ap, 2)?;
            for i in 0..cnt {
                let raw = m.read_validated(PtrReg::new(
                    src.ring,
                    SegAddr::new(src.addr.segno, src.addr.wordno.wrapping_add(i)),
                ))?;
                m.charge(services::cost::CONVERT_PER_CHAR);
                m.write_validated(
                    PtrReg::new(
                        dst.ring,
                        SegAddr::new(dst.addr.segno, dst.addr.wordno.wrapping_add(i)),
                    ),
                    services::tty_convert(raw),
                )?;
            }
            m.set_a(Word::ZERO);
            Ok(NativeAction::Return { via: m.pr(PR_RP) })
        });
        vec![
            (
                SegAddr::from_parts(lib, 0).unwrap(),
                vec![
                    SegAddr::from_parts(scratch.segno, 0).unwrap(),
                    SegAddr::from_parts(scratch.segno, count_pos).unwrap(),
                    SegAddr::from_parts(scratch.segno, out_pos).unwrap(),
                ],
            ),
            (
                gate_addr(segs::HCS, hcs::TTY_CONNECT),
                vec![
                    SegAddr::from_parts(scratch.segno, out_pos).unwrap(),
                    SegAddr::from_parts(scratch.segno, count_pos).unwrap(),
                ],
            ),
        ]
    } else {
        vec![(
            gate_addr(segs::HCS, hcs::TTY_WRITE),
            vec![
                SegAddr::from_parts(scratch.segno, 0).unwrap(),
                SegAddr::from_parts(scratch.segno, count_pos).unwrap(),
            ],
        )]
    };
    let seq = with_spin(gen_call_sequence(Ring::R4, &calls));
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &seq);
    sys.prepare(pid, code.segno, 0, Ring::R4);
    let before = sys.machine.cycles();
    sys.machine.run(100_000);
    let cycles = sys.machine.cycles() - before;
    let ring0 = if split {
        u64::from(len) * services::cost::COPY_PER_WORD
    } else {
        u64::from(len) * (services::cost::CONVERT_PER_CHAR + services::cost::COPY_PER_WORD)
    };
    assert_eq!(
        sys.stats().io_completions,
        1,
        "the completion interrupt was serviced"
    );
    (sys.tty_printed(), cycles, ring0)
}

fn main() {
    let (mono_out, mono_cycles, mono_r0) = run_variant(false);
    let (split_out, split_cycles, split_r0) = run_variant(true);
    println!("typewriter output (monolithic): {mono_out:?}");
    println!("typewriter output (split):      {split_out:?}");
    assert_eq!(mono_out, MESSAGE);
    assert_eq!(split_out, MESSAGE);
    println!();
    println!("            total cycles   ring-0 work");
    println!("monolithic  {mono_cycles:>12}   {mono_r0:>11}");
    println!("split       {split_cycles:>12}   {split_r0:>11}");
    println!(
        "\nthe split design cuts maximum-privilege work {:.1}x while total \
         cost stays comparable — the interface freedom cheap crossings buy",
        mono_r0 as f64 / split_r0 as f64
    );
}
