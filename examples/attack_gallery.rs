//! An attack gallery: the classic domain-crossing attacks, each
//! attempted against the simulated hardware, each stopped by a
//! different mechanism from the paper.
//!
//! Run with: `cargo run --example attack_gallery`

use multiring::core::effective::EffectiveRingRules;
use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::conventions::segs;
use multiring::os::System;
use ring_bench::tables::argument_attack_succeeds;

fn run_attack(name: &str, src: &str, mechanism: &str) -> multiring::metrics::MetricsSnapshot {
    let mut sys = System::boot();
    sys.enable_metrics();
    let pid = sys.login("mallory");
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, src);
    sys.run_user(pid, code.segno, 0, Ring::R4, 2_000);
    let verdict = sys.state.borrow().processes[pid]
        .aborted
        .clone()
        .unwrap_or_else(|| "STILL RUNNING".into());
    assert_ne!(verdict, "exit", "attack must not complete cleanly");
    println!("[blocked] {name}\n          fault: {verdict}\n          mechanism: {mechanism}\n");
    sys.metrics_snapshot()
}

fn main() {
    println!("every attack below runs as real machine code in ring 4\n");
    let mut snaps = Vec::new();

    snaps.push(run_attack(
        "read supervisor data directly",
        &format!(
            "
        eap pr4, p,*
        lda pr4|0
        drl 0o777
p:      its 4, {}, 0
",
            segs::SUP_DATA
        ),
        "read bracket [0, R2] in the SDW (Fig. 6)",
    ));

    snaps.push(run_attack(
        "write the trap vectors",
        &format!(
            "
        eap pr4, p,*
        stz pr4|0
        drl 0o777
p:      its 4, {}, 0
",
            segs::TRAP
        ),
        "write bracket [0, R1] in the SDW (Fig. 6)",
    ));

    snaps.push(run_attack(
        "jump into the middle of the supervisor (skip the gate)",
        &format!(
            "
        eap pr3, p,*
        tra pr3|0
        drl 0o777
p:      its 4, {}, 12
",
            segs::HCS
        ),
        "ordinary transfers cannot change the ring; the advance check \
         refuses execution outside the bracket (Fig. 7)",
    ));

    snaps.push(run_attack(
        "CALL a non-gate word of the supervisor",
        &format!(
            "
        eap pr2, r
        eap pr3, p,*
        call pr3|0
r:      drl 0o777
p:      its 4, {}, 12
",
            segs::HCS
        ),
        "the gate list: transfers from above the bracket must enter at \
         words 0..SDW.GATE (Fig. 8)",
    ));

    snaps.push(run_attack(
        "forge a RETURN into ring 1",
        &format!(
            "
        eap pr3, p,*
        return pr3|0
        drl 0o777
p:      its 0, {}, 0        ; forged ring field: 0
",
            segs::RING1
        ),
        "the effective ring is a running max seeded with the ring of \
         execution; the downward return traps and the supervisor finds \
         no matching return gate (Fig. 9 + software)",
    ));

    // The confused-deputy argument attack, with and without the
    // effective-ring rules (the T6 ablation).
    let blocked = !argument_attack_succeeds(EffectiveRingRules::PAPER);
    let would_succeed = argument_attack_succeeds(EffectiveRingRules::NO_IND_TRACKING);
    assert!(blocked && would_succeed);
    println!(
        "[blocked] confused-deputy argument pointer at ring-1 data\n          \
         mechanism: effective-ring folding over indirect words and the\n          \
         write-bracket top of every segment they pass through (Fig. 5)\n          \
         (ablating those rules, as in the 1969 thesis, the same attack succeeds)\n"
    );

    // Privilege escalation by ACL: mallory grants herself ring-2
    // brackets — refused by the sole-occupant rule in the supervisor.
    let mut sys = System::boot();
    sys.login("mallory");
    let mut acl = multiring::os::acl::Acl::new();
    let grab = multiring::os::acl::AclEntry::new(
        "mallory",
        multiring::os::acl::Modes::RW,
        (Ring::R2, Ring::R2, Ring::R2),
        0,
    )
    .unwrap();
    let refused = acl.set(grab, Ring::R4).is_err();
    assert!(refused);
    println!(
        "[blocked] grant yourself ring-2 brackets via set_acl\n          \
         mechanism: the sole-occupant rule — a program executing in ring n\n          \
         cannot specify R1, R2 or R3 below n\n"
    );

    let _ = Word::ZERO;
    println!("7 attacks, 7 distinct mechanisms, 0 successes");

    // What the observability layer recorded across the machine-code
    // attacks: every blocked attempt shows up as a fault, and the
    // heatmap names the segments that were probed.
    let faults: u64 = snaps.iter().map(|s| s.faults_total).sum();
    let violations: u64 = snaps
        .iter()
        .flat_map(|s| s.heatmap.iter())
        .map(|(_, h)| h.violations)
        .sum();
    let instructions: u64 = snaps.iter().map(|s| s.instructions).sum();
    let mut probed: Vec<u32> = snaps
        .iter()
        .flat_map(|s| s.heatmap.iter())
        .filter(|(_, h)| h.violations > 0)
        .map(|(segno, _)| *segno)
        .collect();
    probed.sort_unstable();
    probed.dedup();
    println!(
        "\nmetrics: {instructions} attack instructions, {faults} faults, \
         {violations} bracket violations (segments probed: {probed:?})"
    );
}
