//! Quickstart: boot a system, log in, and watch a ring-4 program make a
//! protected supervisor call through a hardware gate — with no trap.
//!
//! Run with: `cargo run --example quickstart`

use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::acl::{Acl, AclEntry, Modes};
use multiring::os::conventions::{hcs, segs};
use multiring::os::strings::encode_string;
use multiring::os::System;

fn main() {
    // 1. Boot: machine + layered supervisor (ring-0 trap handlers and
    //    gates, ring-1 services), then log a user in. Login builds the
    //    process's own virtual memory: a descriptor segment with the
    //    supervisor template plus eight per-ring stacks.
    let mut sys = System::boot();
    let pid = sys.login("alice");
    println!("booted; alice is process {pid}");

    // 2. Create a stored segment alice may read and write (ACL entry ->
    //    SDW brackets at initiation).
    let acl =
        Acl::single(AclEntry::new("alice", Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    let payload: Vec<Word> = (0..16).map(|i| Word::new(100 + i)).collect();
    sys.create_segment("udd>alice>notes", acl, payload);

    // 3. A ring-4 program, in real machine code, that calls the
    //    hcs$initiate gate and then reads the newly mapped segment.
    //    The CALL switches ring 4 -> ring 0 in hardware; the RETURN
    //    switches back; the first reference demand-loads the segment
    //    via a segment fault.
    let mut data = encode_string("udd>alice>notes");
    data.resize(128, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 128);
    let program = format!(
        "
        eap pr4, scratchp,*
        eap pr1, args           ; argument list
        eap pr2, ret0           ; return point
        eap pr3, gatep,*        ; the supervisor gate
        call pr3|0              ; ring 4 -> ring 0, no trap
ret0:   tnz fail
        lda pr4|100             ; segno returned by initiate
        als 18
        ora =7                  ; word 7 of the new segment
        sta pr4|110
        stz pr4|111
        lda pr4|110,*           ; segment fault -> demand load -> word
        sta pr4|101
fail:   drl 0o777               ; exit
gatep:  its 4, {hcs_seg}, {init}
scratchp: its 4, {sc}, 0
args:   its 4, {sc}, 0
        its 4, {sc}, 100
",
        hcs_seg = segs::HCS,
        init = hcs::INITIATE,
        sc = scratch.segno,
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &program);

    sys.machine.enable_trace(256);
    let exit = sys.run_user(pid, code.segno, 0, Ring::R4, 10_000);
    println!("run exited: {exit:?}");

    for ev in sys.machine.take_trace() {
        match ev {
            multiring::cpu::TraceEvent::Call { .. }
            | multiring::cpu::TraceEvent::Return { .. }
            | multiring::cpu::TraceEvent::Trap { .. }
            | multiring::cpu::TraceEvent::Native { .. } => println!("  {ev}"),
            _ => {}
        }
    }

    let sdw = sys.read_sdw(pid, scratch.segno);
    let read_back = sys.machine.phys().peek(sdw.addr.wrapping_add(101)).unwrap();
    println!("word 7 of the demand-loaded segment = {}", read_back.raw());
    let st = sys.stats();
    println!(
        "supervisor stats: {} gate call(s), {} segment fault(s), crossing traps: 0 by design",
        st.gate_calls_hcs, st.segment_faults
    );
    assert_eq!(read_back.raw(), 107);
}
