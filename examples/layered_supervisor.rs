//! The layered supervisor and processor multiplexing: ring-1 services
//! (accounting, stream output) over ring-0 primitives, plus two
//! processes time-sliced by the timer — all protection enforced by the
//! ring hardware.
//!
//! Run with: `cargo run --example layered_supervisor`

use multiring::core::addr::SegAddr;
use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::conventions::{gate_addr, ring1, segs};
use multiring::os::driver::gen_call_sequence;
use multiring::os::strings::encode_string;
use multiring::os::{System, SystemConfig};

fn main() {
    // --- Part 1: the ring-1 layer ------------------------------------
    let mut sys = System::boot();
    let pid = sys.login("alice");

    // Stream output through the ring-1 I/O layer (which formats at
    // ring 1 and uses the ring-0 channel primitive internally), plus an
    // accounting charge and a balance read.
    let mut data = encode_string("layers!");
    data.pop();
    let count_pos = data.len() as u32;
    data.push(Word::new(7));
    let units_pos = data.len() as u32;
    data.push(Word::new(12));
    let bal_pos = data.len() as u32;
    data.push(Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 64);

    let seq = gen_call_sequence(
        Ring::R4,
        &[
            (
                gate_addr(segs::RING1, ring1::IOS_WRITE),
                vec![
                    SegAddr::from_parts(scratch.segno, 0).unwrap(),
                    SegAddr::from_parts(scratch.segno, count_pos).unwrap(),
                ],
            ),
            (
                gate_addr(segs::RING1, ring1::ACCT_CHARGE),
                vec![SegAddr::from_parts(scratch.segno, units_pos).unwrap()],
            ),
            (
                gate_addr(segs::RING1, ring1::ACCT_READ),
                vec![SegAddr::from_parts(scratch.segno, bal_pos).unwrap()],
            ),
        ],
    );
    // Spin after the calls so the channel-completion interrupt lands
    // before the program exits.
    let seq = seq.replace(
        &format!("        drl 0o{:o}\n", multiring::os::traps::EXIT_CODE),
        &format!(
            "        lda =2000\nspin:   sba =1\n        tnz spin\n        drl 0o{:o}\n",
            multiring::os::traps::EXIT_CODE
        ),
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &seq);
    let exit = sys.run_user(pid, code.segno, 0, Ring::R4, 20_000);
    println!(
        "ring-1 service calls: {exit:?}, status {}",
        sys.machine.a().raw()
    );
    println!("typewriter printed: {:?}", sys.tty_printed());
    assert_eq!(sys.tty_printed(), "layers!");
    let st = sys.stats();
    println!(
        "gate calls: ring-1 {}, internal ring-0 {}; alice's account: {}",
        st.gate_calls_ring1,
        st.gate_calls_hcs,
        sys.state.borrow().accounts["alice"]
    );
    assert_eq!(sys.state.borrow().accounts["alice"], 12);

    // --- Part 2: processor multiplexing -------------------------------
    let mut sys = System::boot_with(SystemConfig {
        quantum: 300,
        ..SystemConfig::default()
    });
    let p0 = sys.login("alice");
    let p1 = sys.login("bob");
    let counting = |segno: u32| {
        format!(
            "
        eap pr4, ctr,*
loop:   aos pr4|0
        tra loop
ctr:    its 4, {segno}, 0
"
        )
    };
    let d0 = sys.install_data(p0, Ring::R4, Ring::R4, &[Word::ZERO], 16);
    let c0 = {
        let s = counting(d0.segno);
        sys.install_code(p0, Ring::R4, Ring::R4, 0, &s)
    };
    let d1 = sys.install_data(p1, Ring::R4, Ring::R4, &[Word::ZERO], 16);
    let c1 = {
        let s = counting(d1.segno);
        sys.install_code(p1, Ring::R4, Ring::R4, 0, &s)
    };
    sys.prepare(p1, c1.segno, 0, Ring::R4);
    sys.park(p1);
    sys.prepare(p0, c0.segno, 0, Ring::R4);
    sys.machine.set_timer(Some(300));
    sys.machine.run(10_000);

    let n0 = {
        let sdw = sys.read_sdw(p0, d0.segno);
        sys.machine.phys().peek(sdw.addr).unwrap().raw()
    };
    let n1 = {
        let sdw = sys.read_sdw(p1, d1.segno);
        sys.machine.phys().peek(sdw.addr).unwrap().raw()
    };
    let st = sys.stats();
    println!(
        "after 10k instructions: alice counted {n0}, bob counted {n1}, {} schedule switches",
        st.schedules
    );
    assert!(n0 > 0 && n1 > 0);
    println!("both processes progressed under timer-driven multiplexing (ring-0 scheduler)");
}
