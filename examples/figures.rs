//! Regenerates the paper's nine figures as decision tables computed by
//! the implementation (see `EXPERIMENTS.md`).
//!
//! Run with: `cargo run --example figures`

fn main() {
    print!("{}", ring_bench::figures::all_figures());
}
