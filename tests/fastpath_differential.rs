//! Differential validation of the fast-path execution engine.
//!
//! The fast path (ring-checked translation lookaside + predecoded
//! instruction cache) is pure acceleration: with it on or off the
//! machine must reach bit-for-bit identical architectural state —
//! registers, memory, faults, traps — *and* identical simulated cycle
//! counts, because the cycle model charges per counted physical
//! reference and the fast path replays exactly the references the slow
//! path would have made.
//!
//! These tests run two machines in lockstep over the same world — one
//! with `fastpath: true` (the default), one with `fastpath: false` (the
//! `--no-fastpath` configuration) — on randomly generated but
//! mostly-sane programs covering every operand class, immediate /
//! indexed / indirect addressing, paged segments, ring folds that fault
//! and chains that loop. After every step the full register file,
//! cycle counter and outcome must match; at the end, all of physical
//! memory, the counted reference totals, the SDW associative-memory
//! statistics and the architectural metrics (heatmap, histograms,
//! crossings, faults) must match too.
//!
//! Targeted tests then pin the three invalidation protocols: raw-word
//! compare catching self-modifying code, descriptor-store invalidation
//! catching supervisor revocation, and the DBR-load flush catching an
//! address-space switch.

use multiring::core::access::Fault;
use multiring::core::registers::{Dbr, IndWord, Ipr, PtrReg};
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::core::word::Word;
use multiring::core::{AbsAddr, SegNo};
use multiring::cpu::isa::{Instr, Opcode};
use multiring::cpu::machine::{Machine, MachineConfig, StepOutcome};
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::{addr, World};
use multiring::segmem::Ptw;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CODE: u32 = 10;
const DATA: u32 = 11;
const TABLE: u32 = 12;
const RO: u32 = 13;
const PAGED: u32 = 14;

/// All segment storage (descriptor segment, code/data/stacks/trap,
/// page table and frames) lives well below this; sweeping further is
/// pure zero-compare.
const SWEEP_WORDS: u32 = 32 * 1024;

fn ring_mostly_r4(rng: &mut StdRng) -> Ring {
    if rng.gen_bool(0.85) {
        Ring::R4
    } else {
        Ring::R5
    }
}

/// One random instruction word. Weighted so most instructions execute
/// cleanly (long runs keep the caches hot) but every operand class,
/// addressing mode and a sprinkling of faulting references appear.
fn gen_instr(rng: &mut StdRng) -> Word {
    const READS: [Opcode; 11] = [
        Opcode::Lda,
        Opcode::Ldq,
        Opcode::Ada,
        Opcode::Sba,
        Opcode::Mpy,
        Opcode::Ana,
        Opcode::Ora,
        Opcode::Era,
        Opcode::Cmpa,
        Opcode::Adq,
        Opcode::Sbq,
    ];
    const WRITES: [Opcode; 3] = [Opcode::Sta, Opcode::Stq, Opcode::Stz];
    const TRANSFERS: [Opcode; 5] = [
        Opcode::Tra,
        Opcode::Tze,
        Opcode::Tnz,
        Opcode::Tmi,
        Opcode::Tpl,
    ];
    const PRIVILEGED: [Opcode; 5] = [
        Opcode::Ldbr,
        Opcode::Sio,
        Opcode::Rett,
        Opcode::Ldt,
        Opcode::Halt,
    ];

    let roll = rng.gen_range(0..100u32);
    let instr =
        match roll {
            // ---- operand reads, every addressing mode ----
            0..=29 => {
                let op = READS[rng.gen_range(0..READS.len())];
                match rng.gen_range(0..6u32) {
                    0 => Instr::direct(op, rng.gen_range(0..(1 << 18))).immediate(),
                    1 => Instr::pr_relative(op, 1, rng.gen_range(0..250)),
                    2 => Instr::pr_relative(op, 4, rng.gen_range(0..2040)),
                    3 => Instr::pr_relative(op, 2, 2 * rng.gen_range(0..32u32)).with_indirect(),
                    4 => Instr::pr_relative(op, 1, rng.gen_range(0..120))
                        .with_index(rng.gen_range(1..4)),
                    _ => Instr::pr_relative(op, 3, rng.gen_range(0..60)),
                }
            }
            // ---- operand writes (occasionally refused or illegal) ----
            30..=41 => {
                let op = WRITES[rng.gen_range(0..WRITES.len())];
                match rng.gen_range(0..8u32) {
                    0..=2 => Instr::pr_relative(op, 1, rng.gen_range(0..250)),
                    3 | 4 => Instr::pr_relative(op, 4, rng.gen_range(0..2040)),
                    5 => Instr::pr_relative(op, 2, 2 * rng.gen_range(0..32u32)).with_indirect(),
                    6 => Instr::pr_relative(op, 1, rng.gen_range(0..120))
                        .with_index(rng.gen_range(1..4)),
                    // Write bracket violation / illegal immediate write.
                    _ => {
                        if rng.gen_bool(0.5) {
                            Instr::pr_relative(op, 3, rng.gen_range(0..60))
                        } else {
                            Instr::direct(op, rng.gen_range(0..64)).immediate()
                        }
                    }
                }
            }
            // ---- read-modify-write ----
            42..=47 => {
                if rng.gen_bool(0.6) {
                    Instr::pr_relative(Opcode::Aos, 1, rng.gen_range(0..250))
                } else {
                    Instr::pr_relative(Opcode::Aos, 4, rng.gen_range(0..2040))
                }
            }
            // ---- pointer loads (EAP into a scratch PR) ----
            48..=52 => {
                let xreg = if rng.gen_bool(0.5) { 5 } else { 7 };
                if rng.gen_bool(0.3) {
                    Instr::pr_relative(Opcode::Eap, 2, 2 * rng.gen_range(0..32u32))
                        .with_indirect()
                        .with_xreg(xreg)
                } else {
                    Instr::pr_relative(Opcode::Eap, 1, rng.gen_range(0..250)).with_xreg(xreg)
                }
            }
            // ---- address-only ----
            53..=59 => {
                let op = [Opcode::Eaa, Opcode::Als, Opcode::Ars][rng.gen_range(0..3usize)];
                if rng.gen_bool(0.5) {
                    Instr::direct(op, rng.gen_range(0..40)).immediate()
                } else {
                    Instr::direct(op, rng.gen_range(0..40))
                }
            }
            // ---- transfers within the code segment ----
            60..=73 => {
                let op = TRANSFERS[rng.gen_range(0..TRANSFERS.len())];
                Instr::direct(op, rng.gen_range(0..250))
            }
            // ---- pointer-pair store (slow path by design) ----
            74..=77 => Instr::pr_relative(Opcode::Spri, 1, rng.gen_range(0..200))
                .with_xreg(rng.gen_range(1..6)),
            // ---- index-register traffic ----
            78..=81 => {
                if rng.gen_bool(0.5) {
                    Instr::pr_relative(Opcode::Ldx, 1, rng.gen_range(0..250))
                        .with_xreg(rng.gen_range(1..4))
                } else {
                    Instr::pr_relative(Opcode::Stx, 1, rng.gen_range(0..250))
                        .with_xreg(rng.gen_range(1..4))
                }
            }
            // ---- no-operand ----
            82..=85 => {
                if rng.gen_bool(0.5) {
                    Instr::direct(Opcode::Nop, 0)
                } else {
                    Instr::direct(Opcode::Neg, 0)
                }
            }
            // ---- same-ring gate call into our own segment ----
            86..=88 => Instr::direct(Opcode::Call, rng.gen_range(0..8)),
            89 => Instr::pr_relative(Opcode::Return, 2, 0),
            // ---- explicit trap ----
            90 | 91 => Instr::direct(Opcode::Drl, rng.gen_range(0..8)),
            // ---- raw garbage (decode fault) ----
            92 => return Word::new(rng.gen()),
            // ---- privileged refusals at ring 4 ----
            93 | 94 => Instr::direct(PRIVILEGED[rng.gen_range(0..PRIVILEGED.len())], 0),
            // ---- reads through the higher-ring pointer ----
            95 | 96 => Instr::pr_relative(Opcode::Lda, 5, rng.gen_range(0..60)),
            // ---- reads from the code segment itself ----
            _ => Instr::direct(Opcode::Lda, rng.gen_range(0..256)),
        };
    instr.encode()
}

/// Builds a world with one random program and data image, identical
/// for every call with the same seed; `fastpath` selects the engine.
/// The sampling profiler and time-series pipeline ride along on every
/// differential run, so the lockstep comparisons also pin them as
/// non-perturbing and engine-independent.
fn build_world(seed: u64, fastpath: bool) -> World {
    build_world_with(seed, fastpath, true)
}

fn build_world_with(seed: u64, fastpath: bool, profiler: bool) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = World::with_config(MachineConfig {
        fastpath,
        ..MachineConfig::default()
    });
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(8)
            .bound_words(256),
    );
    let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(256));
    let table = w.add_segment(TABLE, SdwBuilder::data(Ring::R4, Ring::R5).bound_words(64));
    let ro = w.add_segment(RO, SdwBuilder::data(Ring::R2, Ring::R5).bound_words(64));
    let _ = ro;
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));

    // A two-page paged data segment with hand-built page table, so the
    // fast path's PTW staleness compare and the slow path's used /
    // modified bit writes are both exercised.
    let pt = w.alloc_raw(2);
    let raw = w.alloc_raw(3 * 1024);
    let frame0_base = (raw.value() + 1023) & !1023;
    for (page, base) in [(0u32, frame0_base), (1, frame0_base + 1024)] {
        let ptw = Ptw::present(base >> 10).expect("frame number");
        w.machine
            .phys_mut()
            .poke(pt.wrapping_add(page), ptw.pack())
            .expect("poke ptw");
    }
    let paged_sdw = SdwBuilder::data(Ring::R4, Ring::R4)
        .addr(pt)
        .unpaged(false)
        .bound_words(2048)
        .build();
    w.install_sdw(PAGED, &paged_sdw);

    // Data image: mostly small values (so indexed addressing stays in
    // bounds more often than not), some full-width noise.
    for i in 0..256 {
        let v = if rng.gen_bool(0.9) {
            rng.gen_range(0..256u64)
        } else {
            rng.gen()
        };
        w.poke(data, i, Word::new(v));
    }
    for i in 0..2048u32 {
        let v = if rng.gen_bool(0.9) {
            rng.gen_range(0..256u64)
        } else {
            rng.gen()
        };
        w.machine
            .phys_mut()
            .poke(
                AbsAddr::new(frame0_base + i).expect("frame word"),
                Word::new(v),
            )
            .expect("poke frame");
    }

    // Indirect-word table: mostly terminal words into the data segment,
    // a quarter chaining deeper into the table (loops included — the
    // indirection limit must fault identically on both paths).
    for k in 0..32u32 {
        let iw = if rng.gen_bool(0.25) {
            IndWord::new(Ring::R4, addr(TABLE, 2 * rng.gen_range(0..32u32)), true)
        } else {
            IndWord::new(
                ring_mostly_r4(&mut rng),
                addr(DATA, rng.gen_range(0..250)),
                false,
            )
        };
        w.write_ind_word(table, 2 * k, iw);
    }

    // The program: random instructions, with an explicit trap fence at
    // the end so falling off the code always halts via the handler.
    for i in 0..250u32 {
        w.poke(code, i, gen_instr(&mut rng));
    }
    for i in 250..256u32 {
        w.poke_instr(code, i, Instr::direct(Opcode::Drl, 0));
    }

    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(TABLE, 0)));
    w.machine.set_pr(3, PtrReg::new(Ring::R4, addr(RO, 0)));
    w.machine.set_pr(4, PtrReg::new(Ring::R4, addr(PAGED, 0)));
    w.machine.set_pr(5, PtrReg::new(Ring::R5, addr(TABLE, 0)));
    w.machine.enable_metrics();
    w.machine.enable_spans();
    if profiler {
        w.machine.enable_profiler(64, 256);
    }
    w.start(Ring::R4, code, 0);
    w
}

/// Architectural slice of the metrics CSV: everything except the
/// `fastpath.*` lines, which legitimately differ between the engines.
fn arch_metrics_csv(m: &Machine) -> String {
    m.metrics_snapshot()
        .to_csv()
        .lines()
        .filter(|l| !l.starts_with("fastpath."))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_machines_equal(fast: &Machine, slow: &Machine, at: &str) {
    assert_eq!(fast.cycles(), slow.cycles(), "cycles diverged {at}");
    assert_eq!(fast.ipr(), slow.ipr(), "IPR diverged {at}");
    assert_eq!(fast.a(), slow.a(), "A diverged {at}");
    assert_eq!(fast.q(), slow.q(), "Q diverged {at}");
    for n in 0..8 {
        assert_eq!(fast.xreg(n), slow.xreg(n), "X{n} diverged {at}");
        assert_eq!(fast.pr(n), slow.pr(n), "PR{n} diverged {at}");
    }
    assert_eq!(fast.last_fault(), slow.last_fault(), "fault diverged {at}");
    assert_eq!(fast.halted(), slow.halted(), "halt state diverged {at}");
}

/// Steps both engines over the same seed, checking full architectural
/// equality after every instruction and whole-world equality at the
/// end. Returns the number of fast-path commits, so callers can check
/// the fast path was actually exercised.
fn run_lockstep(seed: u64, steps: usize) -> u64 {
    let mut fast = build_world(seed, true);
    let mut slow = build_world(seed, false);
    for i in 0..steps {
        let of = fast.machine.step();
        let os = slow.machine.step();
        let at = format!("at step {i} (seed {seed:#018x})");
        assert_eq!(of, os, "outcome diverged {at}");
        assert_machines_equal(&fast.machine, &slow.machine, &at);
        if of == StepOutcome::Halted {
            break;
        }
    }
    let at = format!("after run (seed {seed:#018x})");
    assert_eq!(
        fast.machine.stats().instructions,
        slow.machine.stats().instructions,
        "instruction count diverged {at}"
    );
    assert_eq!(
        fast.machine.stats().traps,
        slow.machine.stats().traps,
        "trap count diverged {at}"
    );
    assert_eq!(
        fast.machine.phys().read_count(),
        slow.machine.phys().read_count(),
        "counted reads diverged {at}"
    );
    assert_eq!(
        fast.machine.phys().write_count(),
        slow.machine.phys().write_count(),
        "counted writes diverged {at}"
    );
    assert_eq!(
        fast.machine.sdw_cache_stats(),
        slow.machine.sdw_cache_stats(),
        "SDW cache statistics diverged {at}"
    );
    assert_eq!(
        arch_metrics_csv(&fast.machine),
        arch_metrics_csv(&slow.machine),
        "architectural metrics diverged {at}"
    );
    // The profiler samples on simulated cycles and the span stream,
    // both of which the engines must agree on — so the folded profile
    // and the time series must come out bit-identical too.
    assert_eq!(
        fast.machine.profiler().folded(),
        slow.machine.profiler().folded(),
        "folded profiles diverged {at}"
    );
    assert_eq!(
        fast.machine.timeseries().to_json(),
        slow.machine.timeseries().to_json(),
        "time series diverged {at}"
    );
    // The span flight recorder sees only committed ring crossings, so
    // the two engines must emit the *identical* event stream — same
    // spans, same order, same cycle timestamps.
    assert_eq!(
        fast.machine.take_span_events(),
        slow.machine.take_span_events(),
        "span event streams diverged {at}"
    );
    for a in 0..SWEEP_WORDS {
        let aa = AbsAddr::new(a).expect("sweep address");
        assert_eq!(
            fast.machine.phys().peek(aa).expect("peek fast"),
            slow.machine.phys().peek(aa).expect("peek slow"),
            "memory diverged at {a:#o} (seed {seed:#018x})"
        );
    }
    fast.machine.stats().fast_steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance gate: random programs, both engines, identical
    /// registers, memory, faults, traps and cycle counts at every step.
    #[test]
    fn fast_and_slow_engines_agree(seed in any::<u64>()) {
        run_lockstep(seed, 400);
    }
}

/// Fixed seeds with longer runs, and proof that the differential
/// harness is not vacuous: across a handful of seeds the fast path
/// must commit a healthy share of instructions.
#[test]
fn fast_path_commits_most_instructions() {
    let mut total_fast = 0u64;
    for seed in [1u64, 2, 3, 0x645, 0xdead_beef] {
        total_fast += run_lockstep(seed, 1200);
    }
    assert!(
        total_fast > 100,
        "fast path barely engaged ({total_fast} commits) — differential tests are vacuous"
    );
}

/// The profiler must be a pure observer: with sampling and the
/// time-series pipeline on, the machine executes bit-identically to a
/// run with them off — same outcomes, registers, cycles, faults and
/// counted physical references, on both engines.
#[test]
fn profiler_on_vs_off_is_architecturally_pure() {
    let mut total_samples = 0u64;
    for seed in [1u64, 0x645, 0xFEED_F00D] {
        for fastpath in [true, false] {
            let mut on = build_world_with(seed, fastpath, true);
            let mut off = build_world_with(seed, fastpath, false);
            for i in 0..1200 {
                let a = on.machine.step();
                let b = off.machine.step();
                let at = format!("at step {i} (seed {seed:#x}, fastpath {fastpath})");
                assert_eq!(a, b, "outcome diverged {at}");
                assert_machines_equal(&on.machine, &off.machine, &at);
                if a == StepOutcome::Halted {
                    break;
                }
            }
            let at = format!("after run (seed {seed:#x}, fastpath {fastpath})");
            assert_eq!(
                on.machine.phys().read_count(),
                off.machine.phys().read_count(),
                "counted reads diverged {at}"
            );
            assert_eq!(
                on.machine.phys().write_count(),
                off.machine.phys().write_count(),
                "counted writes diverged {at}"
            );
            total_samples += on.machine.profiler().samples();
        }
    }
    // Some random programs halt before the first sample boundary;
    // across the seed set the profiler must still have fired, or the
    // purity check proved nothing.
    assert!(
        total_samples > 0,
        "profiler never sampled on any seed — the purity check is vacuous"
    );
}

/// A tight loop must run almost entirely on the fast path, with both
/// lookaside structures reporting hits.
#[test]
fn fast_path_engages_on_tight_loop() {
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.poke(data, 0, Word::new(200));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Lda, 1, 0));
    w.poke_instr(code, 1, Instr::direct(Opcode::Sba, 1).immediate());
    w.poke_instr(code, 2, Instr::pr_relative(Opcode::Sta, 1, 0));
    w.poke_instr(code, 3, Instr::direct(Opcode::Tnz, 0));
    w.poke_instr(code, 4, Instr::direct(Opcode::Drl, 0));
    w.start(Ring::R4, code, 0);
    w.machine.run(2000);
    assert!(w.machine.halted(), "loop did not run to completion");
    let stats = w.machine.stats();
    let fp = w.machine.fastpath_stats();
    assert!(
        stats.fast_steps * 10 >= stats.instructions * 9,
        "tight loop should be >=90% fast path: {} of {}",
        stats.fast_steps,
        stats.instructions
    );
    assert!(fp.tlb_hits > 0, "translation lookaside never hit");
    assert!(fp.icache_hits > 0, "instruction cache never hit");
}

/// Self-modifying code: the predecoded instruction cache keys on the
/// raw word, so a store into an already-executed (and cached) word must
/// take effect on the very next execution — on both engines, with
/// identical cycle counts.
#[test]
fn self_modifying_code_is_seen_immediately() {
    let build = |fastpath: bool| -> World {
        let mut w = World::with_config(MachineConfig {
            fastpath,
            ..MachineConfig::default()
        });
        let code = w.add_segment(
            CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
                .write(true)
                .bound_words(16),
        );
        let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));
        // data[0] holds the replacement instruction: TRA 6.
        w.poke(data, 0, Instr::direct(Opcode::Tra, 6).encode());
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Ldq, 1, 0));
        w.poke_instr(code, 1, Instr::direct(Opcode::Lda, 7).immediate());
        w.poke_instr(code, 2, Instr::direct(Opcode::Stq, 1));
        w.poke_instr(code, 3, Instr::direct(Opcode::Tra, 1));
        // Second execution of word 1 must be the stored TRA 6.
        w.poke_instr(code, 4, Instr::direct(Opcode::Drl, 1));
        w.poke_instr(code, 5, Instr::direct(Opcode::Drl, 2));
        w.poke_instr(code, 6, Instr::direct(Opcode::Drl, 3));
        w.start(Ring::R4, code, 0);
        w
    };
    let mut fast = build(true);
    let mut slow = build(false);
    for i in 0..50 {
        let of = fast.machine.step();
        let os = slow.machine.step();
        let at = format!("at step {i}");
        assert_eq!(of, os, "outcome diverged {at}");
        assert_machines_equal(&fast.machine, &slow.machine, &at);
        if of == StepOutcome::Halted {
            break;
        }
    }
    assert!(
        fast.machine.halted(),
        "program looped: stale instruction executed"
    );
    // The halt came from the DRL at word 6 — i.e. the rewritten word 1
    // transferred there, it did not fall through as the original LDA.
    assert_eq!(fast.machine.a(), Word::new(7), "word 1 never ran as LDA");
    assert!(
        fast.machine.stats().fast_steps > 0,
        "fast path never engaged, cache invalidation untested"
    );
}

/// Supervisor revocation: after a warm fast-path translation for a
/// writable segment, a ring-0 descriptor store clearing the write flag
/// must take effect on the very next reference — the lookaside may not
/// serve the stale grant.
#[test]
fn descriptor_store_revokes_warm_translations() {
    let build = |fastpath: bool| -> World {
        let mut w = World::with_config(MachineConfig {
            fastpath,
            ..MachineConfig::default()
        });
        let code = w.add_segment(
            CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
        );
        let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));
        let _ = data;
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Sta, 1, 0));
        w.poke_instr(code, 1, Instr::pr_relative(Opcode::Sta, 1, 1));
        w.poke_instr(code, 2, Instr::direct(Opcode::Drl, 0));
        w.start(Ring::R4, code, 0);
        w
    };
    let revoke = |w: &mut World| {
        // Front-panel supervisor intervention: drop to ring 0, rewrite
        // the descriptor without the write flag, return to the program.
        let saved = w.machine.ipr();
        w.machine.set_ipr(Ipr::new(Ring::R0, saved.addr));
        let mut sdw = w.read_sdw(DATA);
        sdw.write = false;
        w.machine
            .store_descriptor(SegNo::new(DATA).expect("segno"), &sdw)
            .expect("ring-0 descriptor store");
        w.machine.set_ipr(saved);
    };
    let mut fast = build(true);
    let mut slow = build(false);
    // First store succeeds and warms the fast-path translation.
    assert_eq!(fast.machine.step(), StepOutcome::Ran);
    assert_eq!(slow.machine.step(), StepOutcome::Ran);
    assert_machines_equal(&fast.machine, &slow.machine, "after warm-up store");
    revoke(&mut fast);
    revoke(&mut slow);
    // Second store must now be refused — identically on both engines.
    let of = fast.machine.step();
    let os = slow.machine.step();
    assert_eq!(of, os, "post-revocation outcome diverged");
    assert!(
        matches!(of, StepOutcome::Trapped(Fault::AccessViolation { .. })),
        "revoked write was not refused: {of:?}"
    );
    assert_machines_equal(&fast.machine, &slow.machine, "after revoked store");
}

/// Address-space switch: LDBR must flush every fast-path translation,
/// so a reference that hits the lookaside before the switch reads
/// through the *new* descriptor segment after it.
#[test]
fn dbr_load_flushes_warm_translations() {
    let build = |fastpath: bool| -> World {
        let mut w = World::with_config(MachineConfig {
            fastpath,
            ..MachineConfig::default()
        });
        let code = w.add_segment(
            CODE,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(16),
        );
        let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));
        w.poke(data, 0, Word::new(111));

        // Second address space: a fresh descriptor segment mapping the
        // same code and trap segments, but segment DATA onto different
        // storage holding a different sentinel.
        let ndesc = w.alloc_raw(128);
        let nstore = w.alloc_raw(16);
        w.machine
            .phys_mut()
            .poke(nstore, Word::new(222))
            .expect("poke sentinel");
        let code_sdw = w.read_sdw(CODE);
        let trap_sdw = w.read_sdw(trap.value());
        let ndata = SdwBuilder::data(Ring::R4, Ring::R4)
            .addr(nstore)
            .bound_words(16)
            .build();
        for (segno, sdw) in [(CODE, &code_sdw), (trap.value(), &trap_sdw), (DATA, &ndata)] {
            let (w0, w1) = sdw.pack();
            let base = ndesc.wrapping_add(2 * segno);
            w.machine.phys_mut().poke(base, w0).expect("poke sdw");
            w.machine
                .phys_mut()
                .poke(base.wrapping_add(1), w1)
                .expect("poke sdw");
        }
        let ndbr = Dbr::new(ndesc, 64, w.dbr().stack_base);
        let (d0, d1) = ndbr.pack();
        w.poke(data, 8, d0);
        w.poke(data, 9, d1);

        w.machine.set_pr(1, PtrReg::new(Ring::R0, addr(DATA, 0)));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Lda, 1, 0));
        w.poke_instr(code, 1, Instr::pr_relative(Opcode::Ldbr, 1, 8));
        w.poke_instr(code, 2, Instr::pr_relative(Opcode::Lda, 1, 0));
        w.poke_instr(code, 3, Instr::direct(Opcode::Halt, 0));
        w.start(Ring::R0, code, 0);
        w
    };
    let mut fast = build(true);
    let mut slow = build(false);
    for i in 0..10 {
        let of = fast.machine.step();
        let os = slow.machine.step();
        let at = format!("at step {i}");
        assert_eq!(of, os, "outcome diverged {at}");
        assert_machines_equal(&fast.machine, &slow.machine, &at);
        if of == StepOutcome::Halted {
            break;
        }
    }
    assert!(fast.machine.halted(), "program did not halt");
    assert_eq!(
        slow.machine.a(),
        Word::new(222),
        "reference architecture did not switch address spaces"
    );
    assert_eq!(
        fast.machine.a(),
        Word::new(222),
        "fast path served a stale pre-LDBR translation"
    );
}

/// The interval timer decrements by the same per-instruction cycle
/// cost on both engines, so the asynchronous runout trap must land on
/// exactly the same instruction.
#[test]
fn timer_runout_lands_identically() {
    let build = |fastpath: bool| -> World {
        let mut w = World::with_config(MachineConfig {
            fastpath,
            ..MachineConfig::default()
        });
        let code = w.add_segment(
            CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
        );
        let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));
        w.poke(data, 0, Word::new(1_000_000));
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Lda, 1, 0));
        w.poke_instr(code, 1, Instr::pr_relative(Opcode::Aos, 1, 0));
        w.poke_instr(code, 2, Instr::direct(Opcode::Tra, 0));
        w.machine.set_timer(Some(137));
        w.start(Ring::R4, code, 0);
        w
    };
    let mut fast = build(true);
    let mut slow = build(false);
    for i in 0..200 {
        let of = fast.machine.step();
        let os = slow.machine.step();
        let at = format!("at step {i}");
        assert_eq!(of, os, "outcome diverged {at}");
        assert_machines_equal(&fast.machine, &slow.machine, &at);
        if of == StepOutcome::Halted {
            break;
        }
    }
    assert!(fast.machine.halted(), "timer never ran out");
    assert!(
        matches!(fast.machine.last_fault(), Some(Fault::TimerRunout)),
        "halt did not come from the timer trap"
    );
}
