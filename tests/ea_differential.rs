//! Differential test of effective-address formation: random indirect
//! chains through the real pipeline vs. the naive oracle (the effective
//! ring is the plain maximum of every contribution).

use multiring::core::oracle;
use multiring::core::registers::{IndWord, PtrReg};
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::isa::{Instr, Opcode};
use multiring::cpu::testkit::{addr, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn effective_ring_matches_oracle_over_random_chains() {
    let mut rng = StdRng::seed_from_u64(0x5105);
    let mut checked = 0;
    for _ in 0..300 {
        let exec_ring = Ring::new(rng.gen_range(0..8)).unwrap();
        let pr_ring = Ring::new(rng.gen_range(exec_ring.number()..8)).unwrap();
        let depth = rng.gen_range(0..5u32);

        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(exec_ring, exec_ring, exec_ring).bound_words(64),
        );
        w.start(exec_ring, code, 0);

        // Chain tables 20..20+depth, each readable by everyone (so the
        // chain never faults on read) with a random write-bracket top;
        // final target segment 19.
        w.add_segment(19, SdwBuilder::data(Ring::R7, Ring::R7).bound_words(64));
        let mut contributions = vec![exec_ring.number(), pr_ring.number()];
        for i in 0..depth {
            let r1 = rng.gen_range(0..8u8);
            let seg = w.add_segment(
                20 + i,
                SdwBuilder::data(Ring::new(r1).unwrap(), Ring::R7).bound_words(64),
            );
            let ind_ring = rng.gen_range(0..8u8);
            let last = i + 1 == depth;
            let next = if last {
                addr(19, rng.gen_range(0..32))
            } else {
                addr(20 + i + 1, 0)
            };
            w.write_ind_word(
                seg,
                0,
                IndWord::new(Ring::new(ind_ring).unwrap(), next, !last),
            );
            contributions.push(r1);
            contributions.push(ind_ring);
            let _ = seg;
        }

        let base = if depth == 0 { addr(19, 3) } else { addr(20, 0) };
        w.machine.set_pr(1, PtrReg::new(pr_ring, base));
        let mut instr = Instr::pr_relative(Opcode::Lda, 1, 0);
        if depth > 0 {
            instr = instr.with_indirect();
        }
        // Important subtlety: mid-chain reads validate at the RUNNING
        // effective ring; since every table is readable through ring 7
        // the chain cannot fault on brackets, so the final ring must be
        // the oracle's plain max of contributions seen along the way.
        // For depth == 0 only the first two contributions apply.
        let expected = if depth == 0 {
            oracle::effective_ring(&contributions[..2])
        } else {
            oracle::effective_ring(&contributions)
        };
        match w.machine.effective_address(&instr, code) {
            Ok(tpr) => {
                assert_eq!(
                    tpr.ring, expected,
                    "exec={exec_ring} pr={pr_ring} depth={depth} contributions={contributions:?}"
                );
                checked += 1;
            }
            Err(e) => panic!("chain unexpectedly faulted: {e}"),
        }
    }
    assert!(checked >= 300);
}

#[test]
fn shared_paged_segment_loads_each_page_once() {
    use multiring::core::word::Word;
    use multiring::cpu::machine::RunExit;
    use multiring::os::acl::{Acl, AclEntry, Modes};
    use multiring::os::conventions::{hcs, segs};
    use multiring::os::strings::encode_string;
    use multiring::os::System;

    let mut sys = System::boot();
    let mut acl = Acl::new();
    for u in ["alice", "bob"] {
        acl.push(AclEntry::new(u, Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    }
    sys.create_segment("big>shared", acl, (0u64..6000).map(Word::new).collect());

    let touch = |sys: &mut System, pid: usize| {
        let mut data = encode_string("big>shared");
        data.resize(128, Word::ZERO);
        let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 128);
        let src = format!(
            "
        eap pr4, scratchp,*
        eap pr1, args
        eap pr2, r0
        eap pr3, gatep,*
        call pr3|0
r0:     tnz out
        lda pr4|100
        als 18
        ora =4500           ; page 4
        sta pr4|110
        stz pr4|111
        lda pr4|110,*
        sta pr4|101
        lda =0
out:    drl 0o777
gatep:  its 4, {hcs_seg}, {init}
scratchp: its 4, {sc}, 0
args:   its 4, {sc}, 0
        its 4, {sc}, 100
",
            hcs_seg = segs::HCS,
            init = hcs::INITIATE,
            sc = scratch.segno,
        );
        let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &src);
        assert_eq!(
            sys.run_user(pid, code.segno, 0, Ring::R4, 20_000),
            RunExit::Halted
        );
        assert_eq!(sys.machine.a().raw(), 0);
    };

    let alice = sys.login("alice");
    let bob = sys.login("bob");
    touch(&mut sys, alice);
    let faults_after_alice = sys.stats().page_faults;
    assert_eq!(faults_after_alice, 1, "alice paged in page 4");
    touch(&mut sys, bob);
    assert_eq!(
        sys.stats().page_faults,
        1,
        "bob shares the page table: page 4 was already present"
    );
    assert_eq!(sys.stats().segment_faults, 2, "each mapped it once");
}
