//! A supervisor written entirely in machine code — no native
//! procedures anywhere — proving the trap mechanism (memory-based
//! state save, vectors, RETT) is self-sufficient, exactly as the
//! paper's hardware had to be.

use ring_core::access::{vector, Fault};
use ring_core::registers::PtrReg;
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::{MachineConfig, RunExit};
use ring_cpu::testkit::{addr, World};

const CODE: u32 = 10;
const DATA: u32 = 11;

/// Builds the trap segment image in assembly: a vector table of TRAs
/// into handlers, a derail handler that counts derails and resumes
/// after the trapping instruction, and a timer handler that counts
/// runouts and resumes. Any other fault halts.
fn supervisor_source() -> String {
    // Save-area layout (trap.rs): IPR at save+0; vector table at 0.
    // The derail handler must advance the saved IPR past the DRL
    // instruction before RETT (a system call returns to the next
    // instruction).
    let save = 64;
    let mut vecs = String::new();
    for v in 0..ring_core::access::Fault::NUM_VECTORS {
        let target = match v {
            vector::DERAIL => "on_drl",
            vector::TIMER_RUNOUT => "on_timer",
            _ => "on_other",
        };
        vecs.push_str(&format!("        tra {target}\n"));
    }
    format!(
        "
{vecs}
on_drl: aos drl_count
        lda save_ipr        ; saved IPR (packed pointer)
        ada =1              ; wordno is the low field: +1 word
        sta save_ipr
        rett
on_timer:
        aos timer_count
        eap pr5, qptr
        ldt pr5|0           ; reload the interval timer
        rett
on_other:
        halt
        org {save}
save_ipr: dw 0
        org 100
drl_count: dw 0
timer_count: dw 0
quantum: dw 120
qptr    = 0                 ; unused label trick avoided
"
    )
    .replace(
        "qptr    = 0                 ; unused label trick avoided",
        "",
    )
    .replace("eap pr5, qptr", "eap pr5, quantum")
}

fn build() -> World {
    let config = MachineConfig::default();
    let mut w = World::with_config(config);
    let trap_segno = w.machine.config().trap_segno.value();
    let sup = ring_asm::assemble(&supervisor_source()).expect("supervisor assembles");
    let trap = w.add_segment(
        trap_segno,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
            .write(true)
            .bound_words(256),
    );
    for (i, word) in sup.words.iter().enumerate() {
        w.poke(trap, i as u32, *word);
    }
    w
}

#[test]
fn asm_trap_handler_services_derails_and_resumes() {
    let mut w = build();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let user = ring_asm::assemble(
        "
        lda =1
        drl 1               ; system call #1
        ada =10             ; runs after the handler resumes us
        drl 1
        ada =100
        tra done
done:   tra done            ; spin (budget-bounded)
",
    )
    .unwrap();
    for (i, word) in user.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.run(400), RunExit::BudgetExhausted);
    assert_eq!(w.machine.a().raw(), 111, "both resumes landed correctly");
    let trap_segno = w.machine.config().trap_segno.value();
    let trap = ring_core::addr::SegNo::new(trap_segno).unwrap();
    assert_eq!(w.peek(trap, 100).raw(), 2, "two derails counted");
    assert_eq!(w.machine.ring(), Ring::R4, "resumed in the user ring");
}

#[test]
fn asm_timer_handler_reloads_and_resumes() {
    let mut w = build();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let user = ring_asm::assemble(
        "
        eap pr4, ctr,*
loop:   aos pr4|0
        tra loop
ctr:    its 4, 11, 0
",
    )
    .unwrap();
    for (i, word) in user.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    w.start(Ring::R4, code, 0);
    w.machine.set_timer(Some(120));
    assert_eq!(w.machine.run(2_000), RunExit::BudgetExhausted);
    let trap = ring_core::addr::SegNo::new(w.machine.config().trap_segno.value()).unwrap();
    let ticks = w.peek(trap, 101).raw();
    assert!(ticks >= 3, "several timer runouts serviced in asm: {ticks}");
    assert!(w.peek(data, 0).raw() > 0, "user loop kept making progress");
}

#[test]
fn asm_handler_halts_on_access_violation() {
    let mut w = build();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    // Reference a segment readable only through ring 2.
    let secret = w.add_segment(12, SdwBuilder::data(Ring::R2, Ring::R2).bound_words(16));
    let user = ring_asm::assemble(
        "
        eap pr4, sp,*
        lda pr4|0
        drl 1
sp:     its 4, 12, 0
",
    )
    .unwrap();
    let _ = secret;
    for (i, word) in user.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.run(100), RunExit::Halted);
    assert!(matches!(
        w.machine.last_fault(),
        Some(Fault::AccessViolation { .. })
    ));
}

#[test]
fn privileged_segment_hardening_blocks_unmarked_ring0_code() {
    // With the hardening on, even ring-0 code in an unprivileged
    // segment cannot execute RETT/HALT-class instructions.
    let config = MachineConfig {
        require_privileged_segments: true,
        ..Default::default()
    };
    let mut w = World::with_config(config);
    let trap_segno = w.machine.config().trap_segno.value();
    // The trap segment is marked privileged (the supervisor).
    let sup = ring_asm::assemble(
        &"        halt\n".repeat(ring_core::access::Fault::NUM_VECTORS as usize),
    )
    .unwrap();
    let trap = w.add_segment(
        trap_segno,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
            .write(true)
            .privileged(true)
            .bound_words(256),
    );
    for (i, word) in sup.words.iter().enumerate() {
        w.poke(trap, i as u32, *word);
    }
    // Ring-0 code in an ordinary segment tries HALT.
    let rogue = w.add_segment(
        20,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(16),
    );
    w.poke_instr(
        rogue,
        0,
        ring_cpu::isa::Instr::direct(ring_cpu::isa::Opcode::Halt, 0),
    );
    w.start(Ring::R0, rogue, 0);
    // HALT faults PrivilegedViolation -> trap segment (privileged)
    // HALTs cleanly.
    assert_eq!(w.machine.run(10), RunExit::Halted);
    assert!(matches!(
        w.machine.last_fault(),
        Some(Fault::PrivilegedViolation { .. })
    ));

    // Control: with the hardening off (default), the same rogue HALT
    // simply halts the machine.
    let mut w2 = World::new();
    let rogue = w2.add_segment(
        20,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(16),
    );
    w2.add_trap_segment();
    w2.poke_instr(
        rogue,
        0,
        ring_cpu::isa::Instr::direct(ring_cpu::isa::Opcode::Halt, 0),
    );
    w2.start(Ring::R0, rogue, 0);
    assert_eq!(w2.machine.run(10), RunExit::Halted);
    assert_eq!(w2.machine.last_fault(), None);
}

#[test]
fn ldbr_instruction_switches_virtual_memories() {
    // Ring-0 machine code uses LDBR to switch to a second descriptor
    // segment mid-run (what a pure-ISA scheduler would do).
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(64),
    );
    w.add_trap_segment();

    // Build a second descriptor segment whose segment 10 maps *other*
    // code: a single HALT.
    let other_store = w.alloc_raw(16);
    w.machine
        .phys_mut()
        .poke(
            other_store,
            ring_cpu::isa::Instr::direct(ring_cpu::isa::Opcode::Halt, 0).encode(),
        )
        .unwrap();
    let desc2 = w.alloc_raw(2 * 32);
    let other_sdw = SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
        .addr(other_store)
        .bound_words(16)
        .build();
    let (s0, s1) = other_sdw.pack();
    w.machine
        .phys_mut()
        .poke(desc2.wrapping_add(2 * CODE), s0)
        .unwrap();
    w.machine
        .phys_mut()
        .poke(desc2.wrapping_add(2 * CODE + 1), s1)
        .unwrap();
    let dbr2 = ring_core::registers::Dbr::new(desc2, 32, ring_core::addr::SegNo::new(48).unwrap());
    let (d0, d1) = dbr2.pack();

    // Program: LDBR from an in-segment image. The *next* fetch
    // (same segno 10!) comes from the other descriptor's world and
    // halts.
    let prog = ring_asm::assemble(
        "
        ldbr dbrimg
        nop                 ; never reached: new world's 10|1 differs
dbrimg: dw 0, 0             ; patched below
",
    )
    .unwrap();
    for (i, word) in prog.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    let img = prog.symbols["dbrimg"];
    w.poke(code, img, d0);
    w.poke(code, img + 1, d1);
    // The old-world code segment must be readable for the LDBR operand
    // — procedure segments have R set. But wait: after LDBR, the next
    // fetch is 10|1 in the NEW world, which maps word 1 of the other
    // store (zero -> illegal opcode)... place HALT at word 1 as well.
    w.machine
        .phys_mut()
        .poke(
            other_store.wrapping_add(1),
            ring_cpu::isa::Instr::direct(ring_cpu::isa::Opcode::Halt, 0).encode(),
        )
        .unwrap();

    w.start(Ring::R0, code, 0);
    assert_eq!(w.machine.run(10), RunExit::Halted);
    assert_eq!(w.machine.dbr(), dbr2, "the DBR switched worlds");
}

#[test]
fn sio_instruction_prints_through_the_channel() {
    // Ring-0 machine code starts a typewriter transfer with SIO and
    // spins until the completion trap bumps a counter (asm handler).
    let mut w = build();
    let trap_segno = w.machine.config().trap_segno.value();
    let _ = trap_segno;
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(128),
    );
    // Buffer in absolute memory: reuse the code segment's storage via
    // its SDW address + offset of `buf`.
    let prog_src = "
        sio chprog
loop:   tra loop
chprog: dw 0, 0             ; patched: channel program
buf:    dw 0o110, 0o111     ; 'H', 'I'
";
    let prog = ring_asm::assemble(prog_src).unwrap();
    for (i, word) in prog.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    let code_sdw = w.read_sdw(CODE);
    let buf_abs = code_sdw.addr.wrapping_add(prog.symbols["buf"]);
    let (c0, c1) =
        ring_cpu::io::IoSystem::channel_program(1, ring_cpu::io::Direction::Output, buf_abs, 2);
    let chprog = prog.symbols["chprog"];
    w.poke(code, chprog, c0);
    w.poke(code, chprog + 1, c1);
    w.start(Ring::R0, code, 0);
    // The completion trap lands on the supervisor's catch-all halt —
    // after the channel has already moved the data.
    assert_eq!(w.machine.run(200), RunExit::Halted);
    assert!(matches!(
        w.machine.last_fault(),
        Some(Fault::IoCompletion { channel: 1 })
    ));
    assert_eq!(w.machine.io().device(1).printed(), "HI");
}

/// The interplay is honest: the asm derail handler's +1 on the saved
/// IPR manipulates the packed pointer, which only works because the
/// word number occupies the low bits of the canonical layout — pin
/// that assumption.
#[test]
fn packed_pointer_low_bits_are_the_word_number() {
    let p = PtrReg::new(Ring::R4, addr(100, 41));
    let bumped = PtrReg::unpack(Word::new(p.pack().raw() + 1));
    assert_eq!(bumped.addr.wordno.value(), 42);
    assert_eq!(bumped.addr.segno, p.addr.segno);
    assert_eq!(bumped.ring, p.ring);
}
