//! Property tests of the instruction semantics through the full
//! pipeline: every ALU/data op on random operands matches its 36-bit
//! reference semantics.

use multiring::core::registers::PtrReg;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::core::word::{Word, WORD_MASK};
use multiring::core::SegAddr;
use multiring::cpu::isa::{Instr, Opcode};
use multiring::cpu::machine::StepOutcome;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::{addr, World};
use proptest::prelude::*;

/// Runs `prog` in a world where data[0] = `a` and data[1] = `b`
/// (PR1 -> data), stepping `prog.len()` instructions; returns (A, Q,
/// data[2]).
fn run(prog: &[Instr], a: u64, b: u64) -> (u64, u64, u64) {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.poke(data, 0, Word::new(a));
    w.poke(data, 1, Word::new(b));
    for (i, &ins) in prog.iter().enumerate() {
        w.poke_instr(code, i as u32, ins);
    }
    w.start(Ring::R4, code, 0);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
    for _ in 0..prog.len() {
        assert_eq!(w.machine.step(), StepOutcome::Ran);
    }
    (
        w.machine.a().raw(),
        w.machine.q().raw(),
        w.peek(data, 2).raw(),
    )
}

fn lda() -> Instr {
    Instr::pr_relative(Opcode::Lda, 1, 0)
}

fn op_b(op: Opcode) -> Instr {
    Instr::pr_relative(op, 1, 1)
}

fn sta2() -> Instr {
    Instr::pr_relative(Opcode::Sta, 1, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_mul_match_reference(a in 0u64..=WORD_MASK, b in 0u64..=WORD_MASK) {
        let (r, _, m) = run(&[lda(), op_b(Opcode::Ada), sta2()], a, b);
        prop_assert_eq!(r, a.wrapping_add(b) & WORD_MASK);
        prop_assert_eq!(m, r, "store wrote the result");

        let (r, _, _) = run(&[lda(), op_b(Opcode::Sba)], a, b);
        prop_assert_eq!(r, a.wrapping_sub(b) & WORD_MASK);

        let (r, _, _) = run(&[lda(), op_b(Opcode::Mpy)], a, b);
        prop_assert_eq!(r, a.wrapping_mul(b) & WORD_MASK);
    }

    #[test]
    fn logic_ops_match_reference(a in 0u64..=WORD_MASK, b in 0u64..=WORD_MASK) {
        let (r, _, _) = run(&[lda(), op_b(Opcode::Ana)], a, b);
        prop_assert_eq!(r, a & b);
        let (r, _, _) = run(&[lda(), op_b(Opcode::Ora)], a, b);
        prop_assert_eq!(r, a | b);
        let (r, _, _) = run(&[lda(), op_b(Opcode::Era)], a, b);
        prop_assert_eq!(r, a ^ b);
    }

    #[test]
    fn q_register_ops_match_reference(a in 0u64..=WORD_MASK, b in 0u64..=WORD_MASK) {
        let (_, q, _) = run(
            &[Instr::pr_relative(Opcode::Ldq, 1, 0), op_b(Opcode::Adq)],
            a,
            b,
        );
        prop_assert_eq!(q, a.wrapping_add(b) & WORD_MASK);
        let (_, q, _) = run(
            &[Instr::pr_relative(Opcode::Ldq, 1, 0), op_b(Opcode::Sbq)],
            a,
            b,
        );
        prop_assert_eq!(q, a.wrapping_sub(b) & WORD_MASK);
    }

    #[test]
    fn neg_and_shifts_match_reference(a in 0u64..=WORD_MASK, sh in 0u32..36) {
        let (r, _, _) = run(&[lda(), Instr::direct(Opcode::Neg, 0)], a, 0);
        prop_assert_eq!(r, (a as i64).wrapping_neg() as u64 & WORD_MASK);

        let (r, _, _) = run(&[lda(), Instr::direct(Opcode::Als, sh)], a, 0);
        prop_assert_eq!(r, (a << sh) & WORD_MASK);
        let (r, _, _) = run(&[lda(), Instr::direct(Opcode::Ars, sh)], a, 0);
        prop_assert_eq!(r, a >> sh);
    }

    #[test]
    fn cmpa_preserves_a_and_sets_indicators(a in 0u64..=WORD_MASK, b in 0u64..=WORD_MASK) {
        // CMPA then a conditional transfer: the branch goes exactly
        // where A-b says.
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine.register_native(trap, |_, _| Ok(NativeAction::Halt));
        w.poke(data, 0, Word::new(a));
        w.poke(data, 1, Word::new(b));
        w.poke_instr(code, 0, lda());
        w.poke_instr(code, 1, op_b(Opcode::Cmpa));
        w.poke_instr(code, 2, Instr::direct(Opcode::Tze, 20));
        w.start(Ring::R4, code, 0);
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
        for _ in 0..3 {
            prop_assert_eq!(w.machine.step(), StepOutcome::Ran);
        }
        prop_assert_eq!(w.machine.a().raw(), a, "CMPA leaves A intact");
        let went = w.machine.ipr().addr.wordno.value();
        if a == b {
            prop_assert_eq!(went, 20, "equal -> TZE taken");
        } else {
            prop_assert_eq!(went, 3, "unequal -> fall through");
        }
    }

    #[test]
    fn ldx_stx_truncate_to_18_bits(a in 0u64..=WORD_MASK) {
        let (_, _, m) = run(
            &[
                Instr::pr_relative(Opcode::Ldx, 1, 0).with_xreg(3),
                Instr::pr_relative(Opcode::Stx, 1, 2).with_xreg(3),
            ],
            a,
            0,
        );
        prop_assert_eq!(m, a & 0o777777);
    }

    #[test]
    fn aos_increments_mod_2_36(a in 0u64..=WORD_MASK) {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
        );
        let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        let trap = w.add_trap_segment();
        w.machine.register_native(trap, |_, _| Ok(NativeAction::Halt));
        w.poke(data, 0, Word::new(a));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Aos, 1, 0));
        w.start(Ring::R4, code, 0);
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
        prop_assert_eq!(w.machine.step(), StepOutcome::Ran);
        prop_assert_eq!(w.peek(data, 0).raw(), a.wrapping_add(1) & WORD_MASK);
    }

    /// EAA puts the effective word number (not the operand) into A.
    #[test]
    fn eaa_yields_effective_wordno(off in 0u32..4096, x in 0u32..4096) {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
        );
        let trap = w.add_trap_segment();
        w.machine.register_native(trap, |_, _| Ok(NativeAction::Halt));
        w.poke_instr(code, 0, Instr::direct(Opcode::Eaa, off).with_index(2));
        w.start(Ring::R4, code, 0);
        w.machine.set_xreg(2, x);
        prop_assert_eq!(w.machine.step(), StepOutcome::Ran);
        prop_assert_eq!(w.machine.a().raw(), u64::from(off + x));
    }
}

/// SPRI/EAP round trip at the pipeline level: store a pointer register
/// as an ITS pair, reload it through EAP with indirection, and get the
/// same address with the folded ring.
#[test]
fn spri_eap_round_trip_through_memory() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.machine.set_pr(
        3,
        PtrReg::new(Ring::R5, SegAddr::from_parts(10, 7).unwrap()),
    );
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 4)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Spri, 1, 0).with_xreg(3));
    w.poke_instr(
        code,
        1,
        Instr::pr_relative(Opcode::Eap, 1, 0)
            .with_indirect()
            .with_xreg(5),
    );
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    let pr5 = w.machine.pr(5);
    assert_eq!(pr5.addr, SegAddr::from_parts(10, 7).unwrap());
    assert_eq!(pr5.ring, Ring::R5, "stored ring folded back in");
    let _ = data;
}
