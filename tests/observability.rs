//! Integration tests of the observability layer (`ring-metrics`): the
//! recorder must be a pure observer — bit-for-bit identical
//! architectural state with metrics on or off — and its counters must
//! agree with what a known workload actually does.

use multiring::core::addr::SegAddr;
use multiring::core::registers::{Dbr, Ipr, PtrReg};
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::core::word::Word;
use multiring::core::{AbsAddr, SegNo};
use multiring::cpu::machine::{Machine, MachineConfig, RunExit};
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;
use multiring::os::conventions::{gate_addr, ring1, segs};
use multiring::os::driver::gen_call_sequence;
use multiring::os::System;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds one randomly-filled machine from `seed` (the fuzz_machine
/// recipe): random physical memory, random DBR, random start state —
/// every fault path gets exercised.
fn random_machine(seed: u64, enable_metrics: bool, enable_spans: bool) -> Machine {
    let mut rng = StdRng::seed_from_u64(seed);
    let words = 4 * 1024;
    let mut m = Machine::new(words, MachineConfig::default());
    if enable_metrics {
        m.enable_metrics();
    }
    if enable_spans {
        m.enable_spans();
    }
    for a in 0..words as u32 {
        if rng.gen_bool(0.7) {
            m.phys_mut()
                .poke(AbsAddr::new(a).unwrap(), Word::new(rng.gen()))
                .unwrap();
        }
    }
    m.load_dbr(Dbr::new(
        AbsAddr::new(rng.gen_range(0..words as u32)).unwrap(),
        rng.gen_range(0..64),
        SegNo::new(rng.gen_range(0..100)).unwrap(),
    ));
    let ring = Ring::new(rng.gen_range(0..8)).unwrap();
    m.set_ipr(Ipr::new(
        ring,
        SegAddr::from_parts(rng.gen_range(0..64), rng.gen_range(0..1024)).unwrap(),
    ));
    for n in 0..8 {
        m.set_pr(
            n,
            PtrReg::new(
                Ring::new(rng.gen_range(0..8)).unwrap(),
                SegAddr::from_parts(rng.gen_range(0..64), rng.gen_range(0..1024)).unwrap(),
            ),
        );
    }
    m
}

/// Asserts that two machines are in the same architectural state:
/// registers, statistics, cycle count, and all of physical memory.
fn assert_same_architecture(a: &Machine, b: &Machine, seed: u64) {
    assert_eq!(a.ipr(), b.ipr(), "seed {seed}: IPR diverged");
    assert_eq!(a.a(), b.a(), "seed {seed}: A diverged");
    assert_eq!(a.q(), b.q(), "seed {seed}: Q diverged");
    for n in 0..8 {
        assert_eq!(a.pr(n), b.pr(n), "seed {seed}: PR{n} diverged");
        assert_eq!(a.xreg(n), b.xreg(n), "seed {seed}: X{n} diverged");
    }
    assert_eq!(a.cycles(), b.cycles(), "seed {seed}: cycles diverged");
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(
        sa.instructions, sb.instructions,
        "seed {seed}: instruction counts diverged"
    );
    assert_eq!(sa.traps, sb.traps, "seed {seed}: trap counts diverged");
    for addr in 0..4 * 1024u32 {
        let pa = AbsAddr::new(addr).unwrap();
        assert_eq!(
            a.phys().peek(pa),
            b.phys().peek(pa),
            "seed {seed}: memory diverged at {addr}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The recorder is a pure observer: running the same arbitrary
    /// (garbage) machine with metrics enabled and disabled reaches a
    /// bit-for-bit identical architectural state.
    #[test]
    fn metrics_never_change_architectural_state(seed in any::<u64>()) {
        let mut plain = random_machine(seed, false, false);
        let mut observed = random_machine(seed, true, false);
        for _ in 0..200 {
            let a = plain.step();
            let b = observed.step();
            prop_assert_eq!(a, b, "step outcomes diverged for seed {}", seed);
            if a == multiring::cpu::machine::StepOutcome::Halted {
                break;
            }
        }
        assert_same_architecture(&plain, &observed, seed);
        // And the observed run actually recorded something: the
        // instruction counter mirrors the machine's own statistics.
        let snap = observed.metrics_snapshot();
        prop_assert!(snap.enabled);
        prop_assert_eq!(snap.instructions, observed.stats().instructions);
    }

    /// The span flight recorder is a pure observer too: spans on or
    /// off, an arbitrary machine reaches bit-for-bit identical
    /// architectural state (disabled recording is zero-cost *and*
    /// enabled recording never perturbs execution).
    #[test]
    fn spans_never_change_architectural_state(seed in any::<u64>()) {
        let mut plain = random_machine(seed, false, false);
        let mut observed = random_machine(seed, false, true);
        for _ in 0..200 {
            let a = plain.step();
            let b = observed.step();
            prop_assert_eq!(a, b, "step outcomes diverged for seed {}", seed);
            if a == multiring::cpu::machine::StepOutcome::Halted {
                break;
            }
        }
        assert_same_architecture(&plain, &observed, seed);
        // Random garbage machines trap constantly, so the recorder
        // must actually have seen crossings (the comparison above is
        // not vacuous).
        if observed.stats().traps > 0 {
            prop_assert!(
                !observed.spans().events().is_empty(),
                "traps occurred but no span events were recorded"
            );
        }
    }
}

/// Builds the known gate-call workload: `calls` gate calls from ring 4
/// into a ring-1 native service at segment 20 entry 0, ending in an
/// exit derail handled by a halting trap segment.
fn gate_call_world(calls: u64) -> World {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(128),
    );
    let service = w.add_segment(
        20,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R5)
            .gates(1)
            .bound_words(16),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.machine
        .register_native(service, |m, _| Ok(NativeAction::Return { via: m.pr(2) }));
    let mut asm = String::new();
    for i in 0..calls {
        asm.push_str(&format!(
            "        eap pr2, ret{i}\n        eap pr3, gatep,*\n        call pr3|0\nret{i}:  nop\n"
        ));
    }
    asm.push_str("        drl 0o777\ngatep:  its 4, 20, 0\n");
    let out = multiring::asm::assemble(&asm).expect("gate-call program");
    for (i, word) in out.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    w
}

/// A known workload measured exactly: `N` gate calls from ring 4 into a
/// ring-1 service must record `N` hardware down-calls, `N` up-returns,
/// the matching matrix cells, and exactly one trap (the exit derail).
#[test]
fn gate_calls_record_exact_crossing_counts() {
    const CALLS: u64 = 3;
    let mut w = gate_call_world(CALLS);
    let code = SegNo::new(10).unwrap();
    w.machine.enable_metrics();
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.run(10_000), RunExit::Halted);

    let snap = w.machine.metrics_snapshot();
    assert_eq!(snap.crossing("call_down"), Some(CALLS));
    assert_eq!(snap.crossing("return_up"), Some(CALLS));
    assert_eq!(snap.crossing("call_same_ring"), Some(0));
    assert_eq!(
        snap.crossing("trap_to_ring0"),
        Some(1),
        "only the exit derail traps"
    );
    assert_eq!(snap.crossing("upward_call_trap"), Some(0));
    assert_eq!(snap.crossing_matrix[4][1], CALLS, "CALL cells 4->1");
    assert_eq!(snap.crossing_matrix[1][4], CALLS, "RETURN cells 1->4");
    assert_eq!(snap.ring_changes, 2 * CALLS + 1);
    assert_eq!(snap.faults_total, 1);
    assert_eq!(snap.call_cycles.count, CALLS);
    // The counters agree with the machine's own statistics.
    let stats = w.machine.stats();
    assert_eq!(snap.crossing("call_down"), Some(stats.calls_downward));
    assert_eq!(snap.crossing("return_up"), Some(stats.returns_upward));
}

/// The same workload through the span recorder: `N` gate calls build
/// exactly `N` matched call spans on the (ring 1, seg 20, entry 0)
/// gate plus one dangling trap span for the exit derail, with sane
/// cycle attribution, and the Perfetto export is loadable Chrome
/// trace-format JSON.
#[test]
fn gate_call_spans_build_exact_tree() {
    use multiring::trace::{build_tree, gate_table, SpanKind};
    const CALLS: u64 = 3;
    let mut w = gate_call_world(CALLS);
    w.machine.enable_spans();
    w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    assert_eq!(w.machine.run(10_000), RunExit::Halted);

    let final_cycles = w.machine.cycles();
    let tree = build_tree(w.machine.spans().events(), final_cycles);
    assert_eq!(tree.unmatched_closes, 0);
    let calls: Vec<_> = tree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Call)
        .collect();
    let traps: Vec<_> = tree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Trap)
        .collect();
    assert_eq!(calls.len(), CALLS as usize, "one span per gate call");
    assert_eq!(traps.len(), 1, "one trap span for the exit derail");
    for s in &calls {
        assert_eq!(s.key.ring, 1, "gate executes in ring 1");
        assert_eq!(s.key.segno, 20);
        assert_eq!(s.key.entry, 0);
        assert_eq!(s.from_ring, 4);
        assert_eq!(s.to_ring, Some(4), "matched RETURN back to ring 4");
        assert_eq!(s.depth, 0, "top-level spans — no nesting here");
        assert!(s.close_cycles.is_some());
        assert!(s.total_cycles > 0, "a crossing costs cycles");
        assert_eq!(s.self_cycles, s.total_cycles, "leaf span: self == total");
    }
    // The derail's trap span never sees a RETT (the native handler
    // halts), so it dangles and is attributed up to the final cycle.
    assert_eq!(traps[0].key.ring, 0, "traps force ring 0");
    assert_eq!(traps[0].from_ring, 4);
    assert!(traps[0].close_cycles.is_none());
    assert_eq!(traps[0].open_cycles + traps[0].total_cycles, final_cycles);

    // Aggregation: one gate row with all three calls, one trap row.
    let table = gate_table(&tree);
    assert_eq!(table.len(), 2);
    assert_eq!(table.iter().map(|g| g.calls).sum::<u64>(), CALLS + 1);
    let gate = table
        .iter()
        .find(|g| g.kind == SpanKind::Call)
        .expect("gate row");
    assert_eq!(gate.calls, CALLS);
    assert_eq!(
        gate.total_cycles,
        calls.iter().map(|s| s.total_cycles).sum::<u64>()
    );

    // One fault instant rode along (the derail), and the export is
    // valid Chrome trace-event JSON with events on ring tracks 4, 1, 0.
    let events = w.machine.take_span_events();
    let instants = events
        .iter()
        .filter(|e| matches!(e, multiring::cpu::SpanEvent::Instant { .. }))
        .count();
    assert_eq!(instants, 1, "exactly the derail fault instant");
    let doc = multiring::trace::perfetto::chrome_trace_json(&events, final_cycles);
    let parsed = multiring::trace::json::parse(&doc).expect("export parses as JSON");
    let traces = parsed
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .expect("traceEvents array");
    assert!(!traces.is_empty());
    let mut tids = std::collections::BTreeSet::new();
    for ev in traces {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(
            ["B", "E", "i", "M"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        if ph != "M" {
            tids.insert(ev.get("tid").and_then(|t| t.as_u64()).expect("tid"));
            assert!(ev.get("ts").is_some(), "timestamped event");
        }
    }
    assert_eq!(
        tids.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 4],
        "one track per ring that saw activity"
    );
}

/// The supervisor's own counters ride along in the snapshot: a ring-1
/// gate call from a logged-in process shows up both in the hardware
/// crossing counters and in the `os.*` extras.
#[test]
fn system_snapshot_carries_supervisor_extras() {
    let mut sys = System::boot();
    sys.enable_metrics();
    let pid = sys.login("alice");
    let mut data = vec![Word::new(5)]; // units to charge
    data.resize(16, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 64);
    let calls = vec![(
        gate_addr(segs::RING1, ring1::ACCT_CHARGE),
        vec![SegAddr::from_parts(scratch.segno, 0).unwrap()],
    )];
    let seq = gen_call_sequence(Ring::R4, &calls);
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &seq);
    sys.prepare(pid, code.segno, 0, Ring::R4);
    assert_eq!(sys.machine.run(100_000), RunExit::Halted);

    let snap = sys.metrics_snapshot();
    assert!(
        snap.crossing("call_down").unwrap() >= 1,
        "gate call crossed down"
    );
    assert!(snap.crossing("return_up").unwrap() >= 1);
    let extra = |key: &str| {
        snap.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing extra {key}"))
    };
    assert_eq!(extra("os.gate_calls_ring1"), 1);
    assert_eq!(extra(&format!("os.proc.{pid}.gate_calls")), 1);
    // The JSON export carries the extras too.
    let json = snap.to_json();
    assert!(json.contains("\"os.gate_calls_ring1\": 1"));
}

/// A wrapped execution-trace ring buffer surfaces its drop count in
/// the snapshot and in both export formats — the count must survive
/// wraparound, not reset with the discarded events.
#[test]
fn trace_ring_wraparound_drop_count_survives_export() {
    let mut w = gate_call_world(8);
    w.machine.enable_metrics();
    // A 4-entry ring under a multi-hundred-event workload is
    // guaranteed to wrap many times over.
    w.machine.enable_trace(4);
    w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    assert_eq!(w.machine.run(10_000), RunExit::Halted);

    let dropped = w.machine.trace_dropped();
    assert!(dropped > 0, "a 4-entry trace ring must have wrapped");
    let snap = w.machine.metrics_snapshot();
    assert_eq!(snap.trace_dropped, dropped);
    let json = snap.to_json();
    assert!(
        json.contains(&format!("\"trace\": {{\"dropped\": {dropped}}}")),
        "drop count missing from JSON: {json}"
    );
    let csv = snap.to_csv();
    assert!(
        csv.lines().any(|l| l == format!("trace.dropped,{dropped}")),
        "drop count missing from CSV"
    );
}

/// The CSV flattening is collision-free and lossless: every dotted key
/// appears exactly once, and each row's value parses back to exactly
/// what the snapshot struct holds — across every nested family
/// (`crossings.*`, `histograms.*`, `heatmap.N.*`, `prof.*`, `trace.*`,
/// `scheduler.*`, `extra.os.*`).
#[test]
fn csv_flattening_roundtrips_every_key_exactly_once() {
    // A supervisor run populates the most sections at once: hardware
    // counters, histograms, heatmap, profiler, and the os.* extras.
    let mut sys = System::boot();
    sys.enable_metrics();
    sys.enable_profiler(10, 50);
    let pid = sys.login("alice");
    let mut data = vec![Word::new(5)];
    data.resize(16, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 64);
    let calls = vec![(
        gate_addr(segs::RING1, ring1::ACCT_CHARGE),
        vec![SegAddr::from_parts(scratch.segno, 0).unwrap()],
    )];
    let seq = gen_call_sequence(Ring::R4, &calls);
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &seq);
    sys.prepare(pid, code.segno, 0, Ring::R4);
    assert_eq!(sys.machine.run(100_000), RunExit::Halted);

    let snap = sys.metrics_snapshot();
    let csv = snap.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("key,value"), "CSV header");
    let mut rows = std::collections::BTreeMap::new();
    for line in lines {
        let (k, v) = line.split_once(',').expect("key,value row");
        assert!(
            rows.insert(k.to_string(), v.to_string()).is_none(),
            "duplicate CSV key {k}"
        );
        assert!(
            v.parse::<f64>().is_ok(),
            "row {k}={v} does not parse as a number"
        );
    }
    let num = |k: &str| -> u64 {
        rows.get(k)
            .unwrap_or_else(|| panic!("missing CSV row {k}"))
            .parse()
            .unwrap_or_else(|e| panic!("row {k} not a u64: {e}"))
    };
    assert_eq!(num("instructions"), snap.instructions);
    assert_eq!(num("cycles"), snap.cycles);
    for (key, v) in &snap.crossings {
        assert_eq!(num(&format!("crossings.{key}")), *v);
    }
    assert_eq!(num("crossings.ring_changes"), snap.ring_changes);
    for (key, v) in &snap.faults_by_vector {
        assert_eq!(num(&format!("faults.by_vector.{key}")), *v);
    }
    for (segno, h) in &snap.heatmap {
        assert_eq!(num(&format!("heatmap.{segno}.reads")), h.reads);
        assert_eq!(num(&format!("heatmap.{segno}.writes")), h.writes);
        assert_eq!(num(&format!("heatmap.{segno}.executes")), h.executes);
        assert_eq!(num(&format!("heatmap.{segno}.violations")), h.violations);
    }
    for (k, v) in &snap.extra {
        assert_eq!(num(&format!("extra.{k}")), *v);
    }
    for (key, h) in [
        ("call_cycles", &snap.call_cycles),
        ("return_cycles", &snap.return_cycles),
    ] {
        assert_eq!(num(&format!("histograms.{key}.count")), h.count);
        assert_eq!(num(&format!("histograms.{key}.sum")), h.sum);
        assert_eq!(num(&format!("histograms.{key}.min")), h.min);
        assert_eq!(num(&format!("histograms.{key}.max")), h.max);
        assert_eq!(num(&format!("histograms.{key}.p50")), h.percentile(0.50));
        assert_eq!(num(&format!("histograms.{key}.p99")), h.percentile(0.99));
    }
    assert_eq!(num("prof.samples"), snap.prof.samples);
    assert_eq!(num("prof.sample_every"), snap.prof.sample_every);
    assert_eq!(num("prof.timeseries_points"), snap.prof.timeseries_points);
    assert_eq!(num("prof.timeseries_every"), snap.prof.timeseries_every);
    assert_eq!(num("trace.dropped"), snap.trace_dropped);
    assert_eq!(
        num("scheduler.context_switches"),
        snap.sched.context_switches
    );
    assert!(
        snap.prof.samples > 0,
        "profiler never sampled — the prof.* roundtrip is vacuous"
    );
    assert!(
        !snap.extra.is_empty(),
        "no extras recorded — the extra.* roundtrip is vacuous"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `MetricsSnapshot::merge` of two disjoint runs is the telemetry
    /// of their concatenation: counters that are linear in the gate-call
    /// count match a single run of the combined length, and every
    /// summed field equals the sum of its parts (histograms included).
    #[test]
    fn snapshot_merge_of_disjoint_runs_is_their_concatenation(a in 1u64..6, b in 1u64..6) {
        let run = |calls: u64| {
            let mut w = gate_call_world(calls);
            w.machine.enable_metrics();
            w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
            assert_eq!(w.machine.run(10_000), RunExit::Halted);
            w.machine.metrics_snapshot()
        };
        let sa = run(a);
        let sb = run(b);
        let concat = run(a + b);
        let mut merged = sa.clone();
        merged.merge(&sb);

        // Linear-in-calls counters equal the concatenated run's.
        prop_assert_eq!(merged.crossing("call_down"), concat.crossing("call_down"));
        prop_assert_eq!(merged.crossing("return_up"), concat.crossing("return_up"));
        prop_assert_eq!(merged.crossing_matrix[4][1], concat.crossing_matrix[4][1]);
        prop_assert_eq!(merged.crossing_matrix[1][4], concat.crossing_matrix[1][4]);
        prop_assert_eq!(merged.call_cycles.count, concat.call_cycles.count);

        // Summed fields equal the sum of their parts.
        prop_assert_eq!(merged.instructions, sa.instructions + sb.instructions);
        prop_assert_eq!(merged.cycles, sa.cycles + sb.cycles);
        prop_assert_eq!(merged.faults_total, sa.faults_total + sb.faults_total);
        prop_assert_eq!(merged.ring_changes, sa.ring_changes + sb.ring_changes);
        prop_assert_eq!(merged.call_cycles.sum, sa.call_cycles.sum + sb.call_cycles.sum);
        prop_assert_eq!(merged.call_cycles.min, sa.call_cycles.min.min(sb.call_cycles.min));
        prop_assert_eq!(merged.call_cycles.max, sa.call_cycles.max.max(sb.call_cycles.max));

        // Percentiles over the merged histogram stay inside the
        // observed range.
        let p50 = merged.call_cycles.percentile(0.50);
        let p99 = merged.call_cycles.percentile(0.99);
        prop_assert!(merged.call_cycles.min <= p50 && p50 <= p99);
        prop_assert!(p99 <= merged.call_cycles.max);

        // The per-segment heatmap merges by segment number: the code
        // segment's execute count is the sum of both runs'.
        let executes = |s: &multiring::metrics::MetricsSnapshot| {
            s.heatmap
                .iter()
                .find(|(segno, _)| *segno == 10)
                .map(|(_, h)| h.executes)
                .unwrap_or(0)
        };
        prop_assert_eq!(executes(&merged), executes(&sa) + executes(&sb));
    }
}
