//! End-to-end tests of the deterministic flight recorder: record a
//! run (including gate storms and I/O completions), replay it in an
//! identically built world, and verify the replay is bit-identical —
//! final registers, memory, cycles, the span event stream, and every
//! I/O delivery point. Also pins the checkpoint/seek primitive behind
//! `ringdbg`'s reverse-step and the recording's JSON file format.

use multiring::core::access::Fault;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::core::SegNo;
use multiring::cpu::machine::RunExit;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;
use multiring::cpu::{replay, run_recorded, seek, Direction, IoSystem, Recorder};
use multiring::trace::Recording;

/// A gate storm: `calls` unrolled gate calls from ring 4 into a ring-1
/// native service, ending in an exit derail handled by a halting trap
/// segment (the `tests/observability.rs` recipe, cranked up).
fn gate_storm_world(calls: u64) -> World {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(512),
    );
    let service = w.add_segment(
        20,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R5)
            .gates(1)
            .bound_words(16),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.machine
        .register_native(service, |m, _| Ok(NativeAction::Return { via: m.pr(2) }));
    let mut asm = String::new();
    for i in 0..calls {
        asm.push_str(&format!(
            "        eap pr2, ret{i}\n        eap pr3, gatep,*\n        call pr3|0\nret{i}:  nop\n"
        ));
    }
    asm.push_str("        drl 0o777\ngatep:  its 4, 20, 0\n");
    let out = multiring::asm::assemble(&asm).expect("gate-storm program");
    for (i, word) in out.words.iter().enumerate() {
        w.poke(code, i as u32, *word);
    }
    w
}

/// A ring-0 world that starts channel programs on channels 2 and 3 and
/// spins; the trap handler resumes on channel 3's completion and halts
/// on channel 2's — two asynchronous I/O deliveries per run.
fn io_world() -> World {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(64),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |m, _| match m.last_fault() {
            Some(Fault::IoCompletion { channel: 3 }) => Ok(NativeAction::Resume),
            _ => Ok(NativeAction::Halt),
        });
    let (a0, a1) = IoSystem::channel_program(
        2,
        Direction::Output,
        multiring::core::AbsAddr::new(0).unwrap(),
        400,
    );
    let (b0, b1) = IoSystem::channel_program(
        3,
        Direction::Output,
        multiring::core::AbsAddr::new(0).unwrap(),
        150,
    );
    w.poke(code, 20, a0);
    w.poke(code, 21, a1);
    w.poke(code, 22, b0);
    w.poke(code, 23, b1);
    use multiring::cpu::isa::{Instr, Opcode};
    w.poke_instr(code, 0, Instr::direct(Opcode::Sio, 20));
    w.poke_instr(code, 1, Instr::direct(Opcode::Sio, 22));
    w.poke_instr(code, 2, Instr::direct(Opcode::Nop, 0));
    w.poke_instr(code, 3, Instr::direct(Opcode::Tra, 2));
    w
}

/// Record a gate storm with frequent checkpoints, replay it in a
/// freshly built world, and require a bit-identical outcome — final
/// image, cycle count, and the span event stream.
#[test]
fn gate_storm_record_replay_is_bit_identical() {
    const CALLS: u64 = 20;
    let mut rec_w = gate_storm_world(CALLS);
    rec_w.machine.enable_spans();
    rec_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let mut recorder = Recorder::start(&rec_w.machine, "gate_storm", 64);
    assert_eq!(
        run_recorded(&mut rec_w.machine, 10_000, &mut recorder),
        RunExit::Halted
    );
    let recording = recorder.finish(&rec_w.machine);
    assert!(
        recording.checkpoints.len() >= 2,
        "expected several checkpoints at a 64-cycle interval, got {}",
        recording.checkpoints.len()
    );
    assert_eq!(
        recording.final_instructions,
        rec_w.machine.stats().instructions
    );

    let mut rep_w = gate_storm_world(CALLS);
    rep_w.machine.enable_spans();
    rep_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let report = replay(&mut rep_w.machine, &recording).expect("recording applies");
    assert!(report.ok, "replay diverged: {:?}", report.mismatch);
    assert_eq!(report.instructions, recording.final_instructions);
    assert_eq!(report.cycles, recording.final_cycles);
    assert_eq!(
        rec_w.machine.take_span_events(),
        rep_w.machine.take_span_events(),
        "replayed span stream differs from the recorded run's"
    );
}

/// The sampling profiler and the time-series pipeline are driven by
/// simulated cycles and the span stream only, so replaying a recording
/// in an identically profiled world must reproduce the folded profile
/// and the time-series JSON bit-for-bit.
#[test]
fn replay_reproduces_profile_and_timeseries_bit_identically() {
    const CALLS: u64 = 20;
    let mut rec_w = gate_storm_world(CALLS);
    rec_w.machine.enable_metrics();
    rec_w.machine.enable_profiler(50, 200);
    rec_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let mut recorder = Recorder::start(&rec_w.machine, "gate_storm_prof", 64);
    assert_eq!(
        run_recorded(&mut rec_w.machine, 10_000, &mut recorder),
        RunExit::Halted
    );
    let recording = recorder.finish(&rec_w.machine);
    let profile = rec_w.machine.profiler().folded();
    let series = rec_w.machine.timeseries().to_json();
    assert!(
        rec_w.machine.profiler().samples() > 0,
        "the storm must be long enough to sample"
    );
    assert!(
        !rec_w.machine.timeseries().is_empty(),
        "the storm must be long enough for a time-series point"
    );

    let mut rep_w = gate_storm_world(CALLS);
    rep_w.machine.enable_metrics();
    rep_w.machine.enable_profiler(50, 200);
    rep_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let report = replay(&mut rep_w.machine, &recording).expect("recording applies");
    assert!(report.ok, "replay diverged: {:?}", report.mismatch);
    assert_eq!(
        rep_w.machine.profiler().folded(),
        profile,
        "replayed folded profile differs from the recorded run's"
    );
    assert_eq!(
        rep_w.machine.timeseries().to_json(),
        series,
        "replayed time series differs from the recorded run's"
    );
}

/// Asynchronous I/O completions are nondeterministic inputs from the
/// recording's point of view: both deliveries must be logged, and the
/// replay must reproduce them at the recorded instruction, cycle, and
/// channel — and still reach a bit-identical final image.
#[test]
fn io_completions_record_and_replay_exactly() {
    let mut rec_w = io_world();
    rec_w.start(Ring::R0, SegNo::new(10).unwrap(), 0);
    let mut recorder = Recorder::start(&rec_w.machine, "io", 100);
    assert_eq!(
        run_recorded(&mut rec_w.machine, 10_000, &mut recorder),
        RunExit::Halted
    );
    let recording = recorder.finish(&rec_w.machine);
    assert_eq!(
        recording.io_events.len(),
        2,
        "both channel completions logged"
    );
    assert_eq!(
        recording.io_events[0].channel, 3,
        "channel 3 finishes first"
    );
    assert_eq!(recording.io_events[1].channel, 2);
    assert!(recording.io_events[0].cycles < recording.io_events[1].cycles);

    let mut rep_w = io_world();
    rep_w.start(Ring::R0, SegNo::new(10).unwrap(), 0);
    let report = replay(&mut rep_w.machine, &recording).expect("recording applies");
    assert!(report.ok, "replay diverged: {:?}", report.mismatch);
}

/// The recording survives its own file format: serialize to JSON,
/// parse back, and replay from the parsed copy (machine images travel
/// as hex strings, so every 36-bit word and 64-bit counter must be
/// lossless).
#[test]
fn recording_json_round_trips_and_replays() {
    let mut rec_w = gate_storm_world(5);
    rec_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let mut recorder = Recorder::start(&rec_w.machine, "roundtrip", 64);
    assert_eq!(
        run_recorded(&mut rec_w.machine, 10_000, &mut recorder),
        RunExit::Halted
    );
    let recording = recorder.finish(&rec_w.machine);

    let text = recording.to_json();
    let parsed = Recording::from_json(&text).expect("recording JSON parses");
    assert_eq!(parsed, recording, "JSON round trip must be lossless");

    let mut rep_w = gate_storm_world(5);
    rep_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let report = replay(&mut rep_w.machine, &parsed).expect("recording applies");
    assert!(
        report.ok,
        "replay of parsed recording diverged: {:?}",
        report.mismatch
    );
}

/// Checkpoint/seek fidelity (the reverse-step primitive): seeking to a
/// mid-run instruction via the nearest checkpoint plus re-execution
/// lands in exactly the state a from-scratch run reaches at that
/// instruction — including the SDW associative memory, whose contents
/// are architecturally visible through cycle counts.
#[test]
fn seek_matches_a_from_scratch_run() {
    const CALLS: u64 = 20;
    let mut rec_w = gate_storm_world(CALLS);
    rec_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    let mut recorder = Recorder::start(&rec_w.machine, "seek", 64);
    assert_eq!(
        run_recorded(&mut rec_w.machine, 10_000, &mut recorder),
        RunExit::Halted
    );
    let recording = recorder.finish(&rec_w.machine);
    assert!(recording.checkpoints.len() >= 2);

    // A target past the first checkpoint, so the seek genuinely
    // restores mid-run state rather than replaying from the start.
    let target = recording.checkpoints[1].instructions + 7;
    assert!(target < recording.final_instructions);

    // Reference: a fresh world stepped from the beginning.
    let mut ref_w = gate_storm_world(CALLS);
    ref_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    while ref_w.machine.stats().instructions < target {
        ref_w.machine.step();
    }

    let mut seek_w = gate_storm_world(CALLS);
    seek_w.start(Ring::R4, SegNo::new(10).unwrap(), 0);
    seek(&mut seek_w.machine, &recording, target).expect("seek");
    assert_eq!(seek_w.machine.stats().instructions, target);
    assert_eq!(seek_w.machine.cycles(), ref_w.machine.cycles());
    assert_eq!(seek_w.machine.ipr(), ref_w.machine.ipr());
    assert_eq!(
        seek_w.machine.capture_image().words(),
        ref_w.machine.capture_image().words(),
        "seek state differs from a from-scratch run at the same instruction"
    );
}
