//! The shipped sample assembly programs (`examples/asm/*.rasm`)
//! assemble and compute the right answers on the simulator.

use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::machine::RunExit;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;

fn run_sample(path: &str, budget: u64) -> (World, RunExit) {
    let source = std::fs::read_to_string(path).expect("sample exists");
    let image = multiring::asm::assemble(&source).expect("sample assembles");
    let mut world = World::new();
    let code = world.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R7)
            .gates(4)
            .bound_words(image.len().max(16)),
    );
    world.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(1024));
    world.add_standard_stacks(16);
    let trap = world.add_trap_segment();
    world
        .machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    for (i, w) in image.words.iter().enumerate() {
        world.poke(code, i as u32, *w);
    }
    world.start(Ring::R4, code, 0);
    let exit = world.machine.run(budget);
    (world, exit)
}

#[test]
fn fibonacci_sample_computes_fib_12() {
    let (world, exit) = run_sample("examples/asm/fibonacci.rasm", 10_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(world.machine.a().raw(), 144);
    // The stored sequence is right too.
    let data = ring_core::addr::SegNo::new(11).unwrap();
    let expect = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
    for (i, &v) in expect.iter().enumerate() {
        assert_eq!(world.peek(data, i as u32).raw(), v, "fib({i})");
    }
}

#[test]
fn sieve_sample_counts_primes_below_64() {
    let (world, exit) = run_sample("examples/asm/sieve.rasm", 50_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(world.machine.a().raw(), 18, "18 primes below 64");
    let data = ring_core::addr::SegNo::new(11).unwrap();
    assert_eq!(world.peek(data, 13).raw(), 0, "13 is prime");
    assert_eq!(world.peek(data, 15).raw(), 1, "15 is composite");
}

#[test]
fn subroutine_sample_uses_internal_calls() {
    let (world, exit) = run_sample("examples/asm/subroutine.rasm", 1_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(world.machine.a().raw(), 20);
    // Two same-ring CALLs and RETURNs; no ring was crossed.
    let st = world.machine.stats();
    assert_eq!(st.calls_same_ring, 2);
    assert_eq!(st.returns_same_ring, 2);
    assert_eq!(st.calls_downward, 0);
}

#[test]
fn gcd_sample_computes_gcd() {
    let (world, exit) = run_sample("examples/asm/gcd.rasm", 5_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(world.machine.a().raw(), 21, "gcd(252, 105) = 21");
}
