//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;

use multiring::core::access::Fault;
use multiring::core::addr::{pack_pointer, unpack_pointer, SegAddr, MAX_SEGNO, MAX_WORDNO};
use multiring::core::callret::{check_call, check_return};
use multiring::core::effective::EffectiveRingRules;
use multiring::core::oracle;
use multiring::core::registers::{Dbr, IndWord, PtrReg};
use multiring::core::ring::Ring;
use multiring::core::sdw::{Sdw, SdwBuilder, SdwFlags};
use multiring::core::validate::{check_fetch, check_read, check_write};
use multiring::core::word::Word;
use multiring::core::AbsAddr;

fn arb_ring() -> impl Strategy<Value = Ring> {
    (0u8..8).prop_map(|n| Ring::new(n).unwrap())
}

fn arb_ring_triple() -> impl Strategy<Value = (Ring, Ring, Ring)> {
    (0u8..8, 0u8..8, 0u8..8).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort_unstable();
        (
            Ring::new(v[0]).unwrap(),
            Ring::new(v[1]).unwrap(),
            Ring::new(v[2]).unwrap(),
        )
    })
}

fn arb_sdw() -> impl Strategy<Value = Sdw> {
    (
        arb_ring_triple(),
        0u32..(1 << 24),
        0u32..(1 << 14),
        any::<[bool; 6]>(),
        0u32..(1 << 14),
        0u8..4,
    )
        .prop_map(|(rings, addr, bound, flags, gate, fc)| {
            Sdw::new(
                AbsAddr::new(addr).unwrap(),
                rings,
                SdwFlags {
                    read: flags[0],
                    write: flags[1],
                    execute: flags[2],
                    present: flags[3],
                    privileged: flags[4],
                    unpaged: flags[5],
                    fault_class: fc,
                },
                bound,
                gate,
            )
            .unwrap()
        })
}

fn arb_addr() -> impl Strategy<Value = SegAddr> {
    (0u32..=MAX_SEGNO, 0u32..=MAX_WORDNO).prop_map(|(s, w)| SegAddr::from_parts(s, w).unwrap())
}

proptest! {
    /// Fig. 3 formats: SDWs survive the pack/unpack round trip.
    #[test]
    fn sdw_pack_round_trip(sdw in arb_sdw()) {
        let (w0, w1) = sdw.pack();
        prop_assert_eq!(Sdw::unpack(w0, w1), sdw);
    }

    /// Pointer layout round-trips for all rings and addresses.
    #[test]
    fn pointer_pack_round_trip(ring in arb_ring(), addr in arb_addr()) {
        let (r2, a2) = unpack_pointer(pack_pointer(ring, addr));
        prop_assert_eq!(r2, ring);
        prop_assert_eq!(a2, addr);
    }

    /// Indirect-word pairs round-trip.
    #[test]
    fn indword_pack_round_trip(ring in arb_ring(), addr in arb_addr(), i in any::<bool>()) {
        let iw = IndWord::new(ring, addr, i);
        let (w0, w1) = iw.pack();
        prop_assert_eq!(IndWord::unpack(w0, w1), iw);
    }

    /// DBR images round-trip.
    #[test]
    fn dbr_pack_round_trip(
        addr in 0u32..(1 << 24),
        bound in 0u32..(1 << 16),
        sb in 0u32..=MAX_SEGNO,
    ) {
        let dbr = Dbr::new(
            AbsAddr::new(addr).unwrap(),
            bound,
            multiring::core::SegNo::new(sb).unwrap(),
        );
        let (w0, w1) = dbr.pack();
        prop_assert_eq!(Dbr::unpack(w0, w1), dbr);
    }

    /// The nested-subset property: any access permitted at ring m is
    /// permitted at every ring more privileged than m — for read and
    /// write (execute brackets have a deliberate lower limit and are
    /// exempt, per the paper).
    #[test]
    fn read_write_access_is_downward_closed(sdw in arb_sdw(), addr in arb_addr()) {
        for m in 1..8u8 {
            let lo = Ring::new(m - 1).unwrap();
            let hi = Ring::new(m).unwrap();
            if check_read(&sdw, addr, hi).is_ok() {
                prop_assert!(check_read(&sdw, addr, lo).is_ok());
            }
            if check_write(&sdw, addr, hi).is_ok() {
                prop_assert!(check_write(&sdw, addr, lo).is_ok());
            }
        }
    }

    /// Differential: production validation equals the oracle for every
    /// randomly generated descriptor, address and ring.
    #[test]
    fn validation_matches_oracle(sdw in arb_sdw(), addr in arb_addr(), ring in arb_ring()) {
        use oracle::Outcome;
        let coarse = |r: Result<(), Fault>| match r {
            Ok(()) => Outcome::Allowed(ring),
            Err(Fault::SegmentFault { .. }) => Outcome::Missing,
            Err(_) => Outcome::Violation,
        };
        prop_assert_eq!(
            coarse(check_fetch(&sdw, addr, ring)),
            oracle::fetch(&sdw, addr.wordno.value(), ring)
        );
        prop_assert_eq!(
            coarse(check_read(&sdw, addr, ring)),
            oracle::read(&sdw, addr.wordno.value(), ring)
        );
        prop_assert_eq!(
            coarse(check_write(&sdw, addr, ring)),
            oracle::write(&sdw, addr.wordno.value(), ring)
        );
    }

    /// Differential for CALL and RETURN against the oracle.
    #[test]
    fn callret_matches_oracle(
        sdw in arb_sdw(),
        addr in arb_addr(),
        eff_n in 0u8..8,
        cur_n in 0u8..8,
        same in any::<bool>(),
    ) {
        use oracle::Outcome;
        // Only eff >= cur is reachable (TPR.RING is a seeded max).
        let (eff_n, cur_n) = if eff_n >= cur_n { (eff_n, cur_n) } else { (cur_n, eff_n) };
        let eff = Ring::new(eff_n).unwrap();
        let cur = Ring::new(cur_n).unwrap();
        let got = match check_call(&sdw, addr, eff, cur, same) {
            Ok(d) => Outcome::Allowed(d.new_ring),
            Err(Fault::UpwardCall { .. }) => Outcome::SoftwareAssist,
            Err(Fault::SegmentFault { .. }) => Outcome::Missing,
            Err(_) => Outcome::Violation,
        };
        prop_assert_eq!(got, oracle::call(&sdw, addr.wordno.value(), eff, cur, same));

        let got = match check_return(&sdw, addr, eff, cur) {
            Ok(d) => Outcome::Allowed(d.new_ring),
            Err(Fault::DownwardReturn { .. }) => Outcome::SoftwareAssist,
            Err(Fault::SegmentFault { .. }) => Outcome::Missing,
            Err(_) => Outcome::Violation,
        };
        prop_assert_eq!(got, oracle::ret(&sdw, addr.wordno.value(), eff, cur));
    }

    /// A successful CALL never raises the ring of execution; a
    /// successful RETURN never lowers it.
    #[test]
    fn call_down_return_up(
        sdw in arb_sdw(),
        addr in arb_addr(),
        eff in arb_ring(),
        cur in arb_ring(),
        same in any::<bool>(),
    ) {
        if let Ok(d) = check_call(&sdw, addr, eff, cur, same) {
            prop_assert!(d.new_ring <= cur);
            prop_assert!(d.new_ring >= sdw.r1);
            prop_assert!(d.new_ring <= sdw.r2);
        }
        if let Ok(d) = check_return(&sdw, addr, eff, cur) {
            prop_assert!(d.new_ring >= cur);
        }
    }

    /// Effective-ring folding is monotone (never lowers) and bounded by
    /// the inputs under the full rules.
    #[test]
    fn effective_fold_is_monotone_max(
        cur in arb_ring(),
        ind in arb_ring(),
        sdw in arb_sdw(),
    ) {
        let r = multiring::core::effective::fold_indirect(
            cur, ind, &sdw, EffectiveRingRules::PAPER,
        );
        prop_assert!(r >= cur);
        prop_assert!(r >= ind);
        prop_assert!(r >= sdw.r1);
        prop_assert!(r == cur || r == ind || r == sdw.r1);
    }

    /// 36-bit word arithmetic: wrapping matches i64 arithmetic mod 2^36.
    #[test]
    fn word_arithmetic_mod_2_36(a in any::<u64>(), b in any::<u64>()) {
        let wa = Word::new(a);
        let wb = Word::new(b);
        let mask = (1u64 << 36) - 1;
        prop_assert_eq!(wa.wrapping_add(wb).raw(), (wa.raw().wrapping_add(wb.raw())) & mask);
        prop_assert_eq!(wa.wrapping_sub(wb).raw(), (wa.raw().wrapping_sub(wb.raw())) & mask);
        prop_assert_eq!(Word::from_signed(wa.as_signed()), wa);
    }

    /// Assembler/disassembler round trip over random instructions.
    #[test]
    fn asm_disasm_round_trip(raw in any::<u64>()) {
        let w = Word::new(raw);
        if let Ok(instr) = multiring::cpu::isa::Instr::decode(w) {
            let text = multiring::asm::disassemble(&instr);
            let out = multiring::asm::assemble(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
            prop_assert_eq!(out.words.len(), 1);
            prop_assert_eq!(out.words[0], instr.encode());
        }
    }

    /// PtrReg ring floors are idempotent and monotone.
    #[test]
    fn pr_ring_floor_properties(ring in arb_ring(), floor in arb_ring(), addr in arb_addr()) {
        let pr = PtrReg::new(ring, addr);
        let once = pr.with_ring_floor(floor);
        prop_assert!(once.ring >= floor);
        prop_assert!(once.ring >= ring);
        prop_assert_eq!(once.with_ring_floor(floor), once);
    }

    /// SDW corruption cannot widen brackets: unpacking arbitrary bits
    /// yields r1 <= r2 <= r3.
    #[test]
    fn sdw_unpack_preserves_ring_ordering(w0 in any::<u64>(), w1 in any::<u64>()) {
        let sdw = Sdw::unpack(Word::new(w0), Word::new(w1));
        prop_assert!(sdw.r1 <= sdw.r2);
        prop_assert!(sdw.r2 <= sdw.r3);
    }

    /// SdwBuilder bound_words always covers the requested length.
    #[test]
    fn bound_words_covers(words in 1u32..(1 << 18)) {
        let sdw = SdwBuilder::new().bound_words(words).build();
        prop_assert!(sdw.length_words() >= words);
        prop_assert!(sdw.length_words() < words + 16);
    }
}

/// Machine-level property: across random short programs, the hardware
/// invariant `PRn.RING >= IPR.RING` holds after every instruction.
#[test]
fn pr_invariant_over_random_programs() {
    use multiring::core::sdw::SdwBuilder;
    use multiring::cpu::isa::{AddrMode, Instr, Opcode};
    use multiring::cpu::machine::StepOutcome;
    use multiring::cpu::native::NativeAction;
    use multiring::cpu::testkit::World;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x1971);
    for _ in 0..60 {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
                .write(false)
                .gates(4)
                .bound_words(256),
        );
        let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(256));
        w.add_standard_stacks(16);
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));
        // Random instruction soup (data-ish words too); faults are fine
        // — the invariant must hold regardless.
        for i in 0..64u32 {
            let op = *[
                Opcode::Lda,
                Opcode::Sta,
                Opcode::Ada,
                Opcode::Eap,
                Opcode::Spri,
                Opcode::Tra,
                Opcode::Call,
                Opcode::Return,
                Opcode::Aos,
                Opcode::Nop,
            ]
            .get(rng.gen_range(0..10usize))
            .unwrap();
            let mut instr = Instr {
                opcode: op,
                pr: if rng.gen_bool(0.6) {
                    Some(rng.gen_range(0..8))
                } else {
                    None
                },
                indirect: rng.gen_bool(0.2),
                mode: if rng.gen_bool(0.2) {
                    AddrMode::Immediate
                } else {
                    AddrMode::None
                },
                xreg: rng.gen_range(0..8),
                offset: rng.gen_range(0..64),
            };
            if rng.gen_bool(0.3) {
                instr.offset = rng.gen_range(0..256);
            }
            w.poke(code, i, instr.encode());
        }
        for n in 0..8 {
            w.machine.set_pr(
                n,
                PtrReg::new(
                    Ring::R4,
                    SegAddr::from_parts(
                        if n % 2 == 0 {
                            code.value()
                        } else {
                            data.value()
                        },
                        (n * 8) as u32,
                    )
                    .unwrap(),
                ),
            );
        }
        w.start(Ring::R4, code, 0);
        for _ in 0..200 {
            match w.machine.step() {
                StepOutcome::Ran | StepOutcome::Trapped(_) => {
                    for n in 0..8 {
                        assert!(
                            w.machine.pr(n).ring >= w.machine.ring(),
                            "PR{n} ring {} below IPR ring {}",
                            w.machine.pr(n).ring,
                            w.machine.ring()
                        );
                    }
                }
                StepOutcome::Halted => break,
            }
        }
    }
}
