//! Robustness under arbitrary corruption: whatever garbage sits in
//! physical memory — descriptor segments included — the simulator must
//! respond with faults and halts, never panics, and the protection
//! invariants must keep holding.

use multiring::core::registers::{Dbr, Ipr, PtrReg};
use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::core::{AbsAddr, SegAddr, SegNo, WordNo};
use multiring::cpu::machine::{Machine, MachineConfig, StepOutcome};
use multiring::cpu::testkit::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Completely random physical memory, random DBR, random start state:
/// the machine must step without panicking (faults and double faults
/// are fine) and the PR-ring invariant must hold whenever it runs.
#[test]
fn random_memory_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x0645_6180);
    for round in 0..80 {
        let words = 8 * 1024;
        let mut m = Machine::new(words, MachineConfig::default());
        for a in 0..words as u32 {
            // Mix of random garbage and zeros (zeros are common in
            // real memory and decode differently).
            if rng.gen_bool(0.7) {
                m.phys_mut()
                    .poke(AbsAddr::new(a).unwrap(), Word::new(rng.gen()))
                    .unwrap();
            }
        }
        m.load_dbr(Dbr::new(
            AbsAddr::new(rng.gen_range(0..words as u32)).unwrap(),
            rng.gen_range(0..64),
            SegNo::new(rng.gen_range(0..100)).unwrap(),
        ));
        let ring = Ring::new(rng.gen_range(0..8)).unwrap();
        m.set_ipr(Ipr::new(
            ring,
            SegAddr::from_parts(rng.gen_range(0..64), rng.gen_range(0..1024)).unwrap(),
        ));
        for n in 0..8 {
            m.set_pr(
                n,
                PtrReg::new(
                    Ring::new(rng.gen_range(0..8)).unwrap(),
                    SegAddr::from_parts(rng.gen_range(0..64), rng.gen_range(0..1024)).unwrap(),
                ),
            );
        }
        if rng.gen_bool(0.3) {
            m.set_timer(Some(rng.gen_range(1..200)));
        }
        for _ in 0..300 {
            match m.step() {
                StepOutcome::Halted => break,
                StepOutcome::Ran | StepOutcome::Trapped(_) => {
                    for n in 0..8 {
                        assert!(
                            m.pr(n).ring >= m.ring(),
                            "round {round}: PR{n} invariant broke"
                        );
                    }
                }
            }
        }
    }
}

/// Corrupting descriptor words mid-run on an otherwise sane world: the
/// running program may start faulting, but never silently *gains*
/// access to the ring-0 segment, and the simulator never panics.
#[test]
fn descriptor_corruption_cannot_widen_access() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            multiring::core::sdw::SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
                .bound_words(64),
        );
        // The protected target: ring-0 data, with known sentinel.
        let secret = w.add_segment(
            11,
            multiring::core::sdw::SdwBuilder::data(Ring::R0, Ring::R0).bound_words(16),
        );
        w.poke(secret, 0, Word::new(0o717171));
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(multiring::cpu::native::NativeAction::Halt));
        // Program: repeatedly try to read and overwrite the secret.
        w.machine.set_pr(
            1,
            PtrReg::new(Ring::R4, SegAddr::from_parts(11, 0).unwrap()),
        );
        w.poke_instr(
            code,
            0,
            multiring::cpu::isa::Instr::pr_relative(multiring::cpu::isa::Opcode::Stz, 1, 0),
        );
        w.poke_instr(
            code,
            1,
            multiring::cpu::isa::Instr::direct(multiring::cpu::isa::Opcode::Tra, 0),
        );
        w.start(Ring::R4, code, 0);

        // Corrupt random bits of the SECRET's descriptor pair — but
        // only its word 0 ring/limit fields region, leaving W flag in
        // word 1 alone half the time; any corruption must still never
        // let ring 4 through, because unpack clamps R1<=R2<=R3 and the
        // write bracket is [0, R1]: widening requires R1 >= 4 — that IS
        // expressible, so instead assert: either the write keeps
        // faulting, or the descriptor now *legitimately* (per its new
        // fields) permits it. What must never happen is a write being
        // permitted while the decoded SDW forbids it.
        let desc_base = w.dbr().addr;
        let pair = desc_base.wrapping_add(2 * 11);
        for _ in 0..20 {
            let which = rng.gen_bool(0.5);
            let addr = if which { pair } else { pair.wrapping_add(1) };
            let cur = w.machine.phys().peek(addr).unwrap();
            let flipped = Word::new(cur.raw() ^ (1u64 << rng.gen_range(0..36u32)));
            w.machine.phys_mut().poke(addr, flipped).unwrap();
            w.machine.translator_mut().flush_cache();

            let before = w.machine.phys().peek(
                w.read_sdw(11).addr, // may have moved if addr bits flipped
            );
            let _ = before;
            let sdw_now = w.read_sdw(11);
            let outcome = w.machine.step(); // the STZ attempt
            match outcome {
                StepOutcome::Ran => {
                    // The machine permitted the write: the decoded SDW
                    // must actually say ring 4 may write.
                    assert!(
                        sdw_now.write && sdw_now.r1 >= Ring::R4 && sdw_now.present,
                        "write permitted but SDW forbids it: {sdw_now:?}"
                    );
                }
                StepOutcome::Trapped(_) | StepOutcome::Halted => {}
            }
            if w.machine.halted() {
                break;
            }
            // Step past the TRA (or the trap handler's halt).
            let _ = w.machine.step();
            if w.machine.halted() {
                break;
            }
        }
    }
}

/// Random instruction words interleaved with random EA modifiers on a
/// sane world: exhaustive exercise of the decode + EA + validate path.
#[test]
fn random_code_on_sane_world_never_panics() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..60 {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            multiring::core::sdw::SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
                .gates(8)
                .bound_words(256),
        );
        w.add_segment(
            11,
            multiring::core::sdw::SdwBuilder::data(Ring::R4, Ring::R4).bound_words(256),
        );
        w.add_standard_stacks(16);
        let trap = w.add_trap_segment();
        w.machine
            .register_native(trap, |_, _| Ok(multiring::cpu::native::NativeAction::Halt));
        for i in 0..256u32 {
            w.poke(code, i, Word::new(rng.gen()));
        }
        for n in 0..8 {
            w.machine.set_pr(
                n,
                PtrReg::new(
                    Ring::new(rng.gen_range(4..8)).unwrap(),
                    SegAddr::new(
                        SegNo::new(if rng.gen_bool(0.5) { 10 } else { 11 }).unwrap(),
                        WordNo::new(rng.gen_range(0..256)).unwrap(),
                    ),
                ),
            );
        }
        w.start(Ring::R4, code, rng.gen_range(0..256));
        let _ = w.machine.run(500);
    }
}
