//! `multiring` — a simulator of the Schroeder–Saltzer hardware
//! architecture for protection rings (3rd SOSP, 1971 / CACM 15(3),
//! 1972), together with the Multics-like system substrate the
//! mechanisms exist to protect.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`ring-core`) — the paper's contribution as pure logic:
//!   storage formats (Fig. 3), brackets, per-reference validation
//!   (Figs. 4, 6, 7), effective-ring formation (Fig. 5), and the
//!   CALL/RETURN ring-switching decisions (Figs. 8, 9).
//! * [`segmem`] (`ring-segmem`) — physical memory, descriptor-segment
//!   translation with an SDW associative memory, and demand paging.
//! * [`cpu`] (`ring-cpu`) — the cycle-counting 36-bit processor: full
//!   instruction cycle, traps, privileged instructions, I/O channels,
//!   and native procedure segments.
//! * [`asm`] (`ring-asm`) — a two-pass assembler/disassembler for the
//!   simulator ISA.
//! * [`os`] (`ring-os`) — ACLs, processes, a layered supervisor (rings
//!   0–1), user protected subsystems (ring 2), and the evaluation
//!   baselines (645-style software rings; two-mode machine).
//! * [`sched`] (`ring-sched`) — processor multiplexing: the ready/
//!   blocked queues and counters behind the preemptive round-robin
//!   scheduler in `ring-os`.
//! * [`metrics`] (`ring-metrics`) — the observability layer: ring-
//!   crossing telemetry, fault accounting, cycle histograms, per-segment
//!   heatmaps, and JSON/CSV export (see `docs/OBSERVABILITY.md`).
//! * [`trace`] (`ring-trace`) — the flight recorder: span-based
//!   ring-crossing traces with per-gate cycle attribution, Chrome
//!   trace-event / Perfetto export, and deterministic record/replay
//!   containers.
//! * [`prof`] (`ring-prof`) — cycle-attributed profiling: the
//!   deterministic sampling profiler (folded-stack / flamegraph
//!   export), interval time-series telemetry, and Perfetto counter
//!   tracks.
//! * [`fleet`] (`ring-fleet`) — thousands of deterministic machines
//!   across host threads, booted from one shared copy-on-write image,
//!   with fleet-level snapshot aggregation (see `docs/FLEET.md`).
//!
//! # Quickstart
//!
//! ```
//! use multiring::os::{System, Acl, AclEntry, Modes};
//! use multiring::core::ring::Ring;
//! use multiring::core::word::Word;
//!
//! // Boot a system, log a user in, create a stored segment.
//! let mut sys = System::boot();
//! let pid = sys.login("alice");
//! let acl = Acl::single(
//!     AclEntry::new("alice", Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap(),
//! );
//! sys.create_segment("udd>alice>hello", acl, vec![Word::new(42)]);
//! assert_eq!(sys.state.borrow().fs.segment_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ring_asm as asm;
pub use ring_core as core;
pub use ring_cpu as cpu;
pub use ring_fleet as fleet;
pub use ring_metrics as metrics;
pub use ring_os as os;
pub use ring_prof as prof;
pub use ring_sched as sched;
pub use ring_segmem as segmem;
pub use ring_trace as trace;
