//! `ringsh` — an interactive shell over the booted system: create
//! users and stored segments, stage and run ring-4 programs, watch the
//! supervisor work.
//!
//! ```text
//! $ cargo run --bin ringsh [-- --no-fastpath]
//! ring> login alice
//! ring> create udd>alice>notes 1 2 3 4
//! ring> asm examples/asm/fibonacci.rasm
//! ring> run 64
//! ring> stats
//! ```
//!
//! Commands (also `help` at the prompt):
//!
//! ```text
//! login <user>             create a process for <user> and switch to it
//! create <path> [w...]     create a stored segment (user gets RW at ring 4)
//! share <path> <user> <r|rw|re>   add an ACL entry for another user
//! asm <file.rasm>          assemble a file into the current process
//! run <segno> [entry]      run the current process from segno|entry
//! cat <path>               print a stored segment's first words
//! ps                       list processes with scheduler state
//!                          (running/ready/blocked-with-reason/exited)
//! storm [n] [pages] [rounds] [frames]
//!                          run an n-process demand-paging storm under
//!                          the preemptive scheduler (see docs/KERNEL.md)
//! chaos <seed> [rate] [n]  run the paging storm under a seeded
//!                          fault-injection campaign (mean one fault
//!                          per [rate] cycles, default 5000) and report
//!                          what the supervisor recovered, killed or
//!                          degraded (see docs/RELIABILITY.md)
//! stats                    supervisor + machine statistics; every
//!                          populated section prints — scheduler
//!                          counters, ring crossings, SDW cache, chaos
//!                          recovery, profiler — whichever mode filled it
//! top [n]                  `top`-style profiler view: sample counts by
//!                          ring and the n hottest stacks (default 10)
//! heatmap                  per-segment access counts (R/W/E/violations)
//! metrics [file]           dump the full JSON snapshot (to a file, or
//!                          the terminal)
//! tty                      show what the typewriter has printed
//! audit                    show the audit subsystem log
//! quit
//! ```

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use multiring::core::ring::Ring;
use multiring::core::word::Word;
use multiring::os::acl::{Acl, AclEntry, Modes};
use multiring::os::System;

struct Shell {
    sys: System,
    current: Option<usize>,
}

impl Shell {
    fn need_login(&self) -> Option<usize> {
        if self.current.is_none() {
            println!("  no process: `login <user>` first");
        }
        self.current
    }

    fn cmd(&mut self, parts: &[&str]) -> bool {
        match parts {
            [] => {}
            ["quit"] | ["q"] | ["exit"] => return false,
            ["help"] | ["h"] => {
                println!("login <user> | create <path> [words...] | share <path> <user> <r|rw|re>");
                println!("asm <file> | run <segno> [entry] | cat <path> | ps | logout | stats | top [n] | heatmap | metrics [file] | tty | audit | quit");
                println!(
                    "storm [procs] [pages] [rounds] [frames]   run a multiprogramming page storm"
                );
                println!(
                    "chaos <seed> [rate] [procs]               page storm under fault injection"
                );
            }
            ["login", user] => {
                let pid = self.sys.login(user);
                // A scratch data segment at segno 11, matching the
                // convention the shipped .rasm samples use.
                let base = self
                    .sys
                    .alloc
                    .borrow_mut()
                    .alloc(1024)
                    .expect("scratch storage");
                let sdw = multiring::core::sdw::SdwBuilder::data(Ring::R4, Ring::R4)
                    .addr(base)
                    .bound_words(1024)
                    .build();
                self.sys.install_sdw(pid, 11, &sdw);
                self.current = Some(pid);
                println!("  {user} is process {pid} (now current; scratch data at segment 11)");
            }
            ["create", path, words @ ..] => {
                let Some(pid) = self.need_login() else {
                    return true;
                };
                let user = self.sys.state.borrow().processes[pid].user.clone();
                let acl = Acl::single(
                    AclEntry::new(&user, Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0)
                        .expect("rings ordered"),
                );
                let data: Vec<Word> = words
                    .iter()
                    .map(|w| Word::new(w.parse::<u64>().unwrap_or(0)))
                    .collect();
                match self
                    .sys
                    .state
                    .borrow_mut()
                    .fs
                    .create_segment(path, acl, data)
                {
                    Ok(id) => println!("  created {path} (stored id {})", id.0),
                    Err(e) => println!("  {e}"),
                }
            }
            ["share", path, user, modes] => {
                let Some(_) = self.need_login() else {
                    return true;
                };
                let m = match *modes {
                    "r" => Modes::R,
                    "rw" => Modes::RW,
                    "re" => Modes::RE,
                    other => {
                        println!("  unknown mode `{other}` (r|rw|re)");
                        return true;
                    }
                };
                let entry = AclEntry::new(user, m, (Ring::R4, Ring::R4, Ring::R4), 0)
                    .expect("rings ordered");
                let mut st = self.sys.state.borrow_mut();
                match st.fs.resolve(path) {
                    Ok(id) => match st.fs.segment_mut(id).acl.set(entry, Ring::R4) {
                        Ok(()) => println!("  {user} now has {modes} on {path}"),
                        Err(e) => println!("  refused: {e}"),
                    },
                    Err(e) => println!("  {e}"),
                }
            }
            ["asm", file] => {
                let Some(pid) = self.need_login() else {
                    return true;
                };
                match std::fs::read_to_string(file) {
                    Ok(src) => {
                        // Give programs a scratch data segment first so
                        // `its 4, <data>, ...` conventions can use it.
                        let staged = self.sys.install_code(pid, Ring::R4, Ring::R4, 0, &src);
                        println!("  staged at segment {} (labels: {})", staged.segno, {
                            let mut names: Vec<&str> =
                                staged.symbols.keys().map(|s| s.as_str()).collect();
                            names.sort_unstable();
                            names.join(", ")
                        });
                    }
                    Err(e) => println!("  cannot read {file}: {e}"),
                }
            }
            ["run", segno, rest @ ..] => {
                let Some(pid) = self.need_login() else {
                    return true;
                };
                let Ok(segno) = segno.parse::<u32>() else {
                    println!("  run <segno> [entry]");
                    return true;
                };
                let entry: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(0);
                // A fresh run clears a previous exit.
                self.sys.state.borrow_mut().processes[pid].aborted = None;
                let exit = self.sys.run_user(pid, segno, entry, Ring::R4, 200_000);
                let m = &self.sys.machine;
                println!(
                    "  {exit:?}: A={:o} Q={:o} cycles={}",
                    m.a().raw(),
                    m.q().raw(),
                    m.cycles()
                );
                if let Some(reason) = &self.sys.state.borrow().processes[pid].aborted {
                    if reason != "exit" {
                        println!("  process stopped: {reason}");
                    }
                }
            }
            ["cat", path] => {
                let mut st = self.sys.state.borrow_mut();
                match st.fs.resolve(path) {
                    Ok(id) => {
                        let seg = st.fs.segment(id);
                        let words: Vec<String> = seg
                            .data
                            .iter()
                            .take(8)
                            .map(|w| format!("{:o}", w.raw()))
                            .collect();
                        println!(
                            "  {} words; first: {} {}",
                            seg.data.len(),
                            words.join(" "),
                            if seg.image.is_some() {
                                "(in memory)"
                            } else {
                                ""
                            }
                        );
                    }
                    Err(e) => println!("  {e}"),
                }
            }
            ["logout"] => {
                if let Some(pid) = self.current {
                    self.sys.logout(pid);
                    self.current = None;
                    println!("  process {pid} logged out");
                } else {
                    println!("  no current process");
                }
            }
            ["ps"] => {
                let st = self.sys.state.borrow();
                for (i, p) in st.processes.iter().enumerate() {
                    let state = if let Some(reason) = p.aborted.as_deref() {
                        if reason == "exit" {
                            "exited".to_string()
                        } else {
                            format!("aborted ({reason})")
                        }
                    } else if let Some(reason) = st.sched.blocked_reason(i) {
                        format!("blocked ({reason})")
                    } else if st.sched.is_ready(i) {
                        "ready".to_string()
                    } else if st.current == i {
                        "running".to_string()
                    } else {
                        "idle".to_string()
                    };
                    println!(
                        "  {i}: {} segs={} state={state} faults={} preempts={}{}",
                        p.user,
                        p.kst.len(),
                        p.page_faults,
                        p.preemptions,
                        if Some(i) == self.current {
                            "  *current*"
                        } else {
                            ""
                        }
                    );
                }
                if st.processes.is_empty() {
                    println!("  (no processes)");
                }
            }
            ["storm", rest @ ..] => {
                // A canned multiprogramming demonstration: N processes
                // sweeping private paged segments under a frame budget.
                let procs: usize = rest.first().and_then(|v| v.parse().ok()).unwrap_or(4);
                let pages: u32 = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(5);
                let rounds: u32 = rest.get(2).and_then(|v| v.parse().ok()).unwrap_or(10);
                let frames: u32 = rest.get(3).and_then(|v| v.parse().ok()).unwrap_or(16);
                if procs == 0 || u64::from(pages) * 1024 <= 4096 {
                    println!(
                        "  storm [procs>=1] [pages>=5] [rounds] [frames] (segments must page)"
                    );
                    return true;
                }
                {
                    // First storm decides the frame budget; later ones
                    // keep the pool (frames may already hold pages).
                    let mut st = self.sys.state.borrow_mut();
                    if st.frames.is_none() && frames > 0 {
                        st.frames = Some(multiring::segmem::FramePool::new(frames));
                    }
                }
                let spec = multiring::os::workload::StormSpec {
                    procs,
                    pages,
                    rounds,
                };
                let installed = multiring::os::workload::install_page_storm(&mut self.sys, &spec);
                let quantum = self.sys.state.borrow().quantum;
                self.sys.machine.set_timer(Some(quantum));
                let exit = self.sys.machine.run(5_000_000);
                println!(
                    "  {exit:?} after {} cycles; {} storm processes (see ps / stats)",
                    self.sys.machine.cycles(),
                    installed.len()
                );
                self.current = Some(installed[0].pid);
            }
            ["chaos", rest @ ..] => {
                // The paging storm again, but under a seeded fault
                // campaign: the supervisor must recover, confine or
                // degrade around every injection.
                let Some(seed) = rest.first().and_then(|v| v.parse::<u64>().ok()) else {
                    println!("  chaos <seed> [rate-cycles] [procs]");
                    return true;
                };
                let rate: u64 = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(5_000);
                let procs: usize = rest.get(2).and_then(|v| v.parse().ok()).unwrap_or(3);
                if rate == 0 || procs == 0 {
                    println!("  chaos <seed> [rate-cycles>=1] [procs>=1]");
                    return true;
                }
                {
                    let mut st = self.sys.state.borrow_mut();
                    if st.frames.is_none() {
                        st.frames = Some(multiring::segmem::FramePool::new(16));
                    }
                }
                self.sys.enable_chaos(multiring::cpu::FaultPlan::Campaign {
                    seed,
                    mean_interval: rate,
                });
                let spec = multiring::os::workload::StormSpec {
                    procs,
                    pages: 5,
                    rounds: 10,
                };
                let installed = multiring::os::workload::install_page_storm(&mut self.sys, &spec);
                let quantum = self.sys.state.borrow().quantum;
                self.sys.machine.set_timer(Some(quantum));
                let exit = self.sys.machine.run(5_000_000);
                let cs = self.sys.chaos_stats();
                let e = self.sys.machine.chaos();
                println!(
                    "  {exit:?} after {} cycles; {} injected, {} detected, {} recovered, \
                     {} killed, {} salvaged, {} refetched, {} drum retries, {} io timeouts",
                    self.sys.machine.cycles(),
                    e.injected_total(),
                    e.detected_total(),
                    cs.recovered,
                    cs.killed,
                    cs.salvaged,
                    cs.refetched,
                    cs.drum_retries,
                    cs.io_timeouts
                );
                println!(
                    "  degraded: {} segment(s), global={}",
                    e.degraded_segs().len(),
                    e.degraded_global()
                );
                match self.sys.check_invariants() {
                    Ok(()) => println!("  invariants OK"),
                    Err(msg) => println!("  INVARIANT VIOLATION: {msg}"),
                }
                self.current = Some(installed[0].pid);
            }
            ["stats"] => {
                // Every section prints under the same rule — whenever
                // it has recorded anything — regardless of which mode
                // (run / storm / chaos) populated it.
                let s = self.sys.stats();
                let m = self.sys.machine.stats();
                println!(
                    "  machine: {} instrs, {} cycles, {} traps ({} down-calls, {} up-returns in hardware)",
                    m.instructions,
                    self.sys.machine.cycles(),
                    m.traps,
                    m.calls_downward,
                    m.returns_upward
                );
                println!(
                    "  supervisor: {} hcs calls, {} ring-1 calls, {} seg faults, {} page faults, {} schedules, {} acl denials",
                    s.gate_calls_hcs, s.gate_calls_ring1, s.segment_faults, s.page_faults, s.schedules, s.acl_denials
                );
                let snap = self.sys.metrics_snapshot();
                let crossings: Vec<String> = snap
                    .crossings
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(k, v)| format!("{v} {k}"))
                    .collect();
                println!(
                    "  crossings: {} ({} ring changes)",
                    if crossings.is_empty() {
                        "none recorded".to_string()
                    } else {
                        crossings.join(", ")
                    },
                    snap.ring_changes
                );
                let sc = self.sys.state.borrow().sched.stats;
                if sc.context_switches > 0
                    || sc.page_faults_minor > 0
                    || sc.page_faults_major > 0
                    || sc.idle_cycles > 0
                {
                    println!(
                        "  scheduler: {} context switches ({} preemptions), {} minor + {} major \
                         page faults, {} evictions, {} io blocks, {} idle cycles",
                        sc.context_switches,
                        sc.preemptions,
                        sc.page_faults_minor,
                        sc.page_faults_major,
                        sc.evictions,
                        sc.io_blocks,
                        sc.idle_cycles
                    );
                }
                let cs = self.sys.machine.sdw_cache_stats();
                if cs.hits + cs.misses > 0 {
                    println!(
                        "  sdw cache: {} hits, {} misses ({:.1}% hit), {} flushes, {} invalidations",
                        cs.hits,
                        cs.misses,
                        100.0 * cs.hit_ratio(),
                        cs.flushes,
                        cs.invalidations
                    );
                }
                if snap.call_cycles.count > 0 {
                    println!(
                        "  call path: {} calls, {:.1} cycles mean (min {}, max {}); return path: {} returns, {:.1} mean",
                        snap.call_cycles.count,
                        snap.call_cycles.mean,
                        snap.call_cycles.min,
                        snap.call_cycles.max,
                        snap.return_cycles.count,
                        snap.return_cycles.mean
                    );
                }
                let ce = self.sys.machine.chaos();
                if ce.injected_total() > 0 {
                    let cr = self.sys.chaos_stats();
                    println!(
                        "  chaos: {} injected, {} detected, {} recovered, {} killed, \
                         {} salvaged, degraded segs={} global={}",
                        ce.injected_total(),
                        ce.detected_total(),
                        cr.recovered,
                        cr.killed,
                        cr.salvaged,
                        ce.degraded_segs().len(),
                        ce.degraded_global()
                    );
                }
                let prof = self.sys.profiler();
                if prof.samples() > 0 {
                    println!(
                        "  profiler: {} samples every {} cycles across {} stacks \
                         ({} time-series points; see `top`)",
                        prof.samples(),
                        prof.sample_every(),
                        prof.folded_entries().count(),
                        self.sys.timeseries().len()
                    );
                }
            }
            ["top", rest @ ..] => {
                // A `top`-style view of the sampling profiler: where
                // have the simulated cycles gone, by ring and by stack.
                let prof = self.sys.profiler();
                if prof.samples() == 0 {
                    println!("  (no samples yet — run something first)");
                    return true;
                }
                let limit: usize = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10);
                let total = prof.samples();
                println!(
                    "  {total} samples, one per {} simulated cycles",
                    prof.sample_every()
                );
                let rings: Vec<String> = prof
                    .samples_by_ring()
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(r, &n)| format!("r{r} {:.1}%", 100.0 * n as f64 / total as f64))
                    .collect();
                println!("  rings: {}", rings.join(", "));
                let mut entries: Vec<(&str, u64)> = prof.folded_entries().collect();
                entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                println!("  {:>7}      %  stack", "samples");
                for (stack, n) in entries.into_iter().take(limit) {
                    println!(
                        "  {n:>7} {:>5.1}%  {stack}",
                        100.0 * n as f64 / total as f64
                    );
                }
            }
            ["heatmap"] => {
                let snap = self.sys.metrics_snapshot();
                if snap.heatmap.is_empty() {
                    println!("  (no references recorded — run something first)");
                } else {
                    println!("  segno      reads     writes   executes violations");
                    for (segno, h) in &snap.heatmap {
                        println!(
                            "  {segno:<6} {:>9} {:>10} {:>10} {:>10}",
                            h.reads, h.writes, h.executes, h.violations
                        );
                    }
                }
            }
            ["metrics", rest @ ..] => {
                let json = self.sys.metrics_json();
                match rest.first() {
                    Some(path) => match std::fs::write(path, &json) {
                        Ok(()) => println!("  wrote {} bytes to {path}", json.len()),
                        Err(e) => println!("  cannot write {path}: {e}"),
                    },
                    None => print!("{json}"),
                }
            }
            ["tty"] => {
                println!("  typewriter: {:?}", self.sys.tty_printed());
            }
            ["audit"] => {
                let st = self.sys.state.borrow();
                for rec in &st.audit_log {
                    println!(
                        "  {} (ring {}): {}",
                        rec.user, rec.caller_ring, rec.operation
                    );
                }
                if st.audit_log.is_empty() {
                    println!("  (empty)");
                }
            }
            other => println!("  unknown command {other:?} (try help)"),
        }
        true
    }
}

fn main() -> ExitCode {
    let fastpath = !std::env::args().skip(1).any(|a| a == "--no-fastpath");
    println!("multiring shell — `help` for commands");
    let mut sys = System::boot_with(multiring::os::boot::SystemConfig {
        fastpath,
        ..multiring::os::boot::SystemConfig::default()
    });
    // The shell is an observability surface; always record metrics and
    // sample the profiler (cycle-driven, so it never perturbs a run).
    sys.enable_metrics();
    sys.enable_profiler(500, 5_000);
    let mut shell = Shell { sys, current: None };
    let stdin = std::io::stdin();
    loop {
        print!("ring> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if !shell.cmd(&parts) {
            break;
        }
    }
    ExitCode::SUCCESS
}
