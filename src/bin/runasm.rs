//! `runasm` — assemble and run a program on the ring-protection
//! simulator.
//!
//! ```text
//! runasm <file.rasm> [--ring N] [--budget N] [--trace] [--disasm]
//!                    [--no-fastpath] [--metrics-out <file.json|file.csv>]
//!                    [--trace-out <file.json>] [--record <file>]
//!                    [--replay <file>] [--checkpoint-every N]
//!                    [--profile-out <file.folded|file.json>]
//!                    [--timeseries-out <file.json>]
//!                    [--sample-every N] [--timeseries-every N]
//!                    [--procs N] [--quantum N] [--frames N]
//!                    [--pages N] [--rounds N]
//!                    [--chaos-seed N] [--chaos-rate N] [--chaos-plan <file>]
//! ```
//!
//! The program is loaded into segment 10 of a bare world (standard
//! per-ring stacks at segments 48–55, a data segment at 11, a trap
//! segment that halts on any fault) and executed in the chosen ring
//! (default 4). Exit with `drl 0o777`. `--disasm` prints the assembled
//! image instead of running. `--metrics-out` enables the metrics
//! recorder and writes the full observability snapshot — ring-crossing
//! counters, fault accounting, cycle histograms, the per-segment
//! heatmap and SDW-cache statistics — to the named file (CSV when the
//! name ends in `.csv`, JSON otherwise; see `docs/OBSERVABILITY.md`).
//!
//! Flight-recorder options (see the "Spans and replay" section of
//! `docs/OBSERVABILITY.md`):
//!
//! * `--trace-out <file.json>` — record ring-crossing spans and export
//!   them as a Chrome trace-event / Perfetto JSON document (one track
//!   per ring, instant events for faults), loadable in
//!   `ui.perfetto.dev`.
//! * `--record <file>` — record the run deterministically (initial
//!   machine image, periodic checkpoints, every I/O completion) into a
//!   recording file.
//! * `--replay <file>` — re-run a recording in a world rebuilt from the
//!   same program and verify it bit-for-bit (final registers, memory,
//!   cycles, I/O timeline). Exits nonzero on divergence.
//!
//! Profiler options (see the "Profiling and time series" section of
//! `docs/OBSERVABILITY.md`):
//!
//! * `--profile-out <file>` — attach the deterministic cycle-driven
//!   sampling profiler and write the profile: folded stacks
//!   (`flamegraph.pl` input) by default, Perfetto counter tracks when
//!   the name ends in `.json`. `--sample-every N` sets the sampling
//!   period in simulated cycles (default 1000).
//! * `--timeseries-out <file.json>` — record an interval time series
//!   of the full metrics snapshot and write the
//!   `ring-prof/timeseries/v1` delta stream (ipc, fault-rate,
//!   paging-rate curves). `--timeseries-every N` sets the interval in
//!   simulated cycles (default 5000).
//!
//! Both are driven by simulated cycles, never wall-clock, so they
//! compose with `--record`/`--replay`: replaying a recording
//! reproduces the profile and the time series bit-for-bit.
//!
//! Multiprogramming options (see `docs/KERNEL.md`):
//!
//! * `--procs N` — boot the full kernel instead of the bare world and
//!   run `N` processes, each in its own DBR-switched address space,
//!   under the preemptive round-robin scheduler. Each process gets a
//!   private paged data segment (segment 64, `--pages` pages) and runs
//!   a copy of `<file.rasm>` — or, when no file is given, the built-in
//!   page-storm sweep (`--rounds` rounds over every page). Exits
//!   nonzero unless every process runs to a clean `drl 0o777` exit.
//! * `--quantum N` — timer quantum in cycles (default 400).
//! * `--frames N` — physical-frame budget for demand paging; faults
//!   beyond the budget evict by CLOCK to a simulated drum (default 16;
//!   0 means unlimited, no paging pressure).
//! * `--pages N`, `--rounds N` — page-storm shape (defaults 5 and 30).
//!
//! `--record`/`--replay`, `--metrics-out` and `--trace-out` compose
//! with `--procs`: recordings replay bit-identically including every
//! timer-interrupt delivery point, the metrics snapshot gains the
//! `scheduler` section, and the Perfetto export gains one track per
//! process.
//!
//! Chaos options (require `--procs`; see `docs/RELIABILITY.md`):
//!
//! * `--chaos-seed N` — arm a seeded fault-injection campaign: parity
//!   errors, descriptor/page-table/TLB corruption, drum errors, lost
//!   I/O completions and spurious timer runouts, drawn from a
//!   deterministic PRNG stream. Identical seeds produce bit-identical
//!   runs (and recordings).
//! * `--chaos-rate N` — mean cycles between injections (default 5000).
//! * `--chaos-plan <file>` — explicit schedule instead of a campaign:
//!   one `CYCLE KIND` pair per line (kinds: `mem_parity`,
//!   `sdw_corrupt`, `ptw_corrupt`, `drum_read_error`,
//!   `drum_write_error`, `lost_io_completion`, `tlb_corrupt`,
//!   `spurious_timer`).
//!
//! Under chaos a process abort is confinement, not failure: the run
//! succeeds as long as the machine survives, every process ends
//! (cleanly or killed), and the post-run protection-invariant check
//! passes.

use std::process::ExitCode;

use multiring::core::access::Fault;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;
use multiring::cpu::Recorder;
use multiring::trace::Recording;

struct Options {
    file: String,
    ring: u8,
    budget: Option<u64>,
    trace: bool,
    disasm: bool,
    fastpath: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    record: Option<String>,
    replay: Option<String>,
    checkpoint_every: u64,
    profile_out: Option<String>,
    timeseries_out: Option<String>,
    sample_every: u64,
    timeseries_every: u64,
    procs: usize,
    quantum: u64,
    frames: u32,
    pages: u32,
    rounds: u32,
    chaos_seed: Option<u64>,
    chaos_rate: u64,
    chaos_plan: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        ring: 4,
        budget: None,
        trace: false,
        disasm: false,
        fastpath: true,
        metrics_out: None,
        trace_out: None,
        record: None,
        replay: None,
        checkpoint_every: multiring::cpu::DEFAULT_CHECKPOINT_EVERY,
        profile_out: None,
        timeseries_out: None,
        sample_every: 1_000,
        timeseries_every: 5_000,
        procs: 0,
        quantum: 400,
        frames: 16,
        pages: 5,
        rounds: 30,
        chaos_seed: None,
        chaos_rate: 5_000,
        chaos_plan: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ring" => {
                opts.ring = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r < 8)
                    .ok_or("--ring takes a number 0..=7")?;
            }
            "--budget" => {
                opts.budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--budget takes an instruction count")?,
                );
            }
            "--trace" => opts.trace = true,
            "--disasm" => opts.disasm = true,
            "--no-fastpath" => opts.fastpath = false,
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().ok_or("--metrics-out takes a file name")?);
            }
            "--trace-out" => {
                opts.trace_out = Some(args.next().ok_or("--trace-out takes a file name")?);
            }
            "--record" => {
                opts.record = Some(args.next().ok_or("--record takes a file name")?);
            }
            "--replay" => {
                opts.replay = Some(args.next().ok_or("--replay takes a file name")?);
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--checkpoint-every takes a cycle count")?;
            }
            "--profile-out" => {
                opts.profile_out = Some(args.next().ok_or("--profile-out takes a file name")?);
            }
            "--timeseries-out" => {
                opts.timeseries_out =
                    Some(args.next().ok_or("--timeseries-out takes a file name")?);
            }
            "--sample-every" => {
                opts.sample_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--sample-every takes a cycle count >= 1")?;
            }
            "--timeseries-every" => {
                opts.timeseries_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--timeseries-every takes a cycle count >= 1")?;
            }
            "--procs" => {
                opts.procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--procs takes a process count >= 1")?;
            }
            "--quantum" => {
                opts.quantum = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--quantum takes a cycle count >= 1")?;
            }
            "--frames" => {
                opts.frames = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--frames takes a frame count (0 = unlimited)")?;
            }
            "--pages" => {
                opts.pages = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--pages takes a page count >= 1")?;
            }
            "--rounds" => {
                opts.rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--rounds takes a round count >= 1")?;
            }
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--chaos-seed takes a seed number")?,
                );
            }
            "--chaos-rate" => {
                opts.chaos_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--chaos-rate takes a mean cycle interval >= 1")?;
            }
            "--chaos-plan" => {
                opts.chaos_plan = Some(args.next().ok_or("--chaos-plan takes a file name")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: runasm <file.rasm> [--ring N] [--budget N] [--trace] [--disasm] \
                     [--no-fastpath] [--metrics-out <file>] [--trace-out <file.json>] \
                     [--record <file>] [--replay <file>] [--checkpoint-every N] \
                     [--profile-out <file>] [--timeseries-out <file.json>] \
                     [--sample-every N] [--timeseries-every N] \
                     [--procs N [--quantum N] [--frames N] [--pages N] [--rounds N] \
                     [--chaos-seed N] [--chaos-rate N] [--chaos-plan <file>]]"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') && opts.file.is_empty() => opts.file = f.to_string(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.file.is_empty() && opts.procs == 0 {
        return Err("no input file (try --help)".to_string());
    }
    if opts.record.is_some() && opts.replay.is_some() {
        return Err("--record and --replay are mutually exclusive".to_string());
    }
    if opts.chaos_seed.is_some() && opts.chaos_plan.is_some() {
        return Err("--chaos-seed and --chaos-plan are mutually exclusive".to_string());
    }
    if (opts.chaos_seed.is_some() || opts.chaos_plan.is_some()) && opts.procs == 0 {
        return Err("chaos injection requires --procs (recovery lives in the kernel)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.procs > 0 {
        return run_multiproc(&opts);
    }
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let image = match multiring::asm::assemble(&source) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };

    if opts.disasm {
        print!("{}", image.dump());
        return ExitCode::SUCCESS;
    }

    let ring = Ring::new(opts.ring).expect("checked");
    let mut world = World::with_config(multiring::cpu::machine::MachineConfig {
        fastpath: opts.fastpath,
        ..multiring::cpu::machine::MachineConfig::default()
    });
    let code = world.add_segment(
        10,
        SdwBuilder::procedure(ring, ring, Ring::R7)
            .gates(4)
            .bound_words(image.len().max(16)),
    );
    world.add_segment(11, SdwBuilder::data(ring, ring).bound_words(1024));
    world.add_standard_stacks(16);
    let trap = world.add_trap_segment();
    world.machine.register_native(trap, |m, vector| {
        if let Some(f) = m.last_fault() {
            if !matches!(f, Fault::Derail { code: 0o777 }) {
                eprintln!("trap (vector {}): {f}", vector.value());
            }
        }
        Ok(NativeAction::Halt)
    });
    for (i, w) in image.words.iter().enumerate() {
        world.poke(code, i as u32, *w);
    }
    if opts.trace {
        world.machine.enable_trace(4096);
    }
    if opts.metrics_out.is_some() {
        world.machine.enable_metrics();
    }
    if opts.trace_out.is_some() {
        world.machine.enable_spans();
    }
    if let Some((sample, ts)) = profiler_config(&opts) {
        world.machine.enable_profiler(sample, ts);
    }
    world.start(ring, code, 0);

    // Replay mode: ignore the freshly initialised machine state and
    // re-run the recording in this identically built world.
    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let recording = match Recording::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match multiring::cpu::replay(&mut world.machine, &recording) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        finish(&world, &opts);
        return if report.ok {
            println!(
                "replay OK: {} instructions, {} cycles, bit-identical final image",
                report.instructions, report.cycles
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "replay DIVERGED: {}",
                report.mismatch.as_deref().unwrap_or("unknown")
            );
            ExitCode::FAILURE
        };
    }

    let budget = opts.budget.unwrap_or(100_000);
    let exit = if opts.record.is_some() {
        let mut rec = Recorder::start(&world.machine, &opts.file, opts.checkpoint_every);
        let exit = multiring::cpu::run_recorded(&mut world.machine, budget, &mut rec);
        let recording = rec.finish(&world.machine);
        let path = opts.record.as_deref().expect("checked");
        if let Err(e) = std::fs::write(path, recording.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "recorded: {} checkpoints, {} I/O completions -> {path}",
            recording.checkpoints.len(),
            recording.io_events.len()
        );
        exit
    } else {
        world.machine.run(budget)
    };

    if opts.trace {
        for ev in world.machine.take_trace() {
            println!("{ev}");
        }
    }
    let m = &world.machine;
    println!(
        "exit: {exit:?}  ring {}  A={:o} Q={:o}  cycles={}  instructions={}",
        m.ring(),
        m.a().raw(),
        m.q().raw(),
        m.cycles(),
        m.stats().instructions
    );
    finish(&world, &opts);
    ExitCode::SUCCESS
}

/// The `--procs` branch: boot the full kernel and multiplex N
/// DBR-switched processes over the one simulated processor, with
/// demand paging under the `--frames` budget.
fn run_multiproc(opts: &Options) -> ExitCode {
    use multiring::cpu::machine::RunExit;
    use multiring::os::workload::{install_page_storm, install_storm_program, StormSpec};
    use multiring::os::{System, SystemConfig};

    let spec = StormSpec {
        procs: opts.procs,
        pages: opts.pages,
        rounds: opts.rounds,
    };
    let source = if opts.file.is_empty() {
        None
    } else {
        let text = match std::fs::read_to_string(&opts.file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        // Assemble once up front for a readable diagnostic; the
        // installer assembles again per process.
        if let Err(e) = multiring::asm::assemble(&text) {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
        Some(text)
    };
    let chaos_plan = match chaos_plan_from(opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let chaos = chaos_plan.is_some();
    // Building the world is deterministic — the chaos engine included,
    // since it is armed here, before execution — so a recording made
    // in one build replays bit-for-bit in another.
    let build = || {
        let cfg = SystemConfig {
            quantum: opts.quantum,
            frame_budget: (opts.frames > 0).then_some(opts.frames),
            fastpath: opts.fastpath,
            ..SystemConfig::default()
        };
        let mut sys = System::boot_with(cfg);
        let procs = match &source {
            Some(text) => install_storm_program(&mut sys, &spec, text),
            None => install_page_storm(&mut sys, &spec),
        };
        if opts.metrics_out.is_some() {
            sys.enable_metrics();
        }
        if opts.trace_out.is_some() {
            sys.enable_spans();
        }
        if let Some(plan) = &chaos_plan {
            sys.enable_chaos(plan.clone());
        }
        if let Some((sample, ts)) = profiler_config(opts) {
            sys.enable_profiler(sample, ts);
        }
        sys.machine.set_timer(Some(opts.quantum));
        (sys, procs)
    };
    let (mut sys, procs) = build();
    let budget = opts.budget.unwrap_or(5_000_000);

    let exit = if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let recording = match Recording::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match multiring::cpu::replay(&mut sys.machine, &recording) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if report.ok {
            println!(
                "replay OK: {} instructions, {} cycles, bit-identical final image",
                report.instructions, report.cycles
            );
        } else {
            eprintln!(
                "replay DIVERGED: {}",
                report.mismatch.as_deref().unwrap_or("unknown")
            );
            return ExitCode::FAILURE;
        }
        RunExit::Halted
    } else if opts.record.is_some() {
        let name = if opts.file.is_empty() {
            "page-storm"
        } else {
            opts.file.as_str()
        };
        let mut rec = Recorder::start(&sys.machine, name, opts.checkpoint_every);
        let exit = multiring::cpu::run_recorded(&mut sys.machine, budget, &mut rec);
        let recording = rec.finish(&sys.machine);
        let path = opts.record.as_deref().expect("checked");
        if let Err(e) = std::fs::write(path, recording.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "recorded: {} checkpoints, {} I/O completions -> {path}",
            recording.checkpoints.len(),
            recording.io_events.len()
        );
        exit
    } else {
        sys.machine.run(budget)
    };

    let mut all_ok = exit == RunExit::Halted;
    {
        let st = sys.state.borrow();
        for p in &procs {
            let ps = &st.processes[p.pid];
            let status = match ps.aborted.as_deref() {
                Some("exit") => "exited".to_string(),
                Some(r) => {
                    // Under chaos a kill is successful confinement,
                    // not a run failure.
                    if !chaos {
                        all_ok = false;
                    }
                    format!("ABORTED ({r})")
                }
                None => {
                    all_ok = false;
                    "UNFINISHED (out of budget)".to_string()
                }
            };
            println!(
                "proc {}: {status}  page-faults={}  preemptions={}",
                p.pid, ps.page_faults, ps.preemptions
            );
        }
        let sc = st.sched.stats;
        println!(
            "sched: {} context switches ({} preemptions), {} minor + {} major page \
             faults, {} evictions, {} idle cycles",
            sc.context_switches,
            sc.preemptions,
            sc.page_faults_minor,
            sc.page_faults_major,
            sc.evictions,
            sc.idle_cycles
        );
    }
    println!(
        "exit: {exit:?}  cycles={}  instructions={}",
        sys.machine.cycles(),
        sys.machine.stats().instructions
    );
    if chaos {
        let cs = sys.chaos_stats();
        let e = sys.machine.chaos();
        println!(
            "chaos: {} injected, {} detected, {} recovered, {} killed, {} salvaged, \
             {} refetched, {} drum retries, {} io timeouts, degraded segs={} global={}",
            e.injected_total(),
            e.detected_total(),
            cs.recovered,
            cs.killed,
            cs.salvaged,
            cs.refetched,
            cs.drum_retries,
            cs.io_timeouts,
            e.degraded_segs().len(),
            e.degraded_global()
        );
        match sys.check_invariants() {
            Ok(()) => println!("chaos: post-run invariant check OK"),
            Err(msg) => {
                eprintln!("chaos: INVARIANT VIOLATION: {msg}");
                all_ok = false;
            }
        }
        if cs.invariant_failures > 0 {
            eprintln!(
                "chaos: {} recovery-time invariant failures",
                cs.invariant_failures
            );
            all_ok = false;
        }
    }
    if let Some(path) = &opts.metrics_out {
        let snap = sys.metrics_snapshot();
        let body = if path.ends_with(".csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics -> {path}");
    }
    if let Some(path) = &opts.trace_out {
        let m = &sys.machine;
        let doc = multiring::trace::perfetto::chrome_trace_json(m.spans().events(), m.cycles());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace -> {path} (load in ui.perfetto.dev)");
    }
    if let Err(e) = write_prof_artifacts(&sys.machine, opts) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds the fault plan the chaos flags ask for, if any.
fn chaos_plan_from(opts: &Options) -> Result<Option<multiring::cpu::FaultPlan>, String> {
    if let Some(path) = &opts.chaos_plan {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let plan = multiring::cpu::FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(Some(plan));
    }
    Ok(opts
        .chaos_seed
        .map(|seed| multiring::cpu::FaultPlan::Campaign {
            seed,
            mean_interval: opts.chaos_rate,
        }))
}

/// Writes the post-run artifacts (metrics snapshot, Perfetto trace).
fn finish(world: &World, opts: &Options) {
    let m = &world.machine;
    if let Some(path) = &opts.metrics_out {
        let snap = m.metrics_snapshot();
        let body = if path.ends_with(".csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "metrics: {} crossings ({} ring changes), {} faults, sdw cache {:.0}% hit -> {path}",
            snap.crossings.iter().map(|(_, v)| v).sum::<u64>(),
            snap.ring_changes,
            snap.faults_total,
            100.0 * snap.sdw_cache.hit_ratio()
        );
    }
    if let Some(path) = &opts.trace_out {
        let doc = multiring::trace::perfetto::chrome_trace_json(m.spans().events(), m.cycles());
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        let tree = multiring::trace::build_tree(m.spans().events(), m.cycles());
        println!(
            "trace: {} spans across {} gates -> {path} (load in ui.perfetto.dev)",
            tree.spans.len(),
            multiring::trace::gate_table(&tree).len()
        );
    }
    if let Err(e) = write_prof_artifacts(m, opts) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

/// The profiler configuration the flags ask for: `(sample_every,
/// timeseries_every)` with 0 disabling that half, or `None` when no
/// profiler output was requested at all.
fn profiler_config(opts: &Options) -> Option<(u64, u64)> {
    if opts.profile_out.is_none() && opts.timeseries_out.is_none() {
        return None;
    }
    let sample = if opts.profile_out.is_some() {
        opts.sample_every
    } else {
        0
    };
    let ts = if opts.timeseries_out.is_some() {
        opts.timeseries_every
    } else {
        0
    };
    Some((sample, ts))
}

/// Writes the profiler artifacts (folded stacks or Perfetto counters,
/// and the time-series JSON), if requested.
fn write_prof_artifacts(
    m: &multiring::cpu::machine::Machine,
    opts: &Options,
) -> Result<(), String> {
    if let Some(path) = &opts.profile_out {
        let prof = m.profiler();
        let body = if path.ends_with(".json") {
            multiring::prof::perfetto_counters(prof, m.timeseries())
        } else {
            prof.folded()
        };
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "profile: {} samples every {} cycles, {} stacks -> {path}",
            prof.samples(),
            prof.sample_every(),
            prof.folded_entries().count()
        );
    }
    if let Some(path) = &opts.timeseries_out {
        let ts = m.timeseries();
        std::fs::write(path, ts.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "timeseries: {} points every {} cycles -> {path}",
            ts.len(),
            ts.every()
        );
    }
    Ok(())
}
