//! `runasm` — assemble and run a program on the ring-protection
//! simulator.
//!
//! ```text
//! runasm <file.rasm> [--ring N] [--budget N] [--trace] [--disasm]
//!                    [--no-fastpath] [--metrics-out <file.json|file.csv>]
//! ```
//!
//! The program is loaded into segment 10 of a bare world (standard
//! per-ring stacks at segments 48–55, a data segment at 11, a trap
//! segment that halts on any fault) and executed in the chosen ring
//! (default 4). Exit with `drl 0o777`. `--disasm` prints the assembled
//! image instead of running. `--metrics-out` enables the metrics
//! recorder and writes the full observability snapshot — ring-crossing
//! counters, fault accounting, cycle histograms, the per-segment
//! heatmap and SDW-cache statistics — to the named file (CSV when the
//! name ends in `.csv`, JSON otherwise; see `docs/OBSERVABILITY.md`).

use std::process::ExitCode;

use multiring::core::access::Fault;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;

struct Options {
    file: String,
    ring: u8,
    budget: u64,
    trace: bool,
    disasm: bool,
    fastpath: bool,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        ring: 4,
        budget: 100_000,
        trace: false,
        disasm: false,
        fastpath: true,
        metrics_out: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ring" => {
                opts.ring = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r < 8)
                    .ok_or("--ring takes a number 0..=7")?;
            }
            "--budget" => {
                opts.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--budget takes an instruction count")?;
            }
            "--trace" => opts.trace = true,
            "--disasm" => opts.disasm = true,
            "--no-fastpath" => opts.fastpath = false,
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().ok_or("--metrics-out takes a file name")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: runasm <file.rasm> [--ring N] [--budget N] [--trace] [--disasm] \
                     [--no-fastpath] [--metrics-out <file>]"
                        .to_string(),
                )
            }
            f if !f.starts_with('-') && opts.file.is_empty() => opts.file = f.to_string(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.file.is_empty() {
        return Err("no input file (try --help)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let image = match multiring::asm::assemble(&source) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };

    if opts.disasm {
        print!("{}", image.dump());
        return ExitCode::SUCCESS;
    }

    let ring = Ring::new(opts.ring).expect("checked");
    let mut world = World::with_config(multiring::cpu::machine::MachineConfig {
        fastpath: opts.fastpath,
        ..multiring::cpu::machine::MachineConfig::default()
    });
    let code = world.add_segment(
        10,
        SdwBuilder::procedure(ring, ring, Ring::R7)
            .gates(4)
            .bound_words(image.len().max(16)),
    );
    world.add_segment(11, SdwBuilder::data(ring, ring).bound_words(1024));
    world.add_standard_stacks(16);
    let trap = world.add_trap_segment();
    world.machine.register_native(trap, |m, vector| {
        if let Some(f) = m.last_fault() {
            if !matches!(f, Fault::Derail { code: 0o777 }) {
                eprintln!("trap (vector {}): {f}", vector.value());
            }
        }
        Ok(NativeAction::Halt)
    });
    for (i, w) in image.words.iter().enumerate() {
        world.poke(code, i as u32, *w);
    }
    if opts.trace {
        world.machine.enable_trace(4096);
    }
    if opts.metrics_out.is_some() {
        world.machine.enable_metrics();
    }
    world.start(ring, code, 0);
    let exit = world.machine.run(opts.budget);

    if opts.trace {
        for ev in world.machine.take_trace() {
            println!("{ev}");
        }
    }
    let m = &world.machine;
    println!(
        "exit: {exit:?}  ring {}  A={:o} Q={:o}  cycles={}  instructions={}",
        m.ring(),
        m.a().raw(),
        m.q().raw(),
        m.cycles(),
        m.stats().instructions
    );
    if let Some(path) = &opts.metrics_out {
        let snap = m.metrics_snapshot();
        let body = if path.ends_with(".csv") {
            snap.to_csv()
        } else {
            snap.to_json()
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "metrics: {} crossings ({} ring changes), {} faults, sdw cache {:.0}% hit -> {path}",
            snap.crossings.iter().map(|(_, v)| v).sum::<u64>(),
            snap.ring_changes,
            snap.faults_total,
            100.0 * snap.sdw_cache.hit_ratio()
        );
    }
    ExitCode::SUCCESS
}
