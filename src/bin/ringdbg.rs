//! `ringdbg` — an interactive monitor for the ring-protection
//! simulator (a front panel with a disassembler and a flight
//! recorder).
//!
//! ```text
//! ringdbg <file.rasm> [--ring N] [--no-fastpath]
//! ringdbg [file.rasm] --procs N [--frames N] [--quantum N]
//!                     [--pages N] [--rounds N]
//! ```
//!
//! With `--procs` the debugger boots the full multiprogramming kernel
//! (see `docs/KERNEL.md`) instead of the bare world: `N` DBR-switched
//! processes run the given program — or the built-in page-storm sweep
//! when no file is named — under the preemptive scheduler and the
//! `--frames` budget, and the prompt switches to the process-aware
//! command set:
//!
//! ```text
//! s [n]            step n instructions through the whole system
//! g [n]            run until a breakpoint, halt, or n instructions
//! r                print registers (and the owning process)
//! b <pid|*> <seg> <w>   toggle a process-qualified breakpoint: hits
//!                  only when the named process is the one running
//!                  (`*` hits in any process)
//! ps               process states (running/ready/blocked/exited)
//! stats            scheduler counters
//! q                quit
//! ```
//!
//! Commands in single-process mode (also `help` at the prompt):
//!
//! ```text
//! s [n]          step n instructions (default 1), printing each
//! r              print registers
//! g [n]          run up to n instructions (default 100000)
//! rs [n]         reverse-step n instructions (default 1)
//! d <w> [n]      disassemble n words of the code segment at word w
//! m <s> <w> [n]  dump n words of segment s at word w
//! b [<seg>] <w>  toggle a breakpoint (code segment when seg omitted)
//! w <seg> <w>    toggle a data watchpoint (break when the word changes)
//! seg <s>        print segment s's descriptor
//! stats          metrics snapshot: crossings, faults, SDW cache
//! spans          per-gate cycle attribution from the span recorder
//! prof [n]       sampling profiler: the n hottest stacks (default 10)
//! trace [--json] drain the execution trace (JSON lines with --json)
//! record <file>  write the flight recording to <file> on stop/quit
//! record stop    write the flight recording now
//! replay <file>  re-run a recording and verify it bit-for-bit
//! q              quit
//! ```
//!
//! Execution tracing, the metrics recorder, the span recorder, the
//! sampling profiler (one sample per 500 simulated cycles), and the
//! deterministic flight recorder are always on in the debugger. `trace`
//! drains the drop-oldest ring buffer (sequence numbers show how many
//! earlier events were discarded; with `--json` a `{"dropped": n}`
//! header record is emitted first whenever events were lost). `rs`
//! works by restoring the nearest flight-recorder checkpoint at or
//! before the target instruction and re-executing forward — the
//! simulator is deterministic, so the machine lands exactly where it
//! was.

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use multiring::asm::disassemble_word;
use multiring::core::addr::SegNo;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::machine::StepOutcome;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;
use multiring::cpu::{seek, Recorder, TraceEvent, DEFAULT_CHECKPOINT_EVERY};
use multiring::metrics::json_escape;
use multiring::trace::Recording;

const CODE_SEG: u32 = 10;

/// One trace event as a JSON object (for `trace --json`).
fn trace_event_json(seq: u64, ev: &TraceEvent) -> String {
    let body = match ev {
        TraceEvent::Instr { at, instr } => format!(
            "\"kind\": \"instr\", \"ring\": {}, \"segno\": {}, \"wordno\": {}, \
             \"mnemonic\": \"{}\", \"offset\": {}",
            at.ring.number(),
            at.addr.segno.value(),
            at.addr.wordno.value(),
            instr.opcode.mnemonic(),
            instr.offset
        ),
        TraceEvent::Call { from, to, new_ring } => format!(
            "\"kind\": \"call\", \"from_ring\": {}, \"to_ring\": {}, \
             \"target_segno\": {}, \"target_wordno\": {}",
            from.ring.number(),
            new_ring.number(),
            to.segno.value(),
            to.wordno.value()
        ),
        TraceEvent::Return { from, to, new_ring } => format!(
            "\"kind\": \"return\", \"from_ring\": {}, \"to_ring\": {}, \
             \"target_segno\": {}, \"target_wordno\": {}",
            from.ring.number(),
            new_ring.number(),
            to.segno.value(),
            to.wordno.value()
        ),
        TraceEvent::Trap { fault } => format!(
            "\"kind\": \"trap\", \"vector\": {}, \"fault\": \"{}\"",
            fault.vector(),
            json_escape(&fault.to_string())
        ),
        TraceEvent::Native { segno, entry } => format!(
            "\"kind\": \"native\", \"segno\": {}, \"entry\": {}",
            segno.value(),
            entry.value()
        ),
    };
    format!("{{\"seq\": {seq}, {body}}}")
}

fn print_regs(w: &World) {
    let m = &w.machine;
    println!(
        "IPR ring {} at {}   A={:0>12o} Q={:0>12o}",
        m.ring(),
        m.ipr().addr,
        m.a().raw(),
        m.q().raw()
    );
    for n in 0..8 {
        let pr = m.pr(n);
        print!("PR{n}={}^{} ", pr.addr, pr.ring);
        if n == 3 {
            println!();
        }
    }
    println!();
    print!("X: ");
    for n in 0..8 {
        print!("{} ", m.xreg(n));
    }
    println!("  cycles={} instrs={}", m.cycles(), m.stats().instructions);
}

fn print_instr_at(w: &World) {
    let ipr = w.machine.ipr();
    if ipr.addr.segno.value() == CODE_SEG {
        let word = w.peek(ipr.addr.segno, ipr.addr.wordno.value());
        println!(
            "  next: {}|{}: {}",
            ipr.addr.segno,
            ipr.addr.wordno,
            disassemble_word(word)
        );
    }
}

/// The always-on flight recorder behind `record`/`replay`/`rs`.
struct Flight {
    rec: Recorder,
    /// Where `record stop`/quit writes the recording, once `record
    /// <file>` names a destination.
    path: Option<String>,
    /// Cycle high-water mark of recorded execution. Re-execution after
    /// a reverse-step walks through already-recorded territory; only
    /// steps beyond this mark feed the recorder, so checkpoints and
    /// I/O events are never duplicated.
    hw_cycles: u64,
}

impl Flight {
    fn start(world: &World) -> Flight {
        Flight {
            rec: Recorder::start(&world.machine, "ringdbg", DEFAULT_CHECKPOINT_EVERY),
            path: None,
            hw_cycles: world.machine.cycles(),
        }
    }

    fn note_step(&mut self, world: &World, outcome: &StepOutcome) {
        if world.machine.cycles() > self.hw_cycles {
            self.rec.after_step(&world.machine, outcome);
            self.hw_cycles = world.machine.cycles();
        }
    }

    fn write_if_named(&self, world: &World) {
        if let Some(path) = &self.path {
            let recording = self.rec.snapshot(&world.machine);
            match std::fs::write(path, recording.to_json()) {
                Ok(()) => println!(
                    "  wrote recording ({} checkpoints, {} I/O completions) to {path}",
                    recording.checkpoints.len(),
                    recording.io_events.len()
                ),
                Err(e) => println!("  cannot write {path}: {e}"),
            }
        }
    }
}

/// A data watchpoint: break when `segno|wordno` changes value.
struct Watchpoint {
    segno: u32,
    wordno: u32,
    last: u64,
}

/// Checks every watchpoint against current memory; reports and
/// rebaselines the first that changed.
fn watch_hit(world: &World, watchpoints: &mut [Watchpoint]) -> bool {
    for wp in watchpoints.iter_mut() {
        let seg = SegNo::new(wp.segno).expect("validated on creation");
        let now = world.peek(seg, wp.wordno).raw();
        if now != wp.last {
            println!(
                "  watchpoint {}|{}: {:o} -> {:o}",
                wp.segno, wp.wordno, wp.last, now
            );
            wp.last = now;
            return true;
        }
    }
    false
}

/// Re-reads every watchpoint's baseline (after a reverse-step or
/// replay repositions the machine).
fn rebaseline(world: &World, watchpoints: &mut [Watchpoint]) {
    for wp in watchpoints.iter_mut() {
        let seg = SegNo::new(wp.segno).expect("validated on creation");
        wp.last = world.peek(seg, wp.wordno).raw();
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut file = String::new();
    let mut ring = Ring::R4;
    let mut fastpath = true;
    let mut procs = 0usize;
    let mut frames = 16u32;
    let mut quantum = 400u64;
    let mut pages = 5u32;
    let mut rounds = 30u32;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ring" => {
                ring = match args
                    .next()
                    .and_then(|n| n.parse::<u8>().ok())
                    .and_then(Ring::new)
                {
                    Some(r) => r,
                    None => {
                        eprintln!("--ring takes 0..=7");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--no-fastpath" => fastpath = false,
            "--procs" => {
                procs = match args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => n,
                    None => {
                        eprintln!("--procs takes a process count >= 1");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--frames" => {
                frames = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--frames takes a frame count (0 = unlimited)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--quantum" => {
                quantum = match args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => n,
                    None => {
                        eprintln!("--quantum takes a cycle count >= 1");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--pages" => {
                pages = match args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => n,
                    None => {
                        eprintln!("--pages takes a page count >= 1");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--rounds" => {
                rounds = match args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => n,
                    None => {
                        eprintln!("--rounds takes a round count >= 1");
                        return ExitCode::FAILURE;
                    }
                };
            }
            f if !f.starts_with('-') && file.is_empty() => file = f.to_string(),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if procs > 0 {
        return debug_multiproc(&file, procs, frames, quantum, pages, rounds, fastpath);
    }
    if file.is_empty() {
        eprintln!(
            "usage: ringdbg <file.rasm> [--ring N] [--no-fastpath] | ringdbg [file.rasm] \
             --procs N [--frames N] [--quantum N] [--pages N] [--rounds N]"
        );
        return ExitCode::FAILURE;
    }
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = match multiring::asm::assemble(&source) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut world = World::with_config(multiring::cpu::machine::MachineConfig {
        fastpath,
        ..multiring::cpu::machine::MachineConfig::default()
    });
    let code = world.add_segment(
        CODE_SEG,
        SdwBuilder::procedure(ring, ring, Ring::R7)
            .gates(4)
            .bound_words(image.len().max(16)),
    );
    world.add_segment(11, SdwBuilder::data(ring, ring).bound_words(1024));
    world.add_standard_stacks(16);
    let trap = world.add_trap_segment();
    world.machine.register_native(trap, |m, vector| {
        if let Some(f) = m.last_fault() {
            println!("  ** trap (vector {}): {f}", vector.value());
        }
        Ok(NativeAction::Halt)
    });
    for (i, w) in image.words.iter().enumerate() {
        world.poke(code, i as u32, *w);
    }
    world.start(ring, code, 0);
    world.machine.enable_trace(4096);
    world.machine.enable_metrics();
    world.machine.enable_spans();
    world.machine.enable_profiler(500, 5_000);
    let mut flight = Flight::start(&world);
    println!(
        "loaded {} words into segment {CODE_SEG}; ring {ring}",
        image.len()
    );
    print_instr_at(&world);

    let mut breakpoints: Vec<(u32, u32)> = Vec::new();
    let mut watchpoints: Vec<Watchpoint> = Vec::new();
    let stdin = std::io::stdin();
    loop {
        print!("ringdbg> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["q"] | ["quit"] => break,
            ["help"] | ["h"] => {
                println!("s [n] step | r regs | g [n] run | rs [n] reverse-step");
                println!("d <w> [n] disasm | m <s> <w> [n] memory | seg <s> descriptor");
                println!("b [<seg>] <w> breakpoint | w <seg> <w> data watchpoint | q quit");
                println!("stats metrics snapshot | spans per-gate cycle attribution");
                println!("prof [n] sampling-profiler hot stacks (cycle-driven)");
                println!("trace [--json] drain execution trace");
                println!("record <file>|stop flight recording | replay <file> verify a recording");
            }
            ["r"] => print_regs(&world),
            ["s", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    let outcome = world.machine.step();
                    flight.note_step(&world, &outcome);
                    match outcome {
                        StepOutcome::Ran => {}
                        StepOutcome::Trapped(f) => println!("  trapped: {f}"),
                        StepOutcome::Halted => {
                            println!("  halted");
                            break;
                        }
                    }
                    print_instr_at(&world);
                    if watch_hit(&world, &mut watchpoints) {
                        break;
                    }
                }
            }
            ["g", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(100_000);
                let mut ran = 0;
                for _ in 0..n {
                    let at = world.machine.ipr().addr;
                    if breakpoints.contains(&(at.segno.value(), at.wordno.value())) {
                        println!("  breakpoint at {at}");
                        break;
                    }
                    let outcome = world.machine.step();
                    flight.note_step(&world, &outcome);
                    match outcome {
                        StepOutcome::Ran | StepOutcome::Trapped(_) => ran += 1,
                        StepOutcome::Halted => {
                            println!("  halted after {ran} instructions");
                            break;
                        }
                    }
                    if watch_hit(&world, &mut watchpoints) {
                        break;
                    }
                }
                print_instr_at(&world);
            }
            ["rs", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(1);
                let cur = world.machine.stats().instructions;
                if cur == 0 {
                    println!("  already at the beginning");
                    continue;
                }
                let target = cur.saturating_sub(n);
                match seek(&mut world.machine, flight.rec.recording(), target) {
                    Ok(()) => {
                        rebaseline(&world, &mut watchpoints);
                        println!(
                            "  reverse-stepped to instruction {} (cycles={})",
                            world.machine.stats().instructions,
                            world.machine.cycles()
                        );
                        print_instr_at(&world);
                    }
                    Err(e) => println!("  reverse-step failed: {e}"),
                }
            }
            ["d", at, rest @ ..] => {
                let at: u32 = at.parse().unwrap_or(0);
                let n: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(8);
                for i in at..(at + n).min(image.len().max(at + n)) {
                    let w = world.peek(code, i);
                    println!("{i:6}  {:0>12o}  {}", w.raw(), disassemble_word(w));
                }
            }
            ["m", s, at, rest @ ..] => {
                let (Ok(s), Ok(at)) = (s.parse::<u32>(), at.parse::<u32>()) else {
                    println!("  m <segno> <wordno> [n]");
                    continue;
                };
                let n: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(8);
                match SegNo::new(s) {
                    Some(seg) => {
                        for i in at..at + n {
                            let w = world.peek(seg, i);
                            println!("{s}|{i:<6}  {:0>12o}", w.raw());
                        }
                    }
                    None => println!("  bad segment number"),
                }
            }
            ["seg", n] => match n.parse::<u32>() {
                Ok(n) if n < 64 => {
                    let sdw = world.read_sdw(n);
                    println!("  segment {n}: {sdw}");
                }
                _ => println!("  seg <segno 0..63>"),
            },
            ["stats"] => {
                let snap = world.machine.metrics_snapshot();
                println!(
                    "  {} instructions, {} cycles",
                    snap.instructions, snap.cycles
                );
                let crossings: Vec<String> = snap
                    .crossings
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(k, v)| format!("{v} {k}"))
                    .collect();
                println!(
                    "  crossings: {} ({} ring changes)",
                    if crossings.is_empty() {
                        "none recorded".to_string()
                    } else {
                        crossings.join(", ")
                    },
                    snap.ring_changes
                );
                println!("  faults: {}", snap.faults_total);
                let cs = snap.sdw_cache;
                println!(
                    "  sdw cache: {} hits, {} misses ({:.1}% hit)",
                    cs.hits,
                    cs.misses,
                    100.0 * cs.hit_ratio()
                );
                if snap.call_cycles.count > 0 {
                    println!(
                        "  call path: {} calls, {:.1} cycles mean (min {}, max {})",
                        snap.call_cycles.count,
                        snap.call_cycles.mean,
                        snap.call_cycles.min,
                        snap.call_cycles.max
                    );
                }
                if snap.return_cycles.count > 0 {
                    println!(
                        "  return path: {} returns, {:.1} cycles mean (min {}, max {})",
                        snap.return_cycles.count,
                        snap.return_cycles.mean,
                        snap.return_cycles.min,
                        snap.return_cycles.max
                    );
                }
            }
            ["prof", rest @ ..] => {
                // The deterministic sampling profiler, live: one sample
                // per 500 simulated cycles, attributed to ring, segment
                // and the innermost open span.
                let prof = world.machine.profiler();
                if prof.samples() == 0 {
                    println!("  (no samples yet — step or run past cycle 500 first)");
                    continue;
                }
                let limit: usize = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10);
                let total = prof.samples();
                println!(
                    "  {total} samples, one per {} simulated cycles",
                    prof.sample_every()
                );
                let mut entries: Vec<(&str, u64)> = prof.folded_entries().collect();
                entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                for (stack, n) in entries.into_iter().take(limit) {
                    println!(
                        "  {n:>7} {:>5.1}%  {stack}",
                        100.0 * n as f64 / total as f64
                    );
                }
            }
            ["spans"] => {
                let m = &world.machine;
                let tree = multiring::trace::build_tree(m.spans().events(), m.cycles());
                let table = multiring::trace::gate_table(&tree);
                if table.is_empty() {
                    println!("  (no cross-ring spans yet — run a gate call first)");
                }
                for g in &table {
                    println!(
                        "  {} {:>4} {:>5} calls  {:>8} total cycles  {:>8} self",
                        g.kind, g.key, g.calls, g.total_cycles, g.self_cycles
                    );
                }
                if tree.unmatched_closes > 0 {
                    println!("  ({} unmatched closes)", tree.unmatched_closes);
                }
            }
            ["trace", rest @ ..] => {
                let dropped = world.machine.trace_dropped();
                let events = world.machine.take_trace_seq();
                let as_json = rest.first() == Some(&"--json");
                if dropped > 0 {
                    if as_json {
                        println!("{{\"dropped\": {dropped}}}");
                    } else {
                        println!("  ({dropped} earlier events dropped by the ring buffer)");
                    }
                }
                if events.is_empty() && !as_json {
                    println!("  (trace empty — step or run first)");
                }
                for (seq, ev) in &events {
                    if as_json {
                        println!("{}", trace_event_json(*seq, ev));
                    } else {
                        println!("{seq:>6}  {ev}");
                    }
                }
            }
            ["record", "stop"] => {
                if flight.path.is_some() {
                    flight.write_if_named(&world);
                    flight.path = None;
                } else {
                    println!("  not recording to a file (use record <file> first)");
                }
            }
            ["record", path] => {
                flight.path = Some((*path).to_string());
                println!("  recording to {path} (written on `record stop` or quit)");
            }
            ["replay", path] => {
                let recording = match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|t| Recording::from_json(&t))
                {
                    Ok(r) => r,
                    Err(e) => {
                        println!("  cannot load {path}: {e}");
                        continue;
                    }
                };
                match multiring::cpu::replay(&mut world.machine, &recording) {
                    Ok(report) if report.ok => println!(
                        "  replay OK: {} instructions, {} cycles, bit-identical final image",
                        report.instructions, report.cycles
                    ),
                    Ok(report) => println!(
                        "  replay DIVERGED: {}",
                        report.mismatch.as_deref().unwrap_or("unknown")
                    ),
                    Err(e) => println!("  replay failed: {e}"),
                }
                // The machine now sits at the recording's end; restart
                // the flight recorder so `rs` is relative to it.
                flight = Flight::start(&world);
                rebaseline(&world, &mut watchpoints);
                print_instr_at(&world);
            }
            ["b", at] => {
                let at: u32 = at.parse().unwrap_or(0);
                toggle_breakpoint(&mut breakpoints, CODE_SEG, at);
            }
            ["b", seg, at] => {
                let (Ok(seg), Ok(at)) = (seg.parse::<u32>(), at.parse::<u32>()) else {
                    println!("  b [<seg>] <wordno>");
                    continue;
                };
                if SegNo::new(seg).is_none() {
                    println!("  bad segment number");
                    continue;
                }
                toggle_breakpoint(&mut breakpoints, seg, at);
            }
            ["w", seg, at] => {
                let (Ok(seg), Ok(at)) = (seg.parse::<u32>(), at.parse::<u32>()) else {
                    println!("  w <segno> <wordno>");
                    continue;
                };
                let Some(segno) = SegNo::new(seg) else {
                    println!("  bad segment number");
                    continue;
                };
                if let Some(pos) = watchpoints
                    .iter()
                    .position(|wp| wp.segno == seg && wp.wordno == at)
                {
                    watchpoints.remove(pos);
                    println!("  cleared watchpoint at {seg}|{at}");
                } else {
                    let last = world.peek(segno, at).raw();
                    watchpoints.push(Watchpoint {
                        segno: seg,
                        wordno: at,
                        last,
                    });
                    println!("  set watchpoint at {seg}|{at} (current value {last:o})");
                }
            }
            other => println!("  unknown command {other:?} (try help)"),
        }
    }
    flight.write_if_named(&world);
    ExitCode::SUCCESS
}

/// The `--procs` debugger: steps the whole multiprogramming kernel and
/// understands which process the processor is executing for, so
/// breakpoints can be qualified by pid (the same virtual address means
/// a different word in every address space).
fn debug_multiproc(
    file: &str,
    procs: usize,
    frames: u32,
    quantum: u64,
    pages: u32,
    rounds: u32,
    fastpath: bool,
) -> ExitCode {
    use multiring::os::workload::{install_page_storm, install_storm_program, StormSpec};
    use multiring::os::{System, SystemConfig};

    let spec = StormSpec {
        procs,
        pages,
        rounds,
    };
    let cfg = SystemConfig {
        quantum,
        frame_budget: (frames > 0).then_some(frames),
        fastpath,
        ..SystemConfig::default()
    };
    let mut sys = System::boot_with(cfg);
    let installed = if file.is_empty() {
        install_page_storm(&mut sys, &spec)
    } else {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = multiring::asm::assemble(&source) {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
        install_storm_program(&mut sys, &spec, &source)
    };
    sys.machine.set_timer(Some(quantum));
    println!(
        "kernel world: {} processes (code segment {}, paged data segment {}), \
         {} frames, quantum {quantum}",
        installed.len(),
        installed[0].code_segno,
        installed[0].data_segno,
        frames
    );

    // (pid filter, segno, wordno); `None` pid hits in every process.
    let mut breakpoints: Vec<(Option<usize>, u32, u32)> = Vec::new();
    let print_where = |sys: &System| {
        let ipr = sys.machine.ipr();
        let pid = sys.state.borrow().current;
        let mut line = format!(
            "  proc {pid} at {}|{} ring {}",
            ipr.addr.segno,
            ipr.addr.wordno,
            sys.machine.ring()
        );
        let sdw = sys.read_sdw(pid, ipr.addr.segno.value());
        if sdw.present && sdw.unpaged {
            if let Ok(w) = sys
                .machine
                .phys()
                .peek(sdw.addr.wrapping_add(ipr.addr.wordno.value()))
            {
                line.push_str(&format!(": {}", disassemble_word(w)));
            }
        }
        println!("{line}");
    };
    let bp_hit = |sys: &System, bps: &[(Option<usize>, u32, u32)]| -> bool {
        let at = sys.machine.ipr().addr;
        let pid = sys.state.borrow().current;
        bps.iter().any(|&(p, s, w)| {
            p.is_none_or(|p| p == pid) && s == at.segno.value() && w == at.wordno.value()
        })
    };
    print_where(&sys);

    let stdin = std::io::stdin();
    loop {
        print!("ringdbg> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["q"] | ["quit"] => break,
            ["help"] | ["h"] => {
                println!("s [n] step | g [n] run | r regs | ps processes | stats scheduler");
                println!("b <pid|*> <seg> <w>  toggle process-qualified breakpoint | q quit");
            }
            ["r"] => {
                let m = &sys.machine;
                let pid = sys.state.borrow().current;
                println!(
                    "  proc {pid}  IPR ring {} at {}   A={:0>12o} Q={:0>12o}  cycles={} instrs={}",
                    m.ring(),
                    m.ipr().addr,
                    m.a().raw(),
                    m.q().raw(),
                    m.cycles(),
                    m.stats().instructions
                );
            }
            ["s", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    match sys.machine.step() {
                        StepOutcome::Ran => {}
                        StepOutcome::Trapped(f) => println!("  trapped: {f}"),
                        StepOutcome::Halted => {
                            println!("  halted (all processes done or blocked forever)");
                            break;
                        }
                    }
                }
                print_where(&sys);
            }
            ["g", rest @ ..] => {
                let n: u64 = rest
                    .first()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1_000_000);
                let mut ran = 0u64;
                for _ in 0..n {
                    if bp_hit(&sys, &breakpoints) {
                        println!(
                            "  breakpoint in proc {} after {ran} instructions",
                            sys.state.borrow().current
                        );
                        break;
                    }
                    match sys.machine.step() {
                        StepOutcome::Ran | StepOutcome::Trapped(_) => ran += 1,
                        StepOutcome::Halted => {
                            println!("  halted after {ran} instructions");
                            break;
                        }
                    }
                }
                print_where(&sys);
            }
            ["b", pid, seg, at] => {
                let pid_filter = if *pid == "*" {
                    None
                } else {
                    match pid.parse::<usize>() {
                        Ok(p) if p < procs => Some(p),
                        _ => {
                            println!("  b <pid|*> <seg> <w> (pid < {procs})");
                            continue;
                        }
                    }
                };
                let (Ok(seg), Ok(at)) = (seg.parse::<u32>(), at.parse::<u32>()) else {
                    println!("  b <pid|*> <seg> <w>");
                    continue;
                };
                let key = (pid_filter, seg, at);
                let who = pid_filter.map_or("any process".to_string(), |p| format!("proc {p}"));
                if let Some(pos) = breakpoints.iter().position(|&b| b == key) {
                    breakpoints.remove(pos);
                    println!("  cleared breakpoint at {seg}|{at} ({who})");
                } else {
                    breakpoints.push(key);
                    println!("  set breakpoint at {seg}|{at} ({who})");
                }
            }
            ["ps"] => {
                let st = sys.state.borrow();
                for (i, p) in st.processes.iter().enumerate() {
                    let state = if let Some(reason) = p.aborted.as_deref() {
                        if reason == "exit" {
                            "exited".to_string()
                        } else {
                            format!("aborted ({reason})")
                        }
                    } else if let Some(reason) = st.sched.blocked_reason(i) {
                        format!("blocked ({reason})")
                    } else if st.sched.is_ready(i) {
                        "ready".to_string()
                    } else if st.current == i {
                        "running".to_string()
                    } else {
                        "idle".to_string()
                    };
                    println!(
                        "  {i}: {} state={state} faults={} preempts={}",
                        p.user, p.page_faults, p.preemptions
                    );
                }
            }
            ["stats"] => {
                let sc = sys.state.borrow().sched.stats;
                println!(
                    "  {} context switches ({} preemptions), {} minor + {} major page \
                     faults, {} evictions, {} io blocks, {} idle cycles",
                    sc.context_switches,
                    sc.preemptions,
                    sc.page_faults_minor,
                    sc.page_faults_major,
                    sc.evictions,
                    sc.io_blocks,
                    sc.idle_cycles
                );
            }
            other => println!("  unknown command {other:?} (try help)"),
        }
    }
    ExitCode::SUCCESS
}

fn toggle_breakpoint(breakpoints: &mut Vec<(u32, u32)>, seg: u32, at: u32) {
    if let Some(pos) = breakpoints.iter().position(|&b| b == (seg, at)) {
        breakpoints.remove(pos);
        println!("  cleared breakpoint at {seg}|{at}");
    } else {
        breakpoints.push((seg, at));
        println!("  set breakpoint at {seg}|{at}");
    }
}
