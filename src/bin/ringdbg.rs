//! `ringdbg` — an interactive monitor for the ring-protection
//! simulator (a front panel with a disassembler).
//!
//! ```text
//! ringdbg <file.rasm> [--ring N]
//! ```
//!
//! Commands (also `help` at the prompt):
//!
//! ```text
//! s [n]        step n instructions (default 1), printing each
//! r            print registers
//! g [n]        run up to n instructions (default 100000)
//! d <w> [n]    disassemble n words of the code segment at word w
//! m <s> <w> [n]  dump n words of segment s at word w
//! b <w>        toggle a breakpoint at code word w
//! stats        metrics snapshot: crossings, faults, SDW cache
//! trace [--json]  drain the execution trace (JSON lines with --json)
//! q            quit
//! ```
//!
//! Execution tracing and the metrics recorder are always on in the
//! debugger; `trace` drains the drop-oldest ring buffer (sequence
//! numbers show how many earlier events were discarded).

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use multiring::asm::disassemble_word;
use multiring::core::addr::SegNo;
use multiring::core::ring::Ring;
use multiring::core::sdw::SdwBuilder;
use multiring::cpu::machine::StepOutcome;
use multiring::cpu::native::NativeAction;
use multiring::cpu::testkit::World;
use multiring::cpu::TraceEvent;
use multiring::metrics::json_escape;

const CODE_SEG: u32 = 10;

/// One trace event as a JSON object (for `trace --json`).
fn trace_event_json(seq: u64, ev: &TraceEvent) -> String {
    let body = match ev {
        TraceEvent::Instr { at, instr } => format!(
            "\"kind\": \"instr\", \"ring\": {}, \"segno\": {}, \"wordno\": {}, \
             \"mnemonic\": \"{}\", \"offset\": {}",
            at.ring.number(),
            at.addr.segno.value(),
            at.addr.wordno.value(),
            instr.opcode.mnemonic(),
            instr.offset
        ),
        TraceEvent::Call { from, to, new_ring } => format!(
            "\"kind\": \"call\", \"from_ring\": {}, \"to_ring\": {}, \
             \"target_segno\": {}, \"target_wordno\": {}",
            from.ring.number(),
            new_ring.number(),
            to.segno.value(),
            to.wordno.value()
        ),
        TraceEvent::Return { from, to, new_ring } => format!(
            "\"kind\": \"return\", \"from_ring\": {}, \"to_ring\": {}, \
             \"target_segno\": {}, \"target_wordno\": {}",
            from.ring.number(),
            new_ring.number(),
            to.segno.value(),
            to.wordno.value()
        ),
        TraceEvent::Trap { fault } => format!(
            "\"kind\": \"trap\", \"vector\": {}, \"fault\": \"{}\"",
            fault.vector(),
            json_escape(&fault.to_string())
        ),
        TraceEvent::Native { segno, entry } => format!(
            "\"kind\": \"native\", \"segno\": {}, \"entry\": {}",
            segno.value(),
            entry.value()
        ),
    };
    format!("{{\"seq\": {seq}, {body}}}")
}

fn print_regs(w: &World) {
    let m = &w.machine;
    println!(
        "IPR ring {} at {}   A={:0>12o} Q={:0>12o}",
        m.ring(),
        m.ipr().addr,
        m.a().raw(),
        m.q().raw()
    );
    for n in 0..8 {
        let pr = m.pr(n);
        print!("PR{n}={}^{} ", pr.addr, pr.ring);
        if n == 3 {
            println!();
        }
    }
    println!();
    print!("X: ");
    for n in 0..8 {
        print!("{} ", m.xreg(n));
    }
    println!("  cycles={} instrs={}", m.cycles(), m.stats().instructions);
}

fn print_instr_at(w: &World) {
    let ipr = w.machine.ipr();
    if ipr.addr.segno.value() == CODE_SEG {
        let word = w.peek(ipr.addr.segno, ipr.addr.wordno.value());
        println!(
            "  next: {}|{}: {}",
            ipr.addr.segno,
            ipr.addr.wordno,
            disassemble_word(word)
        );
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(file) = args.next() else {
        eprintln!("usage: ringdbg <file.rasm> [--ring N] [--no-fastpath]");
        return ExitCode::FAILURE;
    };
    let mut ring = Ring::R4;
    let mut fastpath = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ring" => {
                ring = match args
                    .next()
                    .and_then(|n| n.parse::<u8>().ok())
                    .and_then(Ring::new)
                {
                    Some(r) => r,
                    None => {
                        eprintln!("--ring takes 0..=7");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--no-fastpath" => fastpath = false,
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = match multiring::asm::assemble(&source) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut world = World::with_config(multiring::cpu::machine::MachineConfig {
        fastpath,
        ..multiring::cpu::machine::MachineConfig::default()
    });
    let code = world.add_segment(
        CODE_SEG,
        SdwBuilder::procedure(ring, ring, Ring::R7)
            .gates(4)
            .bound_words(image.len().max(16)),
    );
    world.add_segment(11, SdwBuilder::data(ring, ring).bound_words(1024));
    world.add_standard_stacks(16);
    let trap = world.add_trap_segment();
    world.machine.register_native(trap, |m, vector| {
        if let Some(f) = m.last_fault() {
            println!("  ** trap (vector {}): {f}", vector.value());
        }
        Ok(NativeAction::Halt)
    });
    for (i, w) in image.words.iter().enumerate() {
        world.poke(code, i as u32, *w);
    }
    world.start(ring, code, 0);
    world.machine.enable_trace(4096);
    world.machine.enable_metrics();
    println!(
        "loaded {} words into segment {CODE_SEG}; ring {ring}",
        image.len()
    );
    print_instr_at(&world);

    let mut breakpoints: Vec<u32> = Vec::new();
    let stdin = std::io::stdin();
    loop {
        print!("ringdbg> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["q"] | ["quit"] => break,
            ["help"] | ["h"] => {
                println!("s [n] step | r regs | g [n] run | d <w> [n] disasm");
                println!("m <s> <w> [n] memory | seg <s> descriptor | b <w> breakpoint | q quit");
                println!("stats metrics snapshot | trace [--json] drain execution trace");
            }
            ["r"] => print_regs(&world),
            ["s", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    match world.machine.step() {
                        StepOutcome::Ran => {}
                        StepOutcome::Trapped(f) => println!("  trapped: {f}"),
                        StepOutcome::Halted => {
                            println!("  halted");
                            break;
                        }
                    }
                    print_instr_at(&world);
                }
            }
            ["g", rest @ ..] => {
                let n: u64 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(100_000);
                let mut ran = 0;
                for _ in 0..n {
                    let at = world.machine.ipr().addr;
                    if at.segno.value() == CODE_SEG && breakpoints.contains(&at.wordno.value()) {
                        println!("  breakpoint at {at}");
                        break;
                    }
                    match world.machine.step() {
                        StepOutcome::Ran | StepOutcome::Trapped(_) => ran += 1,
                        StepOutcome::Halted => {
                            println!("  halted after {ran} instructions");
                            break;
                        }
                    }
                }
                print_instr_at(&world);
            }
            ["d", at, rest @ ..] => {
                let at: u32 = at.parse().unwrap_or(0);
                let n: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(8);
                for i in at..(at + n).min(image.len().max(at + n)) {
                    let w = world.peek(code, i);
                    println!("{i:6}  {:0>12o}  {}", w.raw(), disassemble_word(w));
                }
            }
            ["m", s, at, rest @ ..] => {
                let (Ok(s), Ok(at)) = (s.parse::<u32>(), at.parse::<u32>()) else {
                    println!("  m <segno> <wordno> [n]");
                    continue;
                };
                let n: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(8);
                match SegNo::new(s) {
                    Some(seg) => {
                        for i in at..at + n {
                            let w = world.peek(seg, i);
                            println!("{s}|{i:<6}  {:0>12o}", w.raw());
                        }
                    }
                    None => println!("  bad segment number"),
                }
            }
            ["seg", n] => match n.parse::<u32>() {
                Ok(n) if n < 64 => {
                    let sdw = world.read_sdw(n);
                    println!("  segment {n}: {sdw}");
                }
                _ => println!("  seg <segno 0..63>"),
            },
            ["stats"] => {
                let snap = world.machine.metrics_snapshot();
                println!(
                    "  {} instructions, {} cycles",
                    snap.instructions, snap.cycles
                );
                let crossings: Vec<String> = snap
                    .crossings
                    .iter()
                    .filter(|(_, v)| *v > 0)
                    .map(|(k, v)| format!("{v} {k}"))
                    .collect();
                println!(
                    "  crossings: {} ({} ring changes)",
                    if crossings.is_empty() {
                        "none recorded".to_string()
                    } else {
                        crossings.join(", ")
                    },
                    snap.ring_changes
                );
                println!("  faults: {}", snap.faults_total);
                let cs = snap.sdw_cache;
                println!(
                    "  sdw cache: {} hits, {} misses ({:.1}% hit)",
                    cs.hits,
                    cs.misses,
                    100.0 * cs.hit_ratio()
                );
                if snap.call_cycles.count > 0 {
                    println!(
                        "  call path: {} calls, {:.1} cycles mean (min {}, max {})",
                        snap.call_cycles.count,
                        snap.call_cycles.mean,
                        snap.call_cycles.min,
                        snap.call_cycles.max
                    );
                }
                if snap.return_cycles.count > 0 {
                    println!(
                        "  return path: {} returns, {:.1} cycles mean (min {}, max {})",
                        snap.return_cycles.count,
                        snap.return_cycles.mean,
                        snap.return_cycles.min,
                        snap.return_cycles.max
                    );
                }
            }
            ["trace", rest @ ..] => {
                let dropped = world.machine.trace_dropped();
                let events = world.machine.take_trace_seq();
                if dropped > 0 {
                    println!("  ({dropped} earlier events dropped by the ring buffer)");
                }
                if events.is_empty() {
                    println!("  (trace empty — step or run first)");
                }
                let as_json = rest.first() == Some(&"--json");
                for (seq, ev) in &events {
                    if as_json {
                        println!("{}", trace_event_json(*seq, ev));
                    } else {
                        println!("{seq:>6}  {ev}");
                    }
                }
            }
            ["b", at] => {
                let at: u32 = at.parse().unwrap_or(0);
                if let Some(pos) = breakpoints.iter().position(|&b| b == at) {
                    breakpoints.remove(pos);
                    println!("  cleared breakpoint at {at}");
                } else {
                    breakpoints.push(at);
                    println!("  set breakpoint at {at}");
                }
            }
            other => println!("  unknown command {other:?} (try help)"),
        }
    }
    ExitCode::SUCCESS
}
