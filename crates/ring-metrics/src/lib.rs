//! Unified observability layer for the ring-protection simulator.
//!
//! The paper's central claim is that ring crossings (Figs. 8 and 9)
//! happen in hardware *without trapping*, so the cost of protection is a
//! handful of checks per reference. This crate is the instrumentation
//! substrate that lets the simulator show it: every layer of the stack
//! reports events into a [`Metrics`] aggregate through the
//! [`EventSink`] trait, and the result is exported as a machine-readable
//! [`snapshot::MetricsSnapshot`] (JSON or CSV).
//!
//! What is recorded:
//!
//! * **Ring-crossing telemetry** ([`counters::CrossingCounters`]) — an
//!   8×8 from-ring × to-ring matrix plus per-kind counts for the five
//!   ways control moves between rings: hardware down-calls through
//!   gates, hardware up-returns, same-ring calls/returns, traps to
//!   ring 0, and the software-assisted upward-call / downward-return
//!   traps.
//! * **Fault accounting** ([`counters::FaultCounters`]) — counts keyed
//!   by trap vector and by the ring that was executing at fault time.
//! * **Opcode-class counters** ([`counters::OpClassCounters`]) — the
//!   paper's grouping of instructions by the kind of operand reference
//!   they make (Figs. 6 and 7).
//! * **Cycle histograms** ([`hist::CycleHistogram`]) — log₂-bucketed
//!   latency distributions for CALL and RETURN paths, effective-address
//!   indirect-chain depth, and SDW-cache hit/miss descriptor-walk
//!   costs, plus a count of Fig. 5 TPR ring-maximisation events.
//! * **Per-segment heatmap** ([`heatmap::SegmentHeatmap`]) — R/W/E
//!   reference counts and bracket-violation attempts per segment.
//! * **Bounded event recording** ([`ring_buffer::EventRing`]) — the
//!   generic drop-oldest ring buffer the CPU's execution trace is built
//!   on.
//!
//! The layer is zero-cost when disabled: every [`Metrics`] entry point
//! checks one boolean and returns, and the machine reaches a bit-for-bit
//! identical architectural state whether metrics are on or off (a
//! property test in the workspace enforces this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod heatmap;
pub mod hist;
pub mod ring_buffer;
pub mod snapshot;

pub use counters::{Crossing, CrossingCounters, FaultCounters, OpClass, OpClassCounters};
pub use heatmap::{SegHeat, SegmentHeatmap};
pub use hist::CycleHistogram;
pub use ring_buffer::EventRing;
pub use snapshot::{
    json_escape, FastPathStats, HistogramSnapshot, MetricsSnapshot, ProfStats, SchedStats,
    SdwCacheStats,
};

use ring_core::access::{AccessMode, Fault};
use ring_core::ring::Ring;

/// Receiver of instrumentation events from the simulator.
///
/// Every method has an empty default body, so a sink implements only
/// what it cares about; [`Metrics`] implements all of them, and the unit
/// type `()` is the always-off null sink.
pub trait EventSink {
    /// An instruction of the given operand class completed decode in
    /// `ring`.
    fn instruction(&mut self, ring: Ring, class: OpClass) {
        let _ = (ring, class);
    }

    /// Control crossed (or stayed within) a ring boundary.
    fn crossing(&mut self, kind: Crossing, from: Ring, to: Ring) {
        let _ = (kind, from, to);
    }

    /// A fault was detected while executing in `ring`.
    fn fault(&mut self, fault: &Fault, ring: Ring) {
        let _ = (fault, ring);
    }

    /// A reference of the given mode reached segment `segno`'s
    /// descriptor. The bracket check happens after descriptor fetch, so
    /// this counts *attempts*; a refused attempt additionally shows up
    /// as a [`EventSink::bracket_violation`] on the same segment.
    fn access(&mut self, segno: u32, mode: AccessMode) {
        let _ = (segno, mode);
    }

    /// An access-bracket or gate check refused a reference to `segno`.
    fn bracket_violation(&mut self, segno: u32) {
        let _ = segno;
    }

    /// An SDW lookup completed: a cache hit, or a miss costing
    /// `extra_refs` descriptor-walk memory references.
    fn sdw_lookup(&mut self, hit: bool, extra_refs: u64) {
        let _ = (hit, extra_refs);
    }

    /// A CALL instruction completed, costing `cycles`.
    fn call_cycles(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// A RETURN instruction completed, costing `cycles`.
    fn return_cycles(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Effective-address formation finished after following `depth`
    /// indirect words; `maximised` reports whether any fold raised the
    /// effective ring above the ring of execution (Fig. 5).
    fn ea_formed(&mut self, depth: u32, maximised: bool) {
        let _ = (depth, maximised);
    }
}

/// The null sink: discards everything.
impl EventSink for () {}

/// The aggregate recorder threaded through the machine and supervisor.
///
/// Constructed disabled; [`Metrics::enable`] turns recording on. Every
/// recording method bails on the first branch when disabled, so a
/// disabled `Metrics` costs one predictable-taken compare per event.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    enabled: bool,
    /// Ring-crossing counts (matrix and per-kind).
    pub crossings: CrossingCounters,
    /// Fault counts by vector and by faulting ring.
    pub faults: FaultCounters,
    /// Instruction counts by operand-reference class.
    pub opclasses: OpClassCounters,
    /// Instruction counts by ring of execution.
    pub instr_by_ring: [u64; counters::NUM_RINGS],
    /// Cycle cost of completed CALL instructions.
    pub call_cycles: CycleHistogram,
    /// Cycle cost of completed RETURN instructions.
    pub return_cycles: CycleHistogram,
    /// Indirect-chain depth of each effective-address formation.
    pub ea_depth: CycleHistogram,
    /// Fig. 5 events where folding raised the effective ring above the
    /// ring of execution.
    pub tpr_maximisations: u64,
    /// Extra descriptor-walk references on SDW-cache hits (always 0,
    /// recorded for the latency contrast with misses).
    pub sdw_hit_refs: CycleHistogram,
    /// Extra descriptor-walk references on SDW-cache misses.
    pub sdw_miss_refs: CycleHistogram,
    /// Per-segment reference and violation counts.
    pub heatmap: SegmentHeatmap,
}

impl Metrics {
    /// A disabled recorder (the machine's initial state).
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// An enabled recorder with zeroed counters.
    pub fn enabled() -> Metrics {
        Metrics {
            enabled: true,
            ..Metrics::default()
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on (existing counts are kept).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Zeroes every counter, preserving the enabled flag.
    pub fn reset(&mut self) {
        *self = Metrics {
            enabled: self.enabled,
            ..Metrics::default()
        };
    }
}

impl EventSink for Metrics {
    fn instruction(&mut self, ring: Ring, class: OpClass) {
        if !self.enabled {
            return;
        }
        self.instr_by_ring[ring.number() as usize] += 1;
        self.opclasses.record(class);
    }

    fn crossing(&mut self, kind: Crossing, from: Ring, to: Ring) {
        if !self.enabled {
            return;
        }
        self.crossings.record(kind, from, to);
    }

    fn fault(&mut self, fault: &Fault, ring: Ring) {
        if !self.enabled {
            return;
        }
        self.faults.record(fault, ring);
        if let Fault::AccessViolation { addr, .. } = fault {
            self.heatmap.record_violation(addr.segno.value());
        }
    }

    fn access(&mut self, segno: u32, mode: AccessMode) {
        if !self.enabled {
            return;
        }
        self.heatmap.record(segno, mode);
    }

    fn bracket_violation(&mut self, segno: u32) {
        if !self.enabled {
            return;
        }
        self.heatmap.record_violation(segno);
    }

    fn sdw_lookup(&mut self, hit: bool, extra_refs: u64) {
        if !self.enabled {
            return;
        }
        if hit {
            self.sdw_hit_refs.record(extra_refs);
        } else {
            self.sdw_miss_refs.record(extra_refs);
        }
    }

    fn call_cycles(&mut self, cycles: u64) {
        if !self.enabled {
            return;
        }
        self.call_cycles.record(cycles);
    }

    fn return_cycles(&mut self, cycles: u64) {
        if !self.enabled {
            return;
        }
        self.return_cycles.record(cycles);
    }

    fn ea_formed(&mut self, depth: u32, maximised: bool) {
        if !self.enabled {
            return;
        }
        self.ea_depth.record(u64::from(depth));
        if maximised {
            self.tpr_maximisations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_core::access::Violation;
    use ring_core::addr::SegAddr;

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut m = Metrics::disabled();
        m.instruction(Ring::R4, OpClass::Read);
        m.crossing(Crossing::CallDown, Ring::R4, Ring::R1);
        m.fault(&Fault::TimerRunout, Ring::R4);
        m.access(10, AccessMode::Read);
        m.sdw_lookup(false, 2);
        m.call_cycles(9);
        m.ea_formed(3, true);
        assert!(!m.is_enabled());
        assert_eq!(m.crossings.total(), 0);
        assert_eq!(m.faults.total(), 0);
        assert_eq!(m.opclasses.total(), 0);
        assert_eq!(m.call_cycles.count(), 0);
        assert_eq!(m.ea_depth.count(), 0);
        assert_eq!(m.tpr_maximisations, 0);
        assert!(m.heatmap.is_empty());
    }

    #[test]
    fn enabled_metrics_record_everything() {
        let mut m = Metrics::enabled();
        m.instruction(Ring::R4, OpClass::Read);
        m.instruction(Ring::R1, OpClass::Call);
        m.crossing(Crossing::CallDown, Ring::R4, Ring::R1);
        m.crossing(Crossing::ReturnUp, Ring::R1, Ring::R4);
        m.fault(
            &Fault::AccessViolation {
                mode: AccessMode::Write,
                violation: Violation::OutsideBracket,
                addr: SegAddr::from_parts(11, 3).unwrap(),
                ring: Ring::R5,
            },
            Ring::R5,
        );
        m.access(11, AccessMode::Write);
        m.sdw_lookup(true, 0);
        m.sdw_lookup(false, 2);
        m.call_cycles(9);
        m.return_cycles(7);
        m.ea_formed(2, true);

        assert_eq!(m.instr_by_ring[4], 1);
        assert_eq!(m.instr_by_ring[1], 1);
        assert_eq!(m.crossings.count(Crossing::CallDown), 1);
        assert_eq!(m.crossings.matrix[4][1], 1);
        assert_eq!(m.crossings.matrix[1][4], 1);
        assert_eq!(m.faults.total(), 1);
        assert_eq!(m.faults.by_ring[5], 1);
        // The access-violation fault also marks the heatmap.
        let heat = m.heatmap.get(11).unwrap();
        assert_eq!(heat.writes, 1);
        assert_eq!(heat.violations, 1);
        assert_eq!(m.sdw_hit_refs.count(), 1);
        assert_eq!(m.sdw_miss_refs.count(), 1);
        assert_eq!(m.call_cycles.count(), 1);
        assert_eq!(m.tpr_maximisations, 1);
    }

    #[test]
    fn reset_preserves_enablement() {
        let mut m = Metrics::enabled();
        m.instruction(Ring::R3, OpClass::Write);
        m.reset();
        assert!(m.is_enabled());
        assert_eq!(m.opclasses.total(), 0);
    }
}
