//! Per-segment access heatmap: R/W/E reference counts and refused
//! (bracket-violation) attempts.

use std::collections::BTreeMap;

use ring_core::access::AccessMode;

/// Reference counts for one segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegHeat {
    /// Validated read references (operand fetches, indirect words).
    pub reads: u64,
    /// Validated write references.
    pub writes: u64,
    /// Validated execute references (instruction fetches, transfers).
    pub executes: u64,
    /// References refused by access validation (any violation kind).
    pub violations: u64,
}

impl SegHeat {
    /// Total validated references of every mode.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.executes
    }
}

/// Access counts per segment number, ordered for stable export.
#[derive(Clone, Debug, Default)]
pub struct SegmentHeatmap {
    segs: BTreeMap<u32, SegHeat>,
}

impl SegmentHeatmap {
    /// A fresh, empty heatmap.
    pub fn new() -> SegmentHeatmap {
        SegmentHeatmap::default()
    }

    /// Records one reference of `mode` to segment `segno`.
    pub fn record(&mut self, segno: u32, mode: AccessMode) {
        let heat = self.segs.entry(segno).or_default();
        match mode {
            AccessMode::Read => heat.reads += 1,
            AccessMode::Write => heat.writes += 1,
            AccessMode::Execute => heat.executes += 1,
        }
    }

    /// Records one refused reference to segment `segno`.
    pub fn record_violation(&mut self, segno: u32) {
        self.segs.entry(segno).or_default().violations += 1;
    }

    /// The counts for `segno`, if any reference touched it.
    pub fn get(&self, segno: u32) -> Option<&SegHeat> {
        self.segs.get(&segno)
    }

    /// Number of segments touched.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Iterates `(segno, counts)` in ascending segment order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SegHeat)> {
        self.segs.iter().map(|(s, h)| (*s, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_mode_and_violation() {
        let mut h = SegmentHeatmap::new();
        h.record(10, AccessMode::Execute);
        h.record(10, AccessMode::Execute);
        h.record(11, AccessMode::Read);
        h.record(11, AccessMode::Write);
        h.record_violation(12);
        assert_eq!(h.get(10).unwrap().executes, 2);
        assert_eq!(h.get(11).unwrap().reads, 1);
        assert_eq!(h.get(11).unwrap().writes, 1);
        assert_eq!(h.get(11).unwrap().total(), 2);
        assert_eq!(h.get(12).unwrap().violations, 1);
        assert_eq!(h.get(12).unwrap().total(), 0);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn iteration_is_segment_ordered() {
        let mut h = SegmentHeatmap::new();
        for s in [30u32, 10, 20] {
            h.record(s, AccessMode::Read);
        }
        let order: Vec<u32> = h.iter().map(|(s, _)| s).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }
}
