//! Export-ready snapshots: the merged view of machine metrics,
//! SDW-cache statistics and supervisor counters, with JSON and CSV
//! serializers (hand-rolled — the simulator has no serde dependency).
//!
//! The JSON schema is documented in `docs/OBSERVABILITY.md` at the
//! workspace root; the CSV form is a flat `key,value` table using the
//! same dotted keys as the JSON paths.

use crate::counters::{vector_key, Crossing, OpClass, NUM_RINGS, NUM_VECTORS};
use crate::heatmap::SegHeat;
use crate::hist::CycleHistogram;
use crate::Metrics;

/// SDW associative-memory statistics, mirrored here so consumers of a
/// snapshot need no `ring-segmem` dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SdwCacheStats {
    /// Lookups satisfied by the cache.
    pub hits: u64,
    /// Lookups that walked the descriptor segment.
    pub misses: u64,
    /// Full flushes (DBR loads).
    pub flushes: u64,
    /// Single-entry invalidations (supervisor SDW updates).
    pub invalidations: u64,
}

impl SdwCacheStats {
    /// Hit ratio in `[0, 1]`; zero when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fast-path engine statistics (the ring-checked translation lookaside
/// plus the predecoded instruction cache), mirrored here so snapshot
/// consumers need no `ring-segmem`/`ring-cpu` dependency. Purely
/// observational: the fast path changes no architectural counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Instructions committed by the fast-path engine.
    pub fast_instructions: u64,
    /// Instructions executed by the reference interpreter (including
    /// all instructions when the fast path is disabled).
    pub slow_instructions: u64,
    /// Committed fast-path translations.
    pub tlb_hits: u64,
    /// Fast-path attempts abandoned to the slow path.
    pub tlb_misses: u64,
    /// Lookaside entries installed.
    pub tlb_installs: u64,
    /// Per-segment lookaside invalidation sweeps.
    pub tlb_invalidations: u64,
    /// Full lookaside flushes (DBR loads).
    pub tlb_flushes: u64,
    /// Instruction fetches served predecoded.
    pub icache_hits: u64,
    /// Instruction fetches that decoded afresh.
    pub icache_misses: u64,
}

impl FastPathStats {
    /// Fraction of instructions that committed on the fast path, in
    /// `[0, 1]`; zero when nothing ran.
    pub fn fast_ratio(&self) -> f64 {
        let total = self.fast_instructions + self.slow_instructions;
        if total == 0 {
            0.0
        } else {
            self.fast_instructions as f64 / total as f64
        }
    }
}

/// Scheduler and demand-paging statistics, mirrored here so snapshot
/// consumers need no `ring-sched` dependency. All-zero in
/// single-process runs (the kernel without a frame budget never
/// context-switches for paging).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Dispatches that changed the running process (DBR switches).
    pub context_switches: u64,
    /// Timer runouts that preempted a still-runnable process.
    pub preemptions: u64,
    /// Page faults filled from the segment's file image (first touch).
    pub page_faults_minor: u64,
    /// Page faults filled from the backing store (after an eviction).
    pub page_faults_major: u64,
    /// Resident pages evicted by the CLOCK hand.
    pub evictions: u64,
    /// Times a process blocked waiting for an I/O completion.
    pub io_blocks: u64,
    /// Times a process blocked waiting for a page-in.
    pub page_blocks: u64,
    /// Cycles the processor idled with every process blocked.
    pub idle_cycles: u64,
}

impl SchedStats {
    /// Total page faults, both classes.
    pub fn page_faults(&self) -> u64 {
        self.page_faults_minor + self.page_faults_major
    }

    fn merge(&mut self, other: &SchedStats) {
        self.context_switches += other.context_switches;
        self.preemptions += other.preemptions;
        self.page_faults_minor += other.page_faults_minor;
        self.page_faults_major += other.page_faults_major;
        self.evictions += other.evictions;
        self.io_blocks += other.io_blocks;
        self.page_blocks += other.page_blocks;
        self.idle_cycles += other.idle_cycles;
    }
}

/// Cycle-driven profiler statistics (the `ring-prof` sampling profiler
/// and time-series pipeline), mirrored here so snapshot consumers need
/// no `ring-prof` dependency. All-zero when no profiler is attached;
/// assigned after [`MetricsSnapshot::new`] like [`SchedStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfStats {
    /// Stack samples captured.
    pub samples: u64,
    /// Sampling period in simulated cycles (0 = profiler off).
    pub sample_every: u64,
    /// Time-series points recorded.
    pub timeseries_points: u64,
    /// Time-series interval in simulated cycles (0 = pipeline off).
    pub timeseries_every: u64,
}

impl ProfStats {
    fn merge(&mut self, other: &ProfStats) {
        self.samples += other.samples;
        self.timeseries_points += other.timeseries_points;
        // The periods are configuration, not counters: keep ours unless
        // unset (so merging an unprofiled run is the identity).
        if self.sample_every == 0 {
            self.sample_every = other.sample_every;
        }
        if self.timeseries_every == 0 {
            self.timeseries_every = other.timeseries_every;
        }
    }
}

/// A bucketed histogram flattened for export.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &CycleHistogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            buckets: h.nonzero_buckets().collect(),
        }
    }

    /// Folds `other` into this histogram: counts add, bucket lists
    /// merge by range, and min/max/mean are recomputed exactly as if
    /// every observation had landed in one histogram. Because both
    /// sides bucket on identical log₂ boundaries, merging snapshots of
    /// two runs equals the snapshot of their concatenation.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.mean = self.sum as f64 / self.count as f64;
        for (lo, hi, c) in &other.buckets {
            match self.buckets.iter_mut().find(|(l, h, _)| l == lo && h == hi) {
                Some((_, _, mine)) => *mine += c,
                None => self.buckets.push((*lo, *hi, *c)),
            }
        }
        self.buckets.sort_by_key(|(lo, _, _)| *lo);
    }

    /// The value at quantile `p` in `[0, 1]`, resolved to bucket
    /// granularity: the upper bound of the bucket holding the rank-`p`
    /// observation, clamped to the exact observed `[min, max]`. Zero
    /// when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (_, hi, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return (*hi).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A complete, self-contained picture of everything the observability
/// layer recorded, plus the execution totals it is reported against.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Whether the metrics layer was enabled when the snapshot was taken
    /// (a disabled run exports structure with all-zero counters).
    pub enabled: bool,
    /// Instructions completed by the machine.
    pub instructions: u64,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Per-kind crossing counts, in [`Crossing::ALL`] order.
    pub crossings: Vec<(&'static str, u64)>,
    /// `matrix[from][to]` ring-transition counts.
    pub crossing_matrix: [[u64; NUM_RINGS]; NUM_RINGS],
    /// Total events that changed the ring of execution.
    pub ring_changes: u64,
    /// Fault counts by vector name, in vector order.
    pub faults_by_vector: Vec<(&'static str, u64)>,
    /// Fault counts by faulting ring.
    pub faults_by_ring: [u64; NUM_RINGS],
    /// Total faults.
    pub faults_total: u64,
    /// Instruction counts by operand class, in [`OpClass::ALL`] order.
    pub opcode_classes: Vec<(&'static str, u64)>,
    /// Instruction counts by ring of execution.
    pub instr_by_ring: [u64; NUM_RINGS],
    /// CALL-path cycle costs.
    pub call_cycles: HistogramSnapshot,
    /// RETURN-path cycle costs.
    pub return_cycles: HistogramSnapshot,
    /// Effective-address indirect-chain depths.
    pub ea_depth: HistogramSnapshot,
    /// Fig. 5 TPR ring-maximisation events.
    pub tpr_maximisations: u64,
    /// Extra descriptor-walk references on SDW-cache hits.
    pub sdw_hit_refs: HistogramSnapshot,
    /// Extra descriptor-walk references on SDW-cache misses.
    pub sdw_miss_refs: HistogramSnapshot,
    /// Per-segment access counts, ascending by segment number.
    pub heatmap: Vec<(u32, SegHeat)>,
    /// SDW associative-memory statistics.
    pub sdw_cache: SdwCacheStats,
    /// Fast-path engine statistics.
    pub fastpath: FastPathStats,
    /// Scheduler and demand-paging statistics (all-zero outside
    /// multiprogrammed runs; assigned by the kernel after
    /// [`MetricsSnapshot::new`], which keeps its signature stable).
    pub sched: SchedStats,
    /// Sampling-profiler statistics (all-zero when no profiler is
    /// attached; assigned after [`MetricsSnapshot::new`]).
    pub prof: ProfStats,
    /// Execution-trace events discarded by the drop-oldest ring buffer
    /// (assigned after [`MetricsSnapshot::new`]; zero when tracing is
    /// off or the buffer never wrapped).
    pub trace_dropped: u64,
    /// Namespaced supplementary counters (the supervisor contributes
    /// `os.*` keys: gate transits, ACL denials, per-process crossings).
    pub extra: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from the recorder plus execution totals and
    /// cache statistics gathered by the machine.
    pub fn new(
        metrics: &Metrics,
        instructions: u64,
        cycles: u64,
        sdw_cache: SdwCacheStats,
        fastpath: FastPathStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: metrics.is_enabled(),
            instructions,
            cycles,
            crossings: Crossing::ALL
                .iter()
                .map(|k| (k.key(), metrics.crossings.count(*k)))
                .collect(),
            crossing_matrix: metrics.crossings.matrix,
            ring_changes: metrics.crossings.total_ring_changes(),
            faults_by_vector: (0..NUM_VECTORS as u32)
                .map(|v| (vector_key(v), metrics.faults.count_vector(v)))
                .collect(),
            faults_by_ring: metrics.faults.by_ring,
            faults_total: metrics.faults.total(),
            opcode_classes: OpClass::ALL
                .iter()
                .map(|c| (c.key(), metrics.opclasses.count(*c)))
                .collect(),
            instr_by_ring: metrics.instr_by_ring,
            call_cycles: HistogramSnapshot::of(&metrics.call_cycles),
            return_cycles: HistogramSnapshot::of(&metrics.return_cycles),
            ea_depth: HistogramSnapshot::of(&metrics.ea_depth),
            tpr_maximisations: metrics.tpr_maximisations,
            sdw_hit_refs: HistogramSnapshot::of(&metrics.sdw_hit_refs),
            sdw_miss_refs: HistogramSnapshot::of(&metrics.sdw_miss_refs),
            heatmap: metrics.heatmap.iter().map(|(s, h)| (s, *h)).collect(),
            sdw_cache,
            fastpath,
            sched: SchedStats::default(),
            prof: ProfStats::default(),
            trace_dropped: 0,
            extra: Vec::new(),
        }
    }

    /// Folds `other` into this snapshot for fleet roll-up: every
    /// counter sums, histograms and heatmaps merge, and the derived
    /// ratios/percentiles are recomputed over the combined data — so
    /// merging the snapshots of two disjoint runs equals the snapshot
    /// of their concatenation for every counter.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        fn merge_keyed<K: PartialEq + Clone>(mine: &mut Vec<(K, u64)>, theirs: &[(K, u64)]) {
            for (key, v) in theirs {
                match mine.iter_mut().find(|(k, _)| k == key) {
                    Some((_, have)) => *have += v,
                    None => mine.push((key.clone(), *v)),
                }
            }
        }
        self.enabled |= other.enabled;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        merge_keyed(&mut self.crossings, &other.crossings);
        for (mine, theirs) in self
            .crossing_matrix
            .iter_mut()
            .zip(other.crossing_matrix.iter())
        {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
        self.ring_changes += other.ring_changes;
        merge_keyed(&mut self.faults_by_vector, &other.faults_by_vector);
        for (m, t) in self.faults_by_ring.iter_mut().zip(other.faults_by_ring) {
            *m += t;
        }
        self.faults_total += other.faults_total;
        merge_keyed(&mut self.opcode_classes, &other.opcode_classes);
        for (m, t) in self.instr_by_ring.iter_mut().zip(other.instr_by_ring) {
            *m += t;
        }
        self.call_cycles.merge(&other.call_cycles);
        self.return_cycles.merge(&other.return_cycles);
        self.ea_depth.merge(&other.ea_depth);
        self.tpr_maximisations += other.tpr_maximisations;
        self.sdw_hit_refs.merge(&other.sdw_hit_refs);
        self.sdw_miss_refs.merge(&other.sdw_miss_refs);
        for (segno, theirs) in &other.heatmap {
            match self.heatmap.iter_mut().find(|(s, _)| s == segno) {
                Some((_, mine)) => {
                    mine.reads += theirs.reads;
                    mine.writes += theirs.writes;
                    mine.executes += theirs.executes;
                    mine.violations += theirs.violations;
                }
                None => self.heatmap.push((*segno, *theirs)),
            }
        }
        self.heatmap.sort_by_key(|(segno, _)| *segno);
        self.sdw_cache.hits += other.sdw_cache.hits;
        self.sdw_cache.misses += other.sdw_cache.misses;
        self.sdw_cache.flushes += other.sdw_cache.flushes;
        self.sdw_cache.invalidations += other.sdw_cache.invalidations;
        self.fastpath.fast_instructions += other.fastpath.fast_instructions;
        self.fastpath.slow_instructions += other.fastpath.slow_instructions;
        self.fastpath.tlb_hits += other.fastpath.tlb_hits;
        self.fastpath.tlb_misses += other.fastpath.tlb_misses;
        self.fastpath.tlb_installs += other.fastpath.tlb_installs;
        self.fastpath.tlb_invalidations += other.fastpath.tlb_invalidations;
        self.fastpath.tlb_flushes += other.fastpath.tlb_flushes;
        self.fastpath.icache_hits += other.fastpath.icache_hits;
        self.fastpath.icache_misses += other.fastpath.icache_misses;
        self.sched.merge(&other.sched);
        self.prof.merge(&other.prof);
        self.trace_dropped += other.trace_dropped;
        merge_keyed(&mut self.extra, &other.extra);
        // Canonicalize the supplementary-counter order. Unmerged
        // snapshots list extras in export order; a merge may interleave
        // keys from snapshots whose processes differ, and the append
        // order would then depend on the fold shape. Fleet aggregation
        // folds thousands of snapshots and demands exact associativity
        // — sorted keys with summed values are the same bytes whichever
        // way the fold tree is shaped.
        self.extra.sort_by(|(a, _), (b, _)| a.cmp(b));
    }

    /// Appends a namespaced supplementary counter (e.g.
    /// `os.gate_calls_hcs`).
    pub fn push_extra(&mut self, key: impl Into<String>, value: u64) {
        self.extra.push((key.into(), value));
    }

    /// The value of a supplementary counter by its key, if present
    /// (e.g. `chaos.recovered` when chaos injection is enabled).
    pub fn extra(&self, key: &str) -> Option<u64> {
        self.extra.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The value of a crossing counter by its key, if present.
    pub fn crossing(&self, key: &str) -> Option<u64> {
        self.crossings
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Serializes the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));

        out.push_str("  \"crossings\": {\n");
        for (key, v) in &self.crossings {
            out.push_str(&format!("    \"{key}\": {v},\n"));
        }
        out.push_str(&format!("    \"ring_changes\": {},\n", self.ring_changes));
        out.push_str("    \"matrix\": ");
        out.push_str(&json_matrix(&self.crossing_matrix));
        out.push_str("\n  },\n");

        out.push_str("  \"faults\": {\n");
        out.push_str(&format!("    \"total\": {},\n", self.faults_total));
        out.push_str("    \"by_vector\": {");
        out.push_str(
            &self
                .faults_by_vector
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        out.push_str(&format!(
            "    \"by_ring\": {}\n  }},\n",
            json_u64_array(&self.faults_by_ring)
        ));

        out.push_str("  \"opcode_classes\": {");
        out.push_str(
            &self
                .opcode_classes
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"instructions_by_ring\": {},\n",
            json_u64_array(&self.instr_by_ring)
        ));

        out.push_str("  \"histograms\": {\n");
        let hists = [
            ("call_cycles", &self.call_cycles),
            ("return_cycles", &self.return_cycles),
            ("ea_indirect_depth", &self.ea_depth),
            ("sdw_hit_extra_refs", &self.sdw_hit_refs),
            ("sdw_miss_extra_refs", &self.sdw_miss_refs),
        ];
        for (i, (key, h)) in hists.iter().enumerate() {
            let sep = if i + 1 == hists.len() { "" } else { "," };
            out.push_str(&format!("    \"{key}\": {}{sep}\n", json_histogram(h)));
        }
        out.push_str("  },\n");

        out.push_str(&format!(
            "  \"ea\": {{\"tpr_maximisations\": {}}},\n",
            self.tpr_maximisations
        ));

        out.push_str("  \"heatmap\": [\n");
        for (i, (segno, h)) in self.heatmap.iter().enumerate() {
            let sep = if i + 1 == self.heatmap.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"segno\": {segno}, \"reads\": {}, \"writes\": {}, \
                 \"executes\": {}, \"violations\": {}}}{sep}\n",
                h.reads, h.writes, h.executes, h.violations
            ));
        }
        out.push_str("  ],\n");

        out.push_str(&format!(
            "  \"sdw_cache\": {{\"hits\": {}, \"misses\": {}, \"flushes\": {}, \
             \"invalidations\": {}, \"hit_ratio\": {}}},\n",
            self.sdw_cache.hits,
            self.sdw_cache.misses,
            self.sdw_cache.flushes,
            self.sdw_cache.invalidations,
            json_f64(self.sdw_cache.hit_ratio())
        ));

        out.push_str(&format!(
            "  \"fastpath\": {{\"fast_instructions\": {}, \"slow_instructions\": {}, \
             \"fast_ratio\": {}, \"tlb\": {{\"hits\": {}, \"misses\": {}, \"installs\": {}, \
             \"invalidations\": {}, \"flushes\": {}}}, \"icache\": {{\"hits\": {}, \
             \"misses\": {}}}}},\n",
            self.fastpath.fast_instructions,
            self.fastpath.slow_instructions,
            json_f64(self.fastpath.fast_ratio()),
            self.fastpath.tlb_hits,
            self.fastpath.tlb_misses,
            self.fastpath.tlb_installs,
            self.fastpath.tlb_invalidations,
            self.fastpath.tlb_flushes,
            self.fastpath.icache_hits,
            self.fastpath.icache_misses,
        ));

        out.push_str(&format!(
            "  \"scheduler\": {{\"context_switches\": {}, \"preemptions\": {}, \
             \"page_faults\": {{\"minor\": {}, \"major\": {}}}, \"evictions\": {}, \
             \"blocks\": {{\"io\": {}, \"page\": {}}}, \"idle_cycles\": {}}},\n",
            self.sched.context_switches,
            self.sched.preemptions,
            self.sched.page_faults_minor,
            self.sched.page_faults_major,
            self.sched.evictions,
            self.sched.io_blocks,
            self.sched.page_blocks,
            self.sched.idle_cycles,
        ));

        out.push_str(&format!(
            "  \"prof\": {{\"samples\": {}, \"sample_every\": {}, \
             \"timeseries_points\": {}, \"timeseries_every\": {}}},\n",
            self.prof.samples,
            self.prof.sample_every,
            self.prof.timeseries_points,
            self.prof.timeseries_every,
        ));

        out.push_str(&format!(
            "  \"trace\": {{\"dropped\": {}}},\n",
            self.trace_dropped
        ));

        out.push_str("  \"extra\": {");
        out.push_str(
            &self
                .extra
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Serializes the snapshot as flat `key,value` CSV rows using the
    /// same dotted keys as the JSON paths.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<(String, String)> = vec![
            ("enabled".into(), u64::from(self.enabled).to_string()),
            ("instructions".into(), self.instructions.to_string()),
            ("cycles".into(), self.cycles.to_string()),
        ];
        for (key, v) in &self.crossings {
            rows.push((format!("crossings.{key}"), v.to_string()));
        }
        rows.push((
            "crossings.ring_changes".into(),
            self.ring_changes.to_string(),
        ));
        for (from, row) in self.crossing_matrix.iter().enumerate() {
            for (to, v) in row.iter().enumerate() {
                if *v > 0 {
                    rows.push((format!("crossings.matrix.{from}.{to}"), v.to_string()));
                }
            }
        }
        rows.push(("faults.total".into(), self.faults_total.to_string()));
        for (key, v) in &self.faults_by_vector {
            rows.push((format!("faults.by_vector.{key}"), v.to_string()));
        }
        for (ring, v) in self.faults_by_ring.iter().enumerate() {
            rows.push((format!("faults.by_ring.{ring}"), v.to_string()));
        }
        for (key, v) in &self.opcode_classes {
            rows.push((format!("opcode_classes.{key}"), v.to_string()));
        }
        for (ring, v) in self.instr_by_ring.iter().enumerate() {
            rows.push((format!("instructions_by_ring.{ring}"), v.to_string()));
        }
        for (key, h) in [
            ("call_cycles", &self.call_cycles),
            ("return_cycles", &self.return_cycles),
            ("ea_indirect_depth", &self.ea_depth),
            ("sdw_hit_extra_refs", &self.sdw_hit_refs),
            ("sdw_miss_extra_refs", &self.sdw_miss_refs),
        ] {
            rows.push((format!("histograms.{key}.count"), h.count.to_string()));
            rows.push((format!("histograms.{key}.sum"), h.sum.to_string()));
            rows.push((format!("histograms.{key}.min"), h.min.to_string()));
            rows.push((format!("histograms.{key}.max"), h.max.to_string()));
            rows.push((format!("histograms.{key}.mean"), format!("{:.3}", h.mean)));
            rows.push((
                format!("histograms.{key}.p50"),
                h.percentile(0.50).to_string(),
            ));
            rows.push((
                format!("histograms.{key}.p99"),
                h.percentile(0.99).to_string(),
            ));
        }
        rows.push((
            "ea.tpr_maximisations".into(),
            self.tpr_maximisations.to_string(),
        ));
        for (segno, h) in &self.heatmap {
            rows.push((format!("heatmap.{segno}.reads"), h.reads.to_string()));
            rows.push((format!("heatmap.{segno}.writes"), h.writes.to_string()));
            rows.push((format!("heatmap.{segno}.executes"), h.executes.to_string()));
            rows.push((
                format!("heatmap.{segno}.violations"),
                h.violations.to_string(),
            ));
        }
        rows.push(("sdw_cache.hits".into(), self.sdw_cache.hits.to_string()));
        rows.push(("sdw_cache.misses".into(), self.sdw_cache.misses.to_string()));
        rows.push((
            "sdw_cache.flushes".into(),
            self.sdw_cache.flushes.to_string(),
        ));
        rows.push((
            "sdw_cache.invalidations".into(),
            self.sdw_cache.invalidations.to_string(),
        ));
        rows.push((
            "sdw_cache.hit_ratio".into(),
            format!("{:.3}", self.sdw_cache.hit_ratio()),
        ));
        for (key, v) in [
            ("fast_instructions", self.fastpath.fast_instructions),
            ("slow_instructions", self.fastpath.slow_instructions),
            ("tlb.hits", self.fastpath.tlb_hits),
            ("tlb.misses", self.fastpath.tlb_misses),
            ("tlb.installs", self.fastpath.tlb_installs),
            ("tlb.invalidations", self.fastpath.tlb_invalidations),
            ("tlb.flushes", self.fastpath.tlb_flushes),
            ("icache.hits", self.fastpath.icache_hits),
            ("icache.misses", self.fastpath.icache_misses),
        ] {
            rows.push((format!("fastpath.{key}"), v.to_string()));
        }
        rows.push((
            "fastpath.fast_ratio".into(),
            format!("{:.3}", self.fastpath.fast_ratio()),
        ));
        for (key, v) in [
            ("context_switches", self.sched.context_switches),
            ("preemptions", self.sched.preemptions),
            ("page_faults.minor", self.sched.page_faults_minor),
            ("page_faults.major", self.sched.page_faults_major),
            ("evictions", self.sched.evictions),
            ("blocks.io", self.sched.io_blocks),
            ("blocks.page", self.sched.page_blocks),
            ("idle_cycles", self.sched.idle_cycles),
        ] {
            rows.push((format!("scheduler.{key}"), v.to_string()));
        }
        for (key, v) in [
            ("samples", self.prof.samples),
            ("sample_every", self.prof.sample_every),
            ("timeseries_points", self.prof.timeseries_points),
            ("timeseries_every", self.prof.timeseries_every),
        ] {
            rows.push((format!("prof.{key}"), v.to_string()));
        }
        rows.push(("trace.dropped".into(), self.trace_dropped.to_string()));
        for (k, v) in &self.extra {
            rows.push((format!("extra.{k}"), v.to_string()));
        }

        let mut out = String::from("key,value\n");
        for (k, v) in rows {
            out.push_str(&k);
            out.push(',');
            out.push_str(&v);
            out.push('\n');
        }
        out
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    format!(
        "[{}]",
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn json_matrix(m: &[[u64; NUM_RINGS]; NUM_RINGS]) -> String {
    format!(
        "[{}]",
        m.iter()
            .map(|row| json_u64_array(row))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let buckets = h
        .buckets
        .iter()
        .map(|(lo, hi, c)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
         \"p50\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        json_f64(h.mean),
        h.percentile(0.50),
        h.percentile(0.99)
    )
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crossing, EventSink, OpClass};
    use ring_core::access::AccessMode;
    use ring_core::ring::Ring;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = Metrics::enabled();
        m.instruction(Ring::R4, OpClass::Read);
        m.crossing(Crossing::CallDown, Ring::R4, Ring::R1);
        m.crossing(Crossing::ReturnUp, Ring::R1, Ring::R4);
        m.fault(&ring_core::access::Fault::TimerRunout, Ring::R4);
        m.access(10, AccessMode::Execute);
        m.sdw_lookup(false, 2);
        m.call_cycles(9);
        m.ea_formed(1, false);
        let mut s = MetricsSnapshot::new(
            &m,
            100,
            700,
            SdwCacheStats {
                hits: 90,
                misses: 10,
                flushes: 1,
                invalidations: 2,
            },
            FastPathStats {
                fast_instructions: 80,
                slow_instructions: 20,
                tlb_hits: 150,
                tlb_misses: 20,
                tlb_installs: 12,
                tlb_invalidations: 3,
                tlb_flushes: 1,
                icache_hits: 75,
                icache_misses: 5,
            },
        );
        s.sched = SchedStats {
            context_switches: 7,
            preemptions: 4,
            page_faults_minor: 12,
            page_faults_major: 3,
            evictions: 2,
            io_blocks: 1,
            page_blocks: 3,
            idle_cycles: 640,
        };
        s.prof = ProfStats {
            samples: 42,
            sample_every: 1000,
            timeseries_points: 6,
            timeseries_every: 5000,
        };
        s.trace_dropped = 11;
        s.push_extra("os.gate_calls_hcs", 5);
        s
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_snapshot().to_json();
        for needle in [
            "\"crossings\"",
            "\"call_down\": 1",
            "\"return_up\": 1",
            "\"matrix\"",
            "\"faults\"",
            "\"timer_runout\": 1",
            "\"opcode_classes\"",
            "\"histograms\"",
            "\"call_cycles\"",
            "\"heatmap\"",
            "\"segno\": 10",
            "\"sdw_cache\"",
            "\"hits\": 90",
            "\"fastpath\"",
            "\"fast_instructions\": 80",
            "\"icache\"",
            "\"os.gate_calls_hcs\": 5",
            "\"tpr_maximisations\"",
            "\"scheduler\"",
            "\"context_switches\": 7",
            "\"minor\": 12",
            "\"evictions\": 2",
            "\"prof\"",
            "\"samples\": 42",
            "\"trace\"",
            "\"dropped\": 11",
            "\"p50\"",
            "\"p99\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = sample_snapshot().to_json();
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced brackets:\n{json}");
        // No trailing commas before a closing bracket — the usual
        // hand-rolled-JSON failure.
        assert!(!json.contains(",\n}") && !json.contains(",\n]"), "{json}");
        assert!(!json.contains(", }") && !json.contains(", ]"), "{json}");
    }

    #[test]
    fn csv_is_flat_key_value() {
        let csv = sample_snapshot().to_csv();
        assert!(csv.starts_with("key,value\n"));
        assert!(csv.contains("crossings.call_down,1\n"));
        assert!(csv.contains("sdw_cache.hits,90\n"));
        assert!(csv.contains("fastpath.fast_instructions,80\n"));
        assert!(csv.contains("fastpath.tlb.hits,150\n"));
        assert!(csv.contains("scheduler.context_switches,7\n"));
        assert!(csv.contains("scheduler.page_faults.major,3\n"));
        assert!(csv.contains("prof.samples,42\n"));
        assert!(csv.contains("prof.sample_every,1000\n"));
        assert!(csv.contains("trace.dropped,11\n"));
        assert!(csv.contains("histograms.call_cycles.p50,"));
        assert!(csv.contains("histograms.call_cycles.p99,"));
        assert!(csv.contains("extra.os.gate_calls_hcs,5\n"));
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), 1, "bad row: {line}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn crossing_lookup_by_key() {
        let s = sample_snapshot();
        assert_eq!(s.crossing("call_down"), Some(1));
        assert_eq!(s.crossing("upward_call_trap"), Some(0));
        assert_eq!(s.crossing("nonsense"), None);
    }

    /// Builds a histogram snapshot straight from observations.
    fn hist_of(values: &[u64]) -> HistogramSnapshot {
        let mut h = CycleHistogram::default();
        for v in values {
            h.record(*v);
        }
        HistogramSnapshot::of(&h)
    }

    #[test]
    fn percentile_walks_buckets_and_clamps_to_observed_range() {
        let h = hist_of(&[0; 0]);
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        let h = hist_of(&[7]);
        assert_eq!(h.percentile(0.5), 7, "single value clamps to max");
        assert_eq!(h.percentile(0.99), 7);
        // 99 small values and one huge one: p50 stays in the small
        // bucket, p99 must land on (the bucket holding) the outlier.
        let mut vals = vec![3u64; 99];
        vals.push(1_000_000);
        let h = hist_of(&vals);
        assert_eq!(h.percentile(0.50), 3);
        assert_eq!(h.percentile(0.99), 3);
        assert_eq!(h.percentile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let (a_vals, b_vals) = ([1u64, 5, 9, 130], [2u64, 9, 4000]);
        let mut merged = hist_of(&a_vals);
        merged.merge(&hist_of(&b_vals));
        let both = hist_of(&[&a_vals[..], &b_vals[..]].concat());
        assert_eq!(merged.count, both.count);
        assert_eq!(merged.sum, both.sum);
        assert_eq!(merged.min, both.min);
        assert_eq!(merged.max, both.max);
        assert_eq!(merged.buckets, both.buckets);
        assert!((merged.mean - both.mean).abs() < 1e-9);
        for p in [0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn histogram_merge_with_empty_is_identity_both_ways() {
        let mut a = hist_of(&[4, 4, 17]);
        let before = a.clone();
        a.merge(&hist_of(&[]));
        assert_eq!(a.buckets, before.buckets);
        assert_eq!(
            (a.count, a.min, a.max),
            (before.count, before.min, before.max)
        );
        let mut empty = hist_of(&[]);
        empty.merge(&before);
        assert_eq!(empty.buckets, before.buckets);
        assert_eq!(
            (empty.count, empty.min, empty.max),
            (before.count, before.min, before.max)
        );
    }

    #[test]
    fn snapshot_merge_sums_every_counter() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.instructions, 2 * a.instructions);
        assert_eq!(merged.cycles, 2 * a.cycles);
        assert_eq!(merged.crossing("call_down"), Some(2));
        assert_eq!(merged.crossing_matrix[4][1], 2 * a.crossing_matrix[4][1]);
        assert_eq!(merged.ring_changes, 2 * a.ring_changes);
        assert_eq!(merged.faults_total, 2 * a.faults_total);
        assert_eq!(merged.call_cycles.count, 2 * a.call_cycles.count);
        assert_eq!(merged.sdw_cache.hits, 2 * a.sdw_cache.hits);
        assert_eq!(merged.fastpath.fast_instructions, 160);
        assert_eq!(merged.sched.context_switches, 14);
        assert_eq!(merged.prof.samples, 84);
        assert_eq!(
            merged.prof.sample_every, 1000,
            "period is config, not a counter"
        );
        assert_eq!(merged.trace_dropped, 22);
        assert_eq!(
            merged.extra,
            vec![("os.gate_calls_hcs".to_string(), 10)],
            "extras merge by key"
        );
        let heat = merged.heatmap.iter().find(|(s, _)| *s == 10).unwrap().1;
        assert_eq!(heat.executes, 2 * a.heatmap[0].1.executes);
    }

    #[test]
    fn snapshot_merge_unions_disjoint_keys() {
        let mut a = sample_snapshot();
        let mut b = sample_snapshot();
        a.push_extra("os.only_in_a", 3);
        b.push_extra("os.only_in_b", 4);
        b.heatmap.push((
            99,
            SegHeat {
                reads: 1,
                writes: 2,
                executes: 3,
                violations: 0,
            },
        ));
        let mut merged = a.clone();
        merged.merge(&b);
        let extra = |key: &str| merged.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        assert_eq!(extra("os.only_in_a"), Some(3));
        assert_eq!(extra("os.only_in_b"), Some(4));
        assert!(merged
            .heatmap
            .iter()
            .any(|(s, h)| *s == 99 && h.executes == 3));
        let segnos: Vec<u32> = merged.heatmap.iter().map(|(s, _)| *s).collect();
        let mut sorted = segnos.clone();
        sorted.sort_unstable();
        assert_eq!(segnos, sorted, "heatmap stays ascending after merge");
    }

    #[test]
    fn snapshot_merge_empty_into_populated_keeps_bytes_meaningful() {
        // Folding a disabled/empty snapshot in (a machine whose metrics
        // never enabled, or the all-default fold seed) must not disturb
        // any populated section.
        let a = sample_snapshot();
        let mut merged = a.clone();
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged.to_json(), a.to_json());
    }

    #[test]
    fn snapshot_merge_populated_into_empty_seeds_the_fold() {
        // The fleet fold starts from MetricsSnapshot::default() — the
        // first real snapshot folded in must come through exactly,
        // modulo the canonical (sorted) extras order.
        let a = sample_snapshot();
        let mut merged = MetricsSnapshot::default();
        merged.merge(&a);
        let mut canonical = a.clone();
        canonical.extra.sort_by(|(x, _), (y, _)| x.cmp(y));
        assert_eq!(merged.to_json(), canonical.to_json());
        assert!(merged.enabled);
        assert_eq!(merged.instructions, a.instructions);
        assert_eq!(merged.call_cycles.buckets, a.call_cycles.buckets);
    }

    #[test]
    fn snapshot_merge_extras_collide_by_key_and_sort_canonically() {
        let mut a = sample_snapshot();
        let mut b = sample_snapshot();
        // Insert in opposite orders so append-order would diverge.
        a.push_extra("os.zeta", 1);
        a.push_extra("os.alpha", 2);
        b.push_extra("os.alpha", 5);
        b.push_extra("os.zeta", 7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.extra, ba.extra, "merged extras are order-canonical");
        let keys: Vec<&str> = ab.extra.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "extras sorted by key after merge");
        let get = |key: &str| ab.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        assert_eq!(get("os.alpha"), Some(7), "colliding keys sum");
        assert_eq!(get("os.zeta"), Some(8), "colliding keys sum");
    }

    #[test]
    fn snapshot_merge_is_exactly_associative() {
        // The fleet folds thousands of snapshots; the fold tree's shape
        // must never show in the bytes. Build three snapshots with
        // overlapping-but-distinct extras and heatmaps and compare
        // (a⊕b)⊕c against a⊕(b⊕c) at the JSON byte level.
        let mut a = sample_snapshot();
        let mut b = sample_snapshot();
        let mut c = sample_snapshot();
        a.push_extra("os.proc.0.gate_calls", 3);
        b.push_extra("os.proc.1.gate_calls", 4);
        b.push_extra("os.proc.0.gate_calls", 1);
        c.push_extra("os.proc.2.gate_calls", 9);
        c.heatmap.push((
            77,
            SegHeat {
                reads: 5,
                writes: 0,
                executes: 0,
                violations: 1,
            },
        ));
        b.call_cycles.merge(&hist_of(&[3, 3, 700]));
        c.prof = ProfStats::default();

        let mut left = MetricsSnapshot::default();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = MetricsSnapshot::default();
        right.merge(&a);
        right.merge(&bc);

        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.to_csv(), right.to_csv());
    }

    #[test]
    fn histogram_percentiles_clamp_to_observed_range_after_merge() {
        let mut h = hist_of(&[100]);
        h.merge(&hist_of(&[3]));
        assert!(h.percentile(0.0) >= h.min);
        assert!(h.percentile(1.0) <= h.max);
        assert_eq!(h.percentile(1.0), 100);
        let empty = hist_of(&[]);
        assert_eq!(empty.percentile(0.5), 0, "empty histogram reports zero");
    }
}
