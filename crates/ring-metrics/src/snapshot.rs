//! Export-ready snapshots: the merged view of machine metrics,
//! SDW-cache statistics and supervisor counters, with JSON and CSV
//! serializers (hand-rolled — the simulator has no serde dependency).
//!
//! The JSON schema is documented in `docs/OBSERVABILITY.md` at the
//! workspace root; the CSV form is a flat `key,value` table using the
//! same dotted keys as the JSON paths.

use crate::counters::{vector_key, Crossing, OpClass, NUM_RINGS, NUM_VECTORS};
use crate::heatmap::SegHeat;
use crate::hist::CycleHistogram;
use crate::Metrics;

/// SDW associative-memory statistics, mirrored here so consumers of a
/// snapshot need no `ring-segmem` dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SdwCacheStats {
    /// Lookups satisfied by the cache.
    pub hits: u64,
    /// Lookups that walked the descriptor segment.
    pub misses: u64,
    /// Full flushes (DBR loads).
    pub flushes: u64,
    /// Single-entry invalidations (supervisor SDW updates).
    pub invalidations: u64,
}

impl SdwCacheStats {
    /// Hit ratio in `[0, 1]`; zero when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fast-path engine statistics (the ring-checked translation lookaside
/// plus the predecoded instruction cache), mirrored here so snapshot
/// consumers need no `ring-segmem`/`ring-cpu` dependency. Purely
/// observational: the fast path changes no architectural counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Instructions committed by the fast-path engine.
    pub fast_instructions: u64,
    /// Instructions executed by the reference interpreter (including
    /// all instructions when the fast path is disabled).
    pub slow_instructions: u64,
    /// Committed fast-path translations.
    pub tlb_hits: u64,
    /// Fast-path attempts abandoned to the slow path.
    pub tlb_misses: u64,
    /// Lookaside entries installed.
    pub tlb_installs: u64,
    /// Per-segment lookaside invalidation sweeps.
    pub tlb_invalidations: u64,
    /// Full lookaside flushes (DBR loads).
    pub tlb_flushes: u64,
    /// Instruction fetches served predecoded.
    pub icache_hits: u64,
    /// Instruction fetches that decoded afresh.
    pub icache_misses: u64,
}

impl FastPathStats {
    /// Fraction of instructions that committed on the fast path, in
    /// `[0, 1]`; zero when nothing ran.
    pub fn fast_ratio(&self) -> f64 {
        let total = self.fast_instructions + self.slow_instructions;
        if total == 0 {
            0.0
        } else {
            self.fast_instructions as f64 / total as f64
        }
    }
}

/// Scheduler and demand-paging statistics, mirrored here so snapshot
/// consumers need no `ring-sched` dependency. All-zero in
/// single-process runs (the kernel without a frame budget never
/// context-switches for paging).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Dispatches that changed the running process (DBR switches).
    pub context_switches: u64,
    /// Timer runouts that preempted a still-runnable process.
    pub preemptions: u64,
    /// Page faults filled from the segment's file image (first touch).
    pub page_faults_minor: u64,
    /// Page faults filled from the backing store (after an eviction).
    pub page_faults_major: u64,
    /// Resident pages evicted by the CLOCK hand.
    pub evictions: u64,
    /// Times a process blocked waiting for an I/O completion.
    pub io_blocks: u64,
    /// Times a process blocked waiting for a page-in.
    pub page_blocks: u64,
    /// Cycles the processor idled with every process blocked.
    pub idle_cycles: u64,
}

impl SchedStats {
    /// Total page faults, both classes.
    pub fn page_faults(&self) -> u64 {
        self.page_faults_minor + self.page_faults_major
    }
}

/// A bucketed histogram flattened for export.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &CycleHistogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            buckets: h.nonzero_buckets().collect(),
        }
    }
}

/// A complete, self-contained picture of everything the observability
/// layer recorded, plus the execution totals it is reported against.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Whether the metrics layer was enabled when the snapshot was taken
    /// (a disabled run exports structure with all-zero counters).
    pub enabled: bool,
    /// Instructions completed by the machine.
    pub instructions: u64,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Per-kind crossing counts, in [`Crossing::ALL`] order.
    pub crossings: Vec<(&'static str, u64)>,
    /// `matrix[from][to]` ring-transition counts.
    pub crossing_matrix: [[u64; NUM_RINGS]; NUM_RINGS],
    /// Total events that changed the ring of execution.
    pub ring_changes: u64,
    /// Fault counts by vector name, in vector order.
    pub faults_by_vector: Vec<(&'static str, u64)>,
    /// Fault counts by faulting ring.
    pub faults_by_ring: [u64; NUM_RINGS],
    /// Total faults.
    pub faults_total: u64,
    /// Instruction counts by operand class, in [`OpClass::ALL`] order.
    pub opcode_classes: Vec<(&'static str, u64)>,
    /// Instruction counts by ring of execution.
    pub instr_by_ring: [u64; NUM_RINGS],
    /// CALL-path cycle costs.
    pub call_cycles: HistogramSnapshot,
    /// RETURN-path cycle costs.
    pub return_cycles: HistogramSnapshot,
    /// Effective-address indirect-chain depths.
    pub ea_depth: HistogramSnapshot,
    /// Fig. 5 TPR ring-maximisation events.
    pub tpr_maximisations: u64,
    /// Extra descriptor-walk references on SDW-cache hits.
    pub sdw_hit_refs: HistogramSnapshot,
    /// Extra descriptor-walk references on SDW-cache misses.
    pub sdw_miss_refs: HistogramSnapshot,
    /// Per-segment access counts, ascending by segment number.
    pub heatmap: Vec<(u32, SegHeat)>,
    /// SDW associative-memory statistics.
    pub sdw_cache: SdwCacheStats,
    /// Fast-path engine statistics.
    pub fastpath: FastPathStats,
    /// Scheduler and demand-paging statistics (all-zero outside
    /// multiprogrammed runs; assigned by the kernel after
    /// [`MetricsSnapshot::new`], which keeps its signature stable).
    pub sched: SchedStats,
    /// Namespaced supplementary counters (the supervisor contributes
    /// `os.*` keys: gate transits, ACL denials, per-process crossings).
    pub extra: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from the recorder plus execution totals and
    /// cache statistics gathered by the machine.
    pub fn new(
        metrics: &Metrics,
        instructions: u64,
        cycles: u64,
        sdw_cache: SdwCacheStats,
        fastpath: FastPathStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: metrics.is_enabled(),
            instructions,
            cycles,
            crossings: Crossing::ALL
                .iter()
                .map(|k| (k.key(), metrics.crossings.count(*k)))
                .collect(),
            crossing_matrix: metrics.crossings.matrix,
            ring_changes: metrics.crossings.total_ring_changes(),
            faults_by_vector: (0..NUM_VECTORS as u32)
                .map(|v| (vector_key(v), metrics.faults.count_vector(v)))
                .collect(),
            faults_by_ring: metrics.faults.by_ring,
            faults_total: metrics.faults.total(),
            opcode_classes: OpClass::ALL
                .iter()
                .map(|c| (c.key(), metrics.opclasses.count(*c)))
                .collect(),
            instr_by_ring: metrics.instr_by_ring,
            call_cycles: HistogramSnapshot::of(&metrics.call_cycles),
            return_cycles: HistogramSnapshot::of(&metrics.return_cycles),
            ea_depth: HistogramSnapshot::of(&metrics.ea_depth),
            tpr_maximisations: metrics.tpr_maximisations,
            sdw_hit_refs: HistogramSnapshot::of(&metrics.sdw_hit_refs),
            sdw_miss_refs: HistogramSnapshot::of(&metrics.sdw_miss_refs),
            heatmap: metrics.heatmap.iter().map(|(s, h)| (s, *h)).collect(),
            sdw_cache,
            fastpath,
            sched: SchedStats::default(),
            extra: Vec::new(),
        }
    }

    /// Appends a namespaced supplementary counter (e.g.
    /// `os.gate_calls_hcs`).
    pub fn push_extra(&mut self, key: impl Into<String>, value: u64) {
        self.extra.push((key.into(), value));
    }

    /// The value of a crossing counter by its key, if present.
    pub fn crossing(&self, key: &str) -> Option<u64> {
        self.crossings
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Serializes the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));

        out.push_str("  \"crossings\": {\n");
        for (key, v) in &self.crossings {
            out.push_str(&format!("    \"{key}\": {v},\n"));
        }
        out.push_str(&format!("    \"ring_changes\": {},\n", self.ring_changes));
        out.push_str("    \"matrix\": ");
        out.push_str(&json_matrix(&self.crossing_matrix));
        out.push_str("\n  },\n");

        out.push_str("  \"faults\": {\n");
        out.push_str(&format!("    \"total\": {},\n", self.faults_total));
        out.push_str("    \"by_vector\": {");
        out.push_str(
            &self
                .faults_by_vector
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        out.push_str(&format!(
            "    \"by_ring\": {}\n  }},\n",
            json_u64_array(&self.faults_by_ring)
        ));

        out.push_str("  \"opcode_classes\": {");
        out.push_str(
            &self
                .opcode_classes
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"instructions_by_ring\": {},\n",
            json_u64_array(&self.instr_by_ring)
        ));

        out.push_str("  \"histograms\": {\n");
        let hists = [
            ("call_cycles", &self.call_cycles),
            ("return_cycles", &self.return_cycles),
            ("ea_indirect_depth", &self.ea_depth),
            ("sdw_hit_extra_refs", &self.sdw_hit_refs),
            ("sdw_miss_extra_refs", &self.sdw_miss_refs),
        ];
        for (i, (key, h)) in hists.iter().enumerate() {
            let sep = if i + 1 == hists.len() { "" } else { "," };
            out.push_str(&format!("    \"{key}\": {}{sep}\n", json_histogram(h)));
        }
        out.push_str("  },\n");

        out.push_str(&format!(
            "  \"ea\": {{\"tpr_maximisations\": {}}},\n",
            self.tpr_maximisations
        ));

        out.push_str("  \"heatmap\": [\n");
        for (i, (segno, h)) in self.heatmap.iter().enumerate() {
            let sep = if i + 1 == self.heatmap.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"segno\": {segno}, \"reads\": {}, \"writes\": {}, \
                 \"executes\": {}, \"violations\": {}}}{sep}\n",
                h.reads, h.writes, h.executes, h.violations
            ));
        }
        out.push_str("  ],\n");

        out.push_str(&format!(
            "  \"sdw_cache\": {{\"hits\": {}, \"misses\": {}, \"flushes\": {}, \
             \"invalidations\": {}, \"hit_ratio\": {}}},\n",
            self.sdw_cache.hits,
            self.sdw_cache.misses,
            self.sdw_cache.flushes,
            self.sdw_cache.invalidations,
            json_f64(self.sdw_cache.hit_ratio())
        ));

        out.push_str(&format!(
            "  \"fastpath\": {{\"fast_instructions\": {}, \"slow_instructions\": {}, \
             \"fast_ratio\": {}, \"tlb\": {{\"hits\": {}, \"misses\": {}, \"installs\": {}, \
             \"invalidations\": {}, \"flushes\": {}}}, \"icache\": {{\"hits\": {}, \
             \"misses\": {}}}}},\n",
            self.fastpath.fast_instructions,
            self.fastpath.slow_instructions,
            json_f64(self.fastpath.fast_ratio()),
            self.fastpath.tlb_hits,
            self.fastpath.tlb_misses,
            self.fastpath.tlb_installs,
            self.fastpath.tlb_invalidations,
            self.fastpath.tlb_flushes,
            self.fastpath.icache_hits,
            self.fastpath.icache_misses,
        ));

        out.push_str(&format!(
            "  \"scheduler\": {{\"context_switches\": {}, \"preemptions\": {}, \
             \"page_faults\": {{\"minor\": {}, \"major\": {}}}, \"evictions\": {}, \
             \"blocks\": {{\"io\": {}, \"page\": {}}}, \"idle_cycles\": {}}},\n",
            self.sched.context_switches,
            self.sched.preemptions,
            self.sched.page_faults_minor,
            self.sched.page_faults_major,
            self.sched.evictions,
            self.sched.io_blocks,
            self.sched.page_blocks,
            self.sched.idle_cycles,
        ));

        out.push_str("  \"extra\": {");
        out.push_str(
            &self
                .extra
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("}\n}\n");
        out
    }

    /// Serializes the snapshot as flat `key,value` CSV rows using the
    /// same dotted keys as the JSON paths.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<(String, String)> = vec![
            ("enabled".into(), u64::from(self.enabled).to_string()),
            ("instructions".into(), self.instructions.to_string()),
            ("cycles".into(), self.cycles.to_string()),
        ];
        for (key, v) in &self.crossings {
            rows.push((format!("crossings.{key}"), v.to_string()));
        }
        rows.push((
            "crossings.ring_changes".into(),
            self.ring_changes.to_string(),
        ));
        for (from, row) in self.crossing_matrix.iter().enumerate() {
            for (to, v) in row.iter().enumerate() {
                if *v > 0 {
                    rows.push((format!("crossings.matrix.{from}.{to}"), v.to_string()));
                }
            }
        }
        rows.push(("faults.total".into(), self.faults_total.to_string()));
        for (key, v) in &self.faults_by_vector {
            rows.push((format!("faults.by_vector.{key}"), v.to_string()));
        }
        for (ring, v) in self.faults_by_ring.iter().enumerate() {
            rows.push((format!("faults.by_ring.{ring}"), v.to_string()));
        }
        for (key, v) in &self.opcode_classes {
            rows.push((format!("opcode_classes.{key}"), v.to_string()));
        }
        for (ring, v) in self.instr_by_ring.iter().enumerate() {
            rows.push((format!("instructions_by_ring.{ring}"), v.to_string()));
        }
        for (key, h) in [
            ("call_cycles", &self.call_cycles),
            ("return_cycles", &self.return_cycles),
            ("ea_indirect_depth", &self.ea_depth),
            ("sdw_hit_extra_refs", &self.sdw_hit_refs),
            ("sdw_miss_extra_refs", &self.sdw_miss_refs),
        ] {
            rows.push((format!("histograms.{key}.count"), h.count.to_string()));
            rows.push((format!("histograms.{key}.sum"), h.sum.to_string()));
            rows.push((format!("histograms.{key}.min"), h.min.to_string()));
            rows.push((format!("histograms.{key}.max"), h.max.to_string()));
            rows.push((format!("histograms.{key}.mean"), format!("{:.3}", h.mean)));
        }
        rows.push((
            "ea.tpr_maximisations".into(),
            self.tpr_maximisations.to_string(),
        ));
        for (segno, h) in &self.heatmap {
            rows.push((format!("heatmap.{segno}.reads"), h.reads.to_string()));
            rows.push((format!("heatmap.{segno}.writes"), h.writes.to_string()));
            rows.push((format!("heatmap.{segno}.executes"), h.executes.to_string()));
            rows.push((
                format!("heatmap.{segno}.violations"),
                h.violations.to_string(),
            ));
        }
        rows.push(("sdw_cache.hits".into(), self.sdw_cache.hits.to_string()));
        rows.push(("sdw_cache.misses".into(), self.sdw_cache.misses.to_string()));
        rows.push((
            "sdw_cache.flushes".into(),
            self.sdw_cache.flushes.to_string(),
        ));
        rows.push((
            "sdw_cache.invalidations".into(),
            self.sdw_cache.invalidations.to_string(),
        ));
        rows.push((
            "sdw_cache.hit_ratio".into(),
            format!("{:.3}", self.sdw_cache.hit_ratio()),
        ));
        for (key, v) in [
            ("fast_instructions", self.fastpath.fast_instructions),
            ("slow_instructions", self.fastpath.slow_instructions),
            ("tlb.hits", self.fastpath.tlb_hits),
            ("tlb.misses", self.fastpath.tlb_misses),
            ("tlb.installs", self.fastpath.tlb_installs),
            ("tlb.invalidations", self.fastpath.tlb_invalidations),
            ("tlb.flushes", self.fastpath.tlb_flushes),
            ("icache.hits", self.fastpath.icache_hits),
            ("icache.misses", self.fastpath.icache_misses),
        ] {
            rows.push((format!("fastpath.{key}"), v.to_string()));
        }
        rows.push((
            "fastpath.fast_ratio".into(),
            format!("{:.3}", self.fastpath.fast_ratio()),
        ));
        for (key, v) in [
            ("context_switches", self.sched.context_switches),
            ("preemptions", self.sched.preemptions),
            ("page_faults.minor", self.sched.page_faults_minor),
            ("page_faults.major", self.sched.page_faults_major),
            ("evictions", self.sched.evictions),
            ("blocks.io", self.sched.io_blocks),
            ("blocks.page", self.sched.page_blocks),
            ("idle_cycles", self.sched.idle_cycles),
        ] {
            rows.push((format!("scheduler.{key}"), v.to_string()));
        }
        for (k, v) in &self.extra {
            rows.push((format!("extra.{k}"), v.to_string()));
        }

        let mut out = String::from("key,value\n");
        for (k, v) in rows {
            out.push_str(&k);
            out.push(',');
            out.push_str(&v);
            out.push('\n');
        }
        out
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    format!(
        "[{}]",
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn json_matrix(m: &[[u64; NUM_RINGS]; NUM_RINGS]) -> String {
    format!(
        "[{}]",
        m.iter()
            .map(|row| json_u64_array(row))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let buckets = h
        .buckets
        .iter()
        .map(|(lo, hi, c)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
         \"buckets\": [{buckets}]}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        json_f64(h.mean)
    )
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Crossing, EventSink, OpClass};
    use ring_core::access::AccessMode;
    use ring_core::ring::Ring;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = Metrics::enabled();
        m.instruction(Ring::R4, OpClass::Read);
        m.crossing(Crossing::CallDown, Ring::R4, Ring::R1);
        m.crossing(Crossing::ReturnUp, Ring::R1, Ring::R4);
        m.fault(&ring_core::access::Fault::TimerRunout, Ring::R4);
        m.access(10, AccessMode::Execute);
        m.sdw_lookup(false, 2);
        m.call_cycles(9);
        m.ea_formed(1, false);
        let mut s = MetricsSnapshot::new(
            &m,
            100,
            700,
            SdwCacheStats {
                hits: 90,
                misses: 10,
                flushes: 1,
                invalidations: 2,
            },
            FastPathStats {
                fast_instructions: 80,
                slow_instructions: 20,
                tlb_hits: 150,
                tlb_misses: 20,
                tlb_installs: 12,
                tlb_invalidations: 3,
                tlb_flushes: 1,
                icache_hits: 75,
                icache_misses: 5,
            },
        );
        s.sched = SchedStats {
            context_switches: 7,
            preemptions: 4,
            page_faults_minor: 12,
            page_faults_major: 3,
            evictions: 2,
            io_blocks: 1,
            page_blocks: 3,
            idle_cycles: 640,
        };
        s.push_extra("os.gate_calls_hcs", 5);
        s
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_snapshot().to_json();
        for needle in [
            "\"crossings\"",
            "\"call_down\": 1",
            "\"return_up\": 1",
            "\"matrix\"",
            "\"faults\"",
            "\"timer_runout\": 1",
            "\"opcode_classes\"",
            "\"histograms\"",
            "\"call_cycles\"",
            "\"heatmap\"",
            "\"segno\": 10",
            "\"sdw_cache\"",
            "\"hits\": 90",
            "\"fastpath\"",
            "\"fast_instructions\": 80",
            "\"icache\"",
            "\"os.gate_calls_hcs\": 5",
            "\"tpr_maximisations\"",
            "\"scheduler\"",
            "\"context_switches\": 7",
            "\"minor\": 12",
            "\"evictions\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = sample_snapshot().to_json();
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced brackets:\n{json}");
        // No trailing commas before a closing bracket — the usual
        // hand-rolled-JSON failure.
        assert!(!json.contains(",\n}") && !json.contains(",\n]"), "{json}");
        assert!(!json.contains(", }") && !json.contains(", ]"), "{json}");
    }

    #[test]
    fn csv_is_flat_key_value() {
        let csv = sample_snapshot().to_csv();
        assert!(csv.starts_with("key,value\n"));
        assert!(csv.contains("crossings.call_down,1\n"));
        assert!(csv.contains("sdw_cache.hits,90\n"));
        assert!(csv.contains("fastpath.fast_instructions,80\n"));
        assert!(csv.contains("fastpath.tlb.hits,150\n"));
        assert!(csv.contains("scheduler.context_switches,7\n"));
        assert!(csv.contains("scheduler.page_faults.major,3\n"));
        assert!(csv.contains("extra.os.gate_calls_hcs,5\n"));
        for line in csv.lines() {
            assert_eq!(line.matches(',').count(), 1, "bad row: {line}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn crossing_lookup_by_key() {
        let s = sample_snapshot();
        assert_eq!(s.crossing("call_down"), Some(1));
        assert_eq!(s.crossing("upward_call_trap"), Some(0));
        assert_eq!(s.crossing("nonsense"), None);
    }
}
