//! Counter families: ring crossings, faults, and opcode classes.

use ring_core::access::{vector, Fault};
use ring_core::ring::Ring;

/// Number of rings in the architecture.
pub const NUM_RINGS: usize = 8;

/// Number of distinct trap vectors (mirrors [`Fault::NUM_VECTORS`]).
pub const NUM_VECTORS: usize = Fault::NUM_VECTORS as usize;

/// The ways control moves between (or within) rings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Crossing {
    /// Hardware CALL that lowered the ring of execution through a gate
    /// (Fig. 8) — no trap involved.
    CallDown,
    /// Hardware CALL that stayed in the same ring.
    CallSameRing,
    /// Hardware RETURN that raised the ring of execution (Fig. 9).
    ReturnUp,
    /// Hardware RETURN that stayed in the same ring.
    ReturnSameRing,
    /// Any trap forcing the ring of execution to 0.
    TrapToRing0,
    /// The upward-call software trap (legitimate crossing completed by
    /// the supervisor).
    UpwardCallTrap,
    /// The downward-return software trap (ditto).
    DownwardReturnTrap,
}

impl Crossing {
    /// Every crossing kind, in export order.
    pub const ALL: [Crossing; 7] = [
        Crossing::CallDown,
        Crossing::CallSameRing,
        Crossing::ReturnUp,
        Crossing::ReturnSameRing,
        Crossing::TrapToRing0,
        Crossing::UpwardCallTrap,
        Crossing::DownwardReturnTrap,
    ];

    /// Stable machine-readable name (JSON/CSV key).
    pub fn key(self) -> &'static str {
        match self {
            Crossing::CallDown => "call_down",
            Crossing::CallSameRing => "call_same_ring",
            Crossing::ReturnUp => "return_up",
            Crossing::ReturnSameRing => "return_same_ring",
            Crossing::TrapToRing0 => "trap_to_ring0",
            Crossing::UpwardCallTrap => "upward_call_trap",
            Crossing::DownwardReturnTrap => "downward_return_trap",
        }
    }

    fn index(self) -> usize {
        match self {
            Crossing::CallDown => 0,
            Crossing::CallSameRing => 1,
            Crossing::ReturnUp => 2,
            Crossing::ReturnSameRing => 3,
            Crossing::TrapToRing0 => 4,
            Crossing::UpwardCallTrap => 5,
            Crossing::DownwardReturnTrap => 6,
        }
    }

    /// True for the kinds that actually change the ring of execution.
    pub fn changes_ring(self) -> bool {
        !matches!(self, Crossing::CallSameRing | Crossing::ReturnSameRing)
    }
}

/// Ring-crossing counts: per-kind totals plus a from×to ring matrix.
#[derive(Clone, Debug, Default)]
pub struct CrossingCounters {
    counts: [u64; Crossing::ALL.len()],
    /// `matrix[from][to]` — transitions of the ring of execution,
    /// including same-ring calls/returns on the diagonal.
    pub matrix: [[u64; NUM_RINGS]; NUM_RINGS],
}

impl CrossingCounters {
    /// Records one crossing of `kind` from ring `from` to ring `to`.
    pub fn record(&mut self, kind: Crossing, from: Ring, to: Ring) {
        self.counts[kind.index()] += 1;
        self.matrix[from.number() as usize][to.number() as usize] += 1;
    }

    /// Count for one crossing kind.
    pub fn count(&self, kind: Crossing) -> u64 {
        self.counts[kind.index()]
    }

    /// Total crossings of every kind (including same-ring).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total events that changed the ring of execution.
    pub fn total_ring_changes(&self) -> u64 {
        Crossing::ALL
            .iter()
            .filter(|k| k.changes_ring())
            .map(|k| self.count(*k))
            .sum()
    }
}

/// Instruction classes by operand reference — the paper's grouping for
/// access validation (Figs. 6 and 7). Mirrors `ring-cpu`'s `OperandUse`
/// without depending on it (the CPU crate maps between the two).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// Reads the operand word.
    Read,
    /// Writes the operand word.
    Write,
    /// Reads then writes the operand word.
    ReadWrite,
    /// Writes a two-word indirect pair.
    WritePair,
    /// Loads the effective address into a pointer register.
    Pointer,
    /// Ordinary transfer of control.
    Transfer,
    /// The CALL instruction.
    Call,
    /// The RETURN instruction.
    Return,
    /// Uses only the effective word number as data.
    AddressOnly,
    /// No operand reference at all.
    NoOperand,
}

impl OpClass {
    /// Every class, in export order.
    pub const ALL: [OpClass; 10] = [
        OpClass::Read,
        OpClass::Write,
        OpClass::ReadWrite,
        OpClass::WritePair,
        OpClass::Pointer,
        OpClass::Transfer,
        OpClass::Call,
        OpClass::Return,
        OpClass::AddressOnly,
        OpClass::NoOperand,
    ];

    /// Stable machine-readable name (JSON/CSV key).
    pub fn key(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::ReadWrite => "read_write",
            OpClass::WritePair => "write_pair",
            OpClass::Pointer => "pointer",
            OpClass::Transfer => "transfer",
            OpClass::Call => "call",
            OpClass::Return => "return",
            OpClass::AddressOnly => "address_only",
            OpClass::NoOperand => "no_operand",
        }
    }

    fn index(self) -> usize {
        // Infallible: ALL enumerates every variant.
        OpClass::ALL
            .iter()
            .position(|c| *c == self)
            .unwrap_or_default()
    }
}

/// Instruction counts by operand-reference class.
#[derive(Clone, Debug, Default)]
pub struct OpClassCounters {
    counts: [u64; OpClass::ALL.len()],
}

impl OpClassCounters {
    /// Records one instruction of `class`.
    pub fn record(&mut self, class: OpClass) {
        self.counts[class.index()] += 1;
    }

    /// Count for one class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The stable export name of a trap vector.
pub fn vector_key(v: u32) -> &'static str {
    match v {
        vector::ACCESS_VIOLATION => "access_violation",
        vector::UPWARD_CALL => "upward_call",
        vector::DOWNWARD_RETURN => "downward_return",
        vector::SEGMENT_FAULT => "segment_fault",
        vector::PAGE_FAULT => "page_fault",
        vector::PRIVILEGED => "privileged",
        vector::ILLEGAL_OPCODE => "illegal_opcode",
        vector::ILLEGAL_MODIFIER => "illegal_modifier",
        vector::INDIRECT_LIMIT => "indirect_limit",
        vector::DERAIL => "derail",
        vector::TIMER_RUNOUT => "timer_runout",
        vector::IO_COMPLETION => "io_completion",
        vector::PHYSICAL_BOUNDS => "physical_bounds",
        vector::HALT => "halt",
        vector::PARITY_ERROR => "parity_error",
        vector::IO_ERROR => "io_error",
        _ => "unknown",
    }
}

/// Fault counts keyed by trap vector and by faulting ring.
#[derive(Clone, Debug, Default)]
pub struct FaultCounters {
    /// Counts indexed by [`Fault::vector`].
    pub by_vector: [u64; NUM_VECTORS],
    /// Counts indexed by the ring of execution at fault time.
    pub by_ring: [u64; NUM_RINGS],
}

impl FaultCounters {
    /// Records one fault detected while executing in `ring`.
    pub fn record(&mut self, fault: &Fault, ring: Ring) {
        self.by_vector[fault.vector() as usize] += 1;
        self.by_ring[ring.number() as usize] += 1;
    }

    /// Count for one trap vector.
    pub fn count_vector(&self, v: u32) -> u64 {
        self.by_vector[v as usize]
    }

    /// Total faults recorded.
    pub fn total(&self) -> u64 {
        self.by_vector.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_matrix_and_kinds_agree() {
        let mut c = CrossingCounters::default();
        c.record(Crossing::CallDown, Ring::R4, Ring::R1);
        c.record(Crossing::CallDown, Ring::R4, Ring::R1);
        c.record(Crossing::ReturnUp, Ring::R1, Ring::R4);
        c.record(Crossing::CallSameRing, Ring::R4, Ring::R4);
        assert_eq!(c.count(Crossing::CallDown), 2);
        assert_eq!(c.matrix[4][1], 2);
        assert_eq!(c.matrix[1][4], 1);
        assert_eq!(c.matrix[4][4], 1);
        assert_eq!(c.total(), 4);
        assert_eq!(c.total_ring_changes(), 3);
    }

    #[test]
    fn opclass_indices_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in OpClass::ALL {
            assert!(seen.insert(c.key()), "duplicate key {}", c.key());
        }
        let mut oc = OpClassCounters::default();
        for c in OpClass::ALL {
            oc.record(c);
        }
        assert_eq!(oc.total(), OpClass::ALL.len() as u64);
    }

    #[test]
    fn fault_counters_key_by_vector_and_ring() {
        let mut f = FaultCounters::default();
        f.record(&Fault::TimerRunout, Ring::R3);
        f.record(&Fault::TimerRunout, Ring::R3);
        f.record(&Fault::IllegalModifier, Ring::R0);
        assert_eq!(f.count_vector(vector::TIMER_RUNOUT), 2);
        assert_eq!(f.by_ring[3], 2);
        assert_eq!(f.by_ring[0], 1);
        assert_eq!(f.total(), 3);
    }

    #[test]
    fn every_vector_has_a_distinct_key() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..Fault::NUM_VECTORS {
            let k = vector_key(v);
            assert_ne!(k, "unknown");
            assert!(seen.insert(k), "duplicate vector key {k}");
        }
    }
}
