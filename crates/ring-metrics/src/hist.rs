//! Log₂-bucketed histograms for cycle costs and chain depths.

/// A histogram over `u64` values with power-of-two buckets.
///
/// Bucket 0 holds exact zeros; bucket `k` (for `k >= 1`) holds values in
/// `[2^(k-1), 2^k - 1]`. Alongside the buckets the exact count, sum,
/// minimum and maximum are maintained, so the mean is exact even though
/// the distribution is bucketed.
#[derive(Clone, Debug)]
pub struct CycleHistogram {
    buckets: [u64; Self::NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            buckets: [0; Self::NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl CycleHistogram {
    /// Bucket 0 plus one bucket per bit position of a `u64`.
    pub const NUM_BUCKETS: usize = 65;

    /// A fresh, empty histogram.
    pub fn new() -> CycleHistogram {
        CycleHistogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive value range `[lo, hi]` of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = lo.saturating_mul(2).saturating_sub(1).max(lo);
            (lo, hi)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, *c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(CycleHistogram::bucket_of(0), 0);
        assert_eq!(CycleHistogram::bucket_of(1), 1);
        assert_eq!(CycleHistogram::bucket_of(2), 2);
        assert_eq!(CycleHistogram::bucket_of(3), 2);
        assert_eq!(CycleHistogram::bucket_of(4), 3);
        assert_eq!(CycleHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(CycleHistogram::bucket_bounds(1), (1, 1));
        assert_eq!(CycleHistogram::bucket_bounds(2), (2, 3));
        assert_eq!(CycleHistogram::bucket_bounds(3), (4, 7));
    }

    #[test]
    fn stats_are_exact() {
        let mut h = CycleHistogram::new();
        for v in [0u64, 1, 3, 8, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = CycleHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn nonzero_buckets_cover_all_observations() {
        let mut h = CycleHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, 100);
        // Buckets partition: each value lies in exactly one reported range.
        for v in 0..100u64 {
            let containing = h
                .nonzero_buckets()
                .filter(|(lo, hi, _)| *lo <= v && v <= *hi)
                .count();
            assert_eq!(containing, 1, "value {v}");
        }
    }
}
