//! A bounded event recorder that drops the *oldest* entries.
//!
//! This is the storage the CPU's execution trace is built on: a
//! `VecDeque` ring with a global sequence number, so consumers can both
//! see the most recent `capacity` events and know how many earlier
//! events were discarded.

use std::collections::VecDeque;

/// A drop-oldest ring buffer of events with sequence numbering.
///
/// Every pushed event gets a monotonically increasing sequence number
/// (starting at 0). Once `capacity` events are held, pushing another
/// discards the oldest — the recorder always holds the `capacity` most
/// recent events.
#[derive(Clone, Debug)]
pub struct EventRing<T> {
    events: VecDeque<(u64, T)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl<T> EventRing<T> {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventRing<T> {
        EventRing {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records an event, discarding the oldest if the buffer is full.
    /// With capacity 0 the event is counted but not stored.
    pub fn push(&mut self, event: T) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else {
            if self.events.len() >= self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back((self.next_seq, event));
        }
        self.next_seq += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (held plus dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events discarded because the buffer was full (draining is not
    /// dropping: consumed events do not count).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events oldest-first with sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.events.iter().map(|(seq, e)| (*seq, e))
    }

    /// Drains the held events oldest-first, keeping sequence numbering
    /// intact for later pushes.
    pub fn drain(&mut self) -> Vec<(u64, T)> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_beyond_capacity() {
        let mut r = EventRing::new(3);
        for i in 0..10 {
            r.push(i);
        }
        let held: Vec<(u64, i32)> = r.drain();
        // The three *newest* events survive, with their true sequence
        // numbers — this is the drop-oldest contract.
        assert_eq!(held, vec![(7, 7), (8, 8), (9, 9)]);
        assert_eq!(r.total_recorded(), 10);
    }

    #[test]
    fn dropped_counts_discards() {
        let mut r = EventRing::new(2);
        assert_eq!(r.dropped(), 0);
        r.push('a');
        r.push('b');
        assert_eq!(r.dropped(), 0);
        r.push('c');
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn zero_capacity_counts_without_storing() {
        let mut r = EventRing::new(0);
        r.push(1u8);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 2);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn drain_preserves_sequence_across_refills() {
        let mut r = EventRing::new(4);
        r.push("x");
        let first = r.drain();
        assert_eq!(first[0].0, 0);
        assert_eq!(r.dropped(), 0, "draining is consumption, not dropping");
        r.push("y");
        let second = r.drain();
        assert_eq!(second[0].0, 1, "sequence numbers continue after drain");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_sequence_numbers_contiguous() {
        // Push far past capacity several times over: the survivors'
        // sequence numbers must stay contiguous and end at the last
        // pushed sequence, no matter where the wrap landed.
        let mut r = EventRing::new(5);
        for i in 0..23u64 {
            r.push(i);
        }
        let held: Vec<(u64, u64)> = r.drain();
        assert_eq!(held.len(), 5);
        for pair in held.windows(2) {
            assert_eq!(pair[1].0, pair[0].0 + 1, "sequence gap across the wrap");
        }
        assert_eq!(held.last().unwrap().0, 22);
        // Each held sequence number still tags the event pushed under
        // it — the drop discards entries, never renumbers them.
        for (seq, ev) in held {
            assert_eq!(seq, ev);
        }
    }

    #[test]
    fn dropped_is_exact_at_and_past_the_capacity_boundary() {
        let cap = 4;
        let mut r = EventRing::new(cap);
        // Filling to exactly capacity drops nothing.
        for i in 0..cap {
            r.push(i);
            assert_eq!(r.dropped(), 0);
        }
        assert_eq!(r.len(), cap);
        // Every push past capacity drops exactly one.
        for extra in 1..=7u64 {
            r.push(0);
            assert_eq!(r.dropped(), extra);
            assert_eq!(r.len(), cap, "len is pinned at capacity after the wrap");
        }
        assert_eq!(r.total_recorded(), cap as u64 + 7);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(i * 10);
        }
        let seqs: Vec<u64> = r.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
