//! Assembler source representation.

use ring_cpu::isa::Opcode;

/// A numeric expression: an optional label plus a constant offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expr {
    /// Symbol to resolve (intra-segment label or EQU name), if any.
    pub symbol: Option<String>,
    /// Constant addend (may be negative; the sum must land in 18 bits).
    pub addend: i64,
}

impl Expr {
    /// A bare constant.
    pub fn constant(v: i64) -> Expr {
        Expr {
            symbol: None,
            addend: v,
        }
    }

    /// A bare symbol reference.
    pub fn symbol(name: &str) -> Expr {
        Expr {
            symbol: Some(name.to_string()),
            addend: 0,
        }
    }
}

/// The operand field of a machine instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operand {
    /// Base pointer register (`prN|`), if any.
    pub pr: Option<u8>,
    /// Offset expression.
    pub expr: Expr,
    /// Index register (`,xN`), if any.
    pub index: Option<u8>,
    /// Indirect (`,*`).
    pub indirect: bool,
    /// Immediate literal (`=expr`): the expression is the operand.
    pub immediate: bool,
}

/// One parsed source statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A machine instruction. `reg` carries the leading register operand
    /// of EAP/SPRI/LDX/STX (the XREG field); `operand` the address
    /// field, if present.
    Instr {
        /// The operation.
        opcode: Opcode,
        /// XREG-field register for the register-taking mnemonics.
        reg: Option<u8>,
        /// The address field.
        operand: Option<Operand>,
    },
    /// `org expr` — set the location counter.
    Org(Expr),
    /// `dw expr, ...` — emit data words.
    Dw(Vec<Expr>),
    /// `bss expr` — reserve zeroed words.
    Bss(Expr),
    /// `its ring, segno, wordno [, i]` — emit an indirect-word pair.
    Its {
        /// Ring field of the pair.
        ring: Expr,
        /// Segment number field.
        segno: Expr,
        /// Word number field.
        wordno: Expr,
        /// Further-indirection flag.
        indirect: bool,
    },
    /// `equ name, expr` — define an assembly-time symbol.
    Equ(String, Expr),
}

/// A statement plus its source position and optional label.
#[derive(Clone, Debug, PartialEq)]
pub struct Line {
    /// 1-based source line number (for diagnostics).
    pub lineno: usize,
    /// Label defined at this line, if any.
    pub label: Option<String>,
    /// The statement, if the line is not label-only/blank.
    pub stmt: Option<Stmt>,
}

/// An assembly-time error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub lineno: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.lineno, self.message)
    }
}

impl std::error::Error for AsmError {}
