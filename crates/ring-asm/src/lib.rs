//! A two-pass assembler (and disassembler) for the simulator ISA.
//!
//! Labels are intra-segment — programs address other segments through
//! pointer registers at run time, mirroring the segmented addressing
//! discipline of the modelled machine. See [`parse`] for the grammar.
//!
//! # Example
//!
//! ```
//! let out = ring_asm::assemble("
//!         equ n, 3
//!         lda =n
//! loop:   sba =1
//!         tnz loop
//!         halt
//! ").unwrap();
//! assert_eq!(out.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod ast;
pub mod disasm;
pub mod parse;

pub use assemble::{assemble, Assembled};
pub use ast::AsmError;
pub use disasm::{disassemble, disassemble_word};
