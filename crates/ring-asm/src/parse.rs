//! Line parser for the assembler.
//!
//! Grammar (one statement per line; `;` starts a comment):
//!
//! ```text
//! line      := [label ':'] [stmt] [';' comment]
//! stmt      := mnemonic [regfield ','] [operand] | directive
//! operand   := '=' expr                      (immediate literal)
//!            | ['pr' N '|'] expr [',x' N] [',*']
//! expr      := term (('+'|'-') term)*       ; term := number | symbol
//! number    := decimal | '0o' octal | 'o' octal
//! directive := 'org' expr | 'dw' expr,... | 'bss' expr
//!            | 'its' expr ',' expr ',' expr [',i']
//!            | 'equ' name ',' expr
//! ```

use ring_cpu::isa::Opcode;

use crate::ast::{AsmError, Expr, Line, Operand, Stmt};

fn err(lineno: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        lineno,
        message: message.into(),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_number(s: &str) -> Option<i64> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(oct) = s.strip_prefix("0o").or_else(|| s.strip_prefix('o')) {
        i64::from_str_radix(oct, 8).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Parses an expression: `term ((+|-) term)*`.
pub(crate) fn parse_expr(lineno: usize, s: &str) -> Result<Expr, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(lineno, "empty expression"));
    }
    // Split into signed terms, keeping it simple: scan for +/- at depth 0.
    let mut symbol: Option<String> = None;
    let mut addend: i64 = 0;
    let mut rest = s;
    let mut sign = 1i64;
    loop {
        rest = rest.trim_start();
        // A leading '-' on the very first term is part of the number.
        let term_end = rest[1..]
            .find(['+', '-'])
            .map(|i| i + 1)
            .unwrap_or(rest.len());
        let term = rest[..term_end].trim();
        if term.is_empty() {
            return Err(err(lineno, format!("malformed expression `{s}`")));
        }
        if let Some(v) = parse_number(term) {
            addend += sign * v;
        } else if is_ident(term) {
            if sign < 0 {
                return Err(err(lineno, "cannot negate a symbol"));
            }
            if symbol.replace(term.to_string()).is_some() {
                return Err(err(lineno, "at most one symbol per expression"));
            }
        } else {
            return Err(err(lineno, format!("bad term `{term}`")));
        }
        if term_end == rest.len() {
            break;
        }
        sign = if rest.as_bytes()[term_end] == b'+' {
            1
        } else {
            -1
        };
        rest = &rest[term_end + 1..];
    }
    Ok(Expr { symbol, addend })
}

fn parse_reg(lineno: usize, s: &str, prefix: &str) -> Result<u8, AsmError> {
    let body = s
        .strip_prefix(prefix)
        .ok_or_else(|| err(lineno, format!("expected `{prefix}N`, got `{s}`")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| err(lineno, format!("bad register `{s}`")))?;
    if n < 8 {
        Ok(n)
    } else {
        Err(err(lineno, format!("register number {n} out of range")))
    }
}

/// Parses an operand field.
pub(crate) fn parse_operand(lineno: usize, s: &str) -> Result<Operand, AsmError> {
    let s = s.trim();
    if let Some(lit) = s.strip_prefix('=') {
        return Ok(Operand {
            pr: None,
            expr: parse_expr(lineno, lit)?,
            index: None,
            indirect: false,
            immediate: true,
        });
    }
    // Trailing modifiers, comma-separated: ,* and ,xN in any order.
    let mut indirect = false;
    let mut index = None;
    let mut core = s;
    while let Some(pos) = core.rfind(',') {
        let tail = core[pos + 1..].trim();
        if tail == "*" {
            if indirect {
                return Err(err(lineno, "duplicate `*` modifier"));
            }
            indirect = true;
        } else if tail.starts_with('x') && tail.len() >= 2 {
            if index.is_some() {
                return Err(err(lineno, "duplicate index modifier"));
            }
            index = Some(parse_reg(lineno, tail, "x")?);
        } else {
            break;
        }
        core = core[..pos].trim_end();
    }
    // Base: prN| prefix.
    let (pr, expr_str) = match core.split_once('|') {
        Some((base, rest)) => (Some(parse_reg(lineno, base.trim(), "pr")?), rest),
        None => (None, core),
    };
    Ok(Operand {
        pr,
        expr: parse_expr(lineno, expr_str)?,
        index,
        indirect,
        immediate: false,
    })
}

fn mnemonic_table() -> &'static [(&'static str, Opcode)] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<(&'static str, Opcode)>> = OnceLock::new();
    TABLE
        .get_or_init(|| {
            Opcode::all()
                .iter()
                .map(|&op| (op.mnemonic(), op))
                .collect()
        })
        .as_slice()
}

fn lookup_mnemonic(m: &str) -> Option<Opcode> {
    mnemonic_table()
        .iter()
        .find(|(name, _)| *name == m)
        .map(|(_, op)| *op)
}

/// True for mnemonics whose first operand is a register placed in the
/// XREG field.
fn takes_reg_field(op: Opcode) -> bool {
    matches!(op, Opcode::Eap | Opcode::Spri | Opcode::Ldx | Opcode::Stx)
}

/// Parses one source line.
pub fn parse_line(lineno: usize, raw: &str) -> Result<Line, AsmError> {
    let no_comment = match raw.find(';') {
        Some(i) => &raw[..i],
        None => raw,
    };
    let mut text = no_comment.trim();
    let mut label = None;
    if let Some(colon) = text.find(':') {
        let l = text[..colon].trim();
        if !is_ident(l) {
            return Err(err(lineno, format!("bad label `{l}`")));
        }
        label = Some(l.to_string());
        text = text[colon + 1..].trim();
    }
    if text.is_empty() {
        return Ok(Line {
            lineno,
            label,
            stmt: None,
        });
    }
    let (mnemonic, args) = match text.split_once(char::is_whitespace) {
        Some((m, a)) => (m.trim(), a.trim()),
        None => (text, ""),
    };
    let stmt = match mnemonic {
        "org" => Stmt::Org(parse_expr(lineno, args)?),
        "bss" => Stmt::Bss(parse_expr(lineno, args)?),
        "dw" => {
            let exprs = args
                .split(',')
                .map(|p| parse_expr(lineno, p))
                .collect::<Result<Vec<_>, _>>()?;
            if exprs.is_empty() {
                return Err(err(lineno, "dw needs at least one value"));
            }
            Stmt::Dw(exprs)
        }
        "its" => {
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            if parts.len() < 3 || parts.len() > 4 {
                return Err(err(lineno, "its takes ring, segno, wordno [, i]"));
            }
            let indirect = match parts.get(3) {
                None => false,
                Some(&"i") => true,
                Some(other) => return Err(err(lineno, format!("bad its flag `{other}`"))),
            };
            Stmt::Its {
                ring: parse_expr(lineno, parts[0])?,
                segno: parse_expr(lineno, parts[1])?,
                wordno: parse_expr(lineno, parts[2])?,
                indirect,
            }
        }
        "equ" => {
            let (name, val) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, "equ takes name, value"))?;
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(lineno, format!("bad equ name `{name}`")));
            }
            Stmt::Equ(name.to_string(), parse_expr(lineno, val)?)
        }
        m => {
            let opcode =
                lookup_mnemonic(m).ok_or_else(|| err(lineno, format!("unknown mnemonic `{m}`")))?;
            let mut reg = None;
            let mut rest = args;
            if takes_reg_field(opcode) {
                let (r, tail) = match args.split_once(',') {
                    Some((r, t)) => (r.trim(), t.trim()),
                    None => (args.trim(), ""),
                };
                let prefix = if matches!(opcode, Opcode::Eap | Opcode::Spri) {
                    "pr"
                } else {
                    "x"
                };
                reg = Some(parse_reg(lineno, r, prefix)?);
                rest = tail;
            }
            let operand = if rest.is_empty() {
                None
            } else {
                Some(parse_operand(lineno, rest)?)
            };
            Stmt::Instr {
                opcode,
                reg,
                operand,
            }
        }
    };
    Ok(Line {
        lineno,
        label,
        stmt: Some(stmt),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_decimal_and_octal() {
        assert_eq!(parse_number("42"), Some(42));
        assert_eq!(parse_number("0o17"), Some(15));
        assert_eq!(parse_number("o17"), Some(15));
        assert_eq!(parse_number("-3"), Some(-3));
        assert_eq!(parse_number("xyz"), None);
    }

    #[test]
    fn expr_symbol_plus_constant() {
        let e = parse_expr(1, "loop+2").unwrap();
        assert_eq!(e.symbol.as_deref(), Some("loop"));
        assert_eq!(e.addend, 2);
        let e = parse_expr(1, "buf - 1 + 3").unwrap();
        assert_eq!(e.addend, 2);
        assert!(parse_expr(1, "a+b").is_err());
        assert!(parse_expr(1, "").is_err());
    }

    #[test]
    fn operand_forms() {
        let o = parse_operand(1, "=5").unwrap();
        assert!(o.immediate);
        assert_eq!(o.expr.addend, 5);

        let o = parse_operand(1, "pr1|8,x2,*").unwrap();
        assert_eq!(o.pr, Some(1));
        assert_eq!(o.expr.addend, 8);
        assert_eq!(o.index, Some(2));
        assert!(o.indirect);

        let o = parse_operand(1, "label").unwrap();
        assert_eq!(o.pr, None);
        assert_eq!(o.expr.symbol.as_deref(), Some("label"));
        assert!(!o.indirect);
    }

    #[test]
    fn operand_rejects_bad_registers() {
        assert!(parse_operand(1, "pr9|0").is_err());
        assert!(parse_operand(1, "pr1|0,x9").is_err());
        assert!(parse_operand(1, "pr1|0,*,*").is_err());
    }

    #[test]
    fn line_with_label_and_comment() {
        let l = parse_line(3, "loop:  lda pr1|0 ; fetch").unwrap();
        assert_eq!(l.label.as_deref(), Some("loop"));
        match l.stmt.unwrap() {
            Stmt::Instr {
                opcode: Opcode::Lda,
                operand: Some(o),
                ..
            } => assert_eq!(o.pr, Some(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blank_and_label_only_lines() {
        assert!(parse_line(1, "  ; nothing").unwrap().stmt.is_none());
        let l = parse_line(2, "here:").unwrap();
        assert_eq!(l.label.as_deref(), Some("here"));
        assert!(l.stmt.is_none());
    }

    #[test]
    fn register_field_mnemonics() {
        let l = parse_line(1, "eap pr3, pr1|0,*").unwrap();
        match l.stmt.unwrap() {
            Stmt::Instr {
                opcode: Opcode::Eap,
                reg: Some(3),
                operand: Some(o),
            } => assert!(o.indirect),
            other => panic!("{other:?}"),
        }
        let l = parse_line(1, "ldx x2, =7").unwrap();
        match l.stmt.unwrap() {
            Stmt::Instr {
                opcode: Opcode::Ldx,
                reg: Some(2),
                operand: Some(o),
            } => assert!(o.immediate),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives() {
        assert!(matches!(
            parse_line(1, "org 100").unwrap().stmt.unwrap(),
            Stmt::Org(_)
        ));
        match parse_line(1, "dw 1, 2, label+1").unwrap().stmt.unwrap() {
            Stmt::Dw(v) => assert_eq!(v.len(), 3),
            other => panic!("{other:?}"),
        }
        match parse_line(1, "its 4, 100, 0, i").unwrap().stmt.unwrap() {
            Stmt::Its { indirect, .. } => assert!(indirect),
            other => panic!("{other:?}"),
        }
        match parse_line(1, "equ nargs, 3").unwrap().stmt.unwrap() {
            Stmt::Equ(name, e) => {
                assert_eq!(name, "nargs");
                assert_eq!(e.addend, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let e = parse_line(7, "frobnicate 3").unwrap_err();
        assert_eq!(e.lineno, 7);
        assert!(e.message.contains("frobnicate"));
    }
}
