//! Two-pass assembly: pass 1 assigns label addresses, pass 2 emits
//! words.

use std::collections::HashMap;

use ring_core::addr::{SegAddr, SegNo, WordNo, MAX_WORDNO};
use ring_core::registers::IndWord;
use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_cpu::isa::{AddrMode, Instr, Opcode};

use crate::ast::{AsmError, Expr, Line, Operand, Stmt};
use crate::parse::parse_line;

/// The output of assembling one segment's source.
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The segment image, indexed by word number from 0. Gaps created
    /// by `org` are zero-filled.
    pub words: Vec<Word>,
    /// Label/EQU values.
    pub symbols: HashMap<String, u32>,
}

impl Assembled {
    /// Value of `symbol`, if defined.
    pub fn symbol(&self, symbol: &str) -> Option<u32> {
        self.symbols.get(symbol).copied()
    }

    /// Size of the image in words.
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// True if the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Renders the image as an annotated listing: word number, octal
    /// contents, disassembly, and any labels defined at that address.
    pub fn dump(&self) -> String {
        // Reverse symbol map (several labels may share an address).
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &at) in &self.symbols {
            by_addr.entry(at).or_default().push(name);
        }
        by_addr.values_mut().for_each(|v| v.sort_unstable());
        let mut out = String::new();
        for (i, w) in self.words.iter().enumerate() {
            let labels = by_addr
                .get(&(i as u32))
                .map(|v| v.join(", "))
                .unwrap_or_default();
            out.push_str(&format!(
                "{i:6}  {:0>12o}  {:<24}  {labels}\n",
                w.raw(),
                crate::disasm::disassemble_word(*w),
            ));
        }
        out
    }
}

fn err(lineno: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        lineno,
        message: message.into(),
    }
}

struct Ctx {
    symbols: HashMap<String, u32>,
}

impl Ctx {
    fn eval(&self, lineno: usize, e: &Expr) -> Result<i64, AsmError> {
        let base = match &e.symbol {
            Some(name) => i64::from(
                *self
                    .symbols
                    .get(name)
                    .ok_or_else(|| err(lineno, format!("undefined symbol `{name}`")))?,
            ),
            None => 0,
        };
        Ok(base + e.addend)
    }

    fn eval_field(&self, lineno: usize, e: &Expr, bits: u32, what: &str) -> Result<u64, AsmError> {
        let v = self.eval(lineno, e)?;
        let max = (1i64 << bits) - 1;
        if v < 0 || v > max {
            return Err(err(
                lineno,
                format!("{what} value {v} out of range 0..={max}"),
            ));
        }
        Ok(v as u64)
    }
}

/// Size in words each statement occupies (pass 1).
fn stmt_size(lineno: usize, stmt: &Stmt, ctx: &Ctx) -> Result<u32, AsmError> {
    Ok(match stmt {
        Stmt::Instr { .. } => 1,
        Stmt::Dw(v) => v.len() as u32,
        Stmt::Its { .. } => 2,
        Stmt::Bss(e) => ctx.eval_field(lineno, e, 18, "bss")? as u32,
        Stmt::Org(_) | Stmt::Equ(..) => 0,
    })
}

fn encode_instr(
    lineno: usize,
    ctx: &Ctx,
    opcode: Opcode,
    reg: Option<u8>,
    operand: &Option<Operand>,
) -> Result<Word, AsmError> {
    let mut instr = Instr::direct(opcode, 0);
    if let Some(r) = reg {
        instr = instr.with_xreg(r);
    }
    if let Some(op) = operand {
        instr.offset = ctx.eval_field(lineno, &op.expr, 18, "offset")? as u32;
        instr.pr = op.pr;
        instr.indirect = op.indirect;
        if op.immediate {
            if op.pr.is_some() || op.indirect || op.index.is_some() {
                return Err(err(lineno, "immediate operand takes no modifiers"));
            }
            instr.mode = AddrMode::Immediate;
        } else if let Some(x) = op.index {
            if reg.is_some() {
                return Err(err(
                    lineno,
                    "register-field instructions cannot also be indexed",
                ));
            }
            instr.mode = AddrMode::Indexed;
            instr.xreg = x;
        }
    }
    Ok(instr.encode())
}

/// Assembles `source` into a segment image.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (parse error, undefined or
/// duplicate symbol, field overflow).
///
/// # Examples
///
/// ```
/// let prog = "
///         lda =5
/// loop:   ada =1
///         tra loop
/// ";
/// let out = ring_asm::assemble(prog).unwrap();
/// assert_eq!(out.len(), 3);
/// assert_eq!(out.symbol("loop"), Some(1));
/// ```
pub fn assemble(source: &str) -> Result<Assembled, AsmError> {
    let lines: Vec<Line> = source
        .lines()
        .enumerate()
        .map(|(i, l)| parse_line(i + 1, l))
        .collect::<Result<_, _>>()?;

    // Pass 1: locations for labels; EQU definitions.
    let mut ctx = Ctx {
        symbols: HashMap::new(),
    };
    let mut loc: u32 = 0;
    for line in &lines {
        if let Some(label) = &line.label {
            if ctx.symbols.insert(label.clone(), loc).is_some() {
                return Err(err(line.lineno, format!("duplicate label `{label}`")));
            }
        }
        if let Some(stmt) = &line.stmt {
            match stmt {
                Stmt::Org(e) => {
                    loc = ctx.eval_field(line.lineno, e, 18, "org")? as u32;
                }
                Stmt::Equ(name, e) => {
                    let v = ctx.eval_field(line.lineno, e, 18, "equ")? as u32;
                    if ctx.symbols.insert(name.clone(), v).is_some() {
                        return Err(err(line.lineno, format!("duplicate symbol `{name}`")));
                    }
                }
                other => {
                    loc = loc
                        .checked_add(stmt_size(line.lineno, other, &ctx)?)
                        .filter(|&l| l <= MAX_WORDNO + 1)
                        .ok_or_else(|| err(line.lineno, "segment overflow"))?;
                }
            }
        }
    }

    // Pass 2: emission.
    let mut words: Vec<Word> = Vec::new();
    let mut emit = |at: u32, w: Word| {
        let at = at as usize;
        if words.len() <= at {
            words.resize(at + 1, Word::ZERO);
        }
        words[at] = w;
    };
    let mut loc: u32 = 0;
    for line in &lines {
        let Some(stmt) = &line.stmt else { continue };
        match stmt {
            Stmt::Org(e) => {
                loc = ctx.eval_field(line.lineno, e, 18, "org")? as u32;
            }
            Stmt::Equ(..) => {}
            Stmt::Dw(exprs) => {
                for e in exprs {
                    let v = ctx.eval(line.lineno, e)?;
                    emit(loc, Word::from_signed(v));
                    loc += 1;
                }
            }
            Stmt::Bss(e) => {
                let n = ctx.eval_field(line.lineno, e, 18, "bss")? as u32;
                for i in 0..n {
                    emit(loc + i, Word::ZERO);
                }
                loc += n;
            }
            Stmt::Its {
                ring,
                segno,
                wordno,
                indirect,
            } => {
                let r = ctx.eval_field(line.lineno, ring, 3, "ring")?;
                let s = ctx.eval_field(line.lineno, segno, 15, "segno")?;
                let wn = ctx.eval_field(line.lineno, wordno, 18, "wordno")?;
                let iw = IndWord::new(
                    Ring::from_bits(r),
                    SegAddr::new(SegNo::from_bits(s), WordNo::from_bits(wn)),
                    *indirect,
                );
                let (w0, w1) = iw.pack();
                emit(loc, w0);
                emit(loc + 1, w1);
                loc += 2;
            }
            Stmt::Instr {
                opcode,
                reg,
                operand,
            } => {
                emit(
                    loc,
                    encode_instr(line.lineno, &ctx, *opcode, *reg, operand)?,
                );
                loc += 1;
            }
        }
    }
    Ok(Assembled {
        words,
        symbols: ctx.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_references() {
        let out = assemble(
            "
        tra fwd
back:   nop
fwd:    tra back
",
        )
        .unwrap();
        assert_eq!(out.symbol("back"), Some(1));
        assert_eq!(out.symbol("fwd"), Some(2));
        let i0 = Instr::decode(out.words[0]).unwrap();
        assert_eq!(i0.offset, 2);
        let i2 = Instr::decode(out.words[2]).unwrap();
        assert_eq!(i2.offset, 1);
    }

    #[test]
    fn org_dw_bss_layout() {
        let out = assemble(
            "
        org 4
val:    dw 7, 0o10
buf:    bss 2
end:    dw -1
",
        )
        .unwrap();
        assert_eq!(out.symbol("val"), Some(4));
        assert_eq!(out.symbol("buf"), Some(6));
        assert_eq!(out.symbol("end"), Some(8));
        assert_eq!(out.words[4], Word::new(7));
        assert_eq!(out.words[5], Word::new(8));
        assert_eq!(out.words[8].as_signed(), -1);
        assert_eq!(out.words[0], Word::ZERO, "org gap zero-filled");
    }

    #[test]
    fn its_emits_a_pair() {
        let out = assemble("p: its 4, 0o100, 12, i").unwrap();
        let iw = IndWord::unpack(out.words[0], out.words[1]);
        assert_eq!(iw.ring, Ring::R4);
        assert_eq!(iw.addr.segno.value(), 0o100);
        assert_eq!(iw.addr.wordno.value(), 12);
        assert!(iw.indirect);
    }

    #[test]
    fn equ_and_expressions() {
        let out = assemble(
            "
        equ n, 5
        lda =n
        lda pr1|n+1
",
        )
        .unwrap();
        let i0 = Instr::decode(out.words[0]).unwrap();
        assert_eq!(i0.offset, 5);
        assert_eq!(i0.mode, AddrMode::Immediate);
        let i1 = Instr::decode(out.words[1]).unwrap();
        assert_eq!(i1.offset, 6);
        assert_eq!(i1.pr, Some(1));
    }

    #[test]
    fn register_field_encodings() {
        let out = assemble(
            "
        eap pr3, pr1|4,*
        spri pr3, pr0|2
        ldx x5, =9
        stx x5, pr0|3
",
        )
        .unwrap();
        let i = Instr::decode(out.words[0]).unwrap();
        assert_eq!(
            (i.opcode, i.xreg, i.pr, i.indirect),
            (Opcode::Eap, 3, Some(1), true)
        );
        let i = Instr::decode(out.words[2]).unwrap();
        assert_eq!((i.opcode, i.xreg), (Opcode::Ldx, 5));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = assemble("\n  lda =bogus_sym\n").unwrap_err();
        assert_eq!(e.lineno, 2);
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = assemble("lda =0o1000000\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn immediate_with_modifiers_rejected() {
        assert!(assemble("lda =5,*").is_err());
    }

    #[test]
    fn indexed_register_field_conflict_rejected() {
        assert!(assemble("ldx x1, pr0|0,x2").is_err());
    }

    #[test]
    fn dump_lists_words_with_labels() {
        let out = assemble(
            "
start:  lda =1
loop:   tra loop
",
        )
        .unwrap();
        let d = out.dump();
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("lda =0o1") && lines[0].contains("start"));
        assert!(lines[1].contains("tra 0o1") && lines[1].contains("loop"));
    }
}
