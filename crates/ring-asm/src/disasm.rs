//! Disassembly of instruction words back to assembler syntax.

use ring_core::word::Word;
use ring_cpu::isa::{AddrMode, Instr, Opcode};

/// Renders one instruction word as assembler text, or `dw <octal>` if it
/// does not decode.
pub fn disassemble_word(w: Word) -> String {
    match Instr::decode(w) {
        Ok(i) => disassemble(&i),
        Err(_) => format!("dw 0o{:o}", w.raw()),
    }
}

/// Renders a decoded instruction as assembler text that re-assembles to
/// the same word.
pub fn disassemble(i: &Instr) -> String {
    let mut out = i.opcode.mnemonic().to_string();
    let reg_field = matches!(
        i.opcode,
        Opcode::Eap | Opcode::Spri | Opcode::Ldx | Opcode::Stx
    );
    // Encodings the assembler syntax cannot express are rendered as
    // data words so that disassemble-then-assemble is bit-exact:
    // indexing on a register-field instruction (the XREG field is the
    // register operand there); base/indirect/XREG bits alongside an
    // immediate operand (semantically ignored but present); and a
    // non-zero XREG the indexed modifier would not print.
    let unrepresentable = match i.mode {
        AddrMode::Indexed => reg_field,
        AddrMode::Immediate => i.pr.is_some() || i.indirect || (!reg_field && i.xreg != 0),
        AddrMode::None => !reg_field && i.xreg != 0,
    };
    if unrepresentable {
        return format!("dw 0o{:o}", i.encode().raw());
    }
    let mut parts: Vec<String> = Vec::new();
    if reg_field {
        let prefix = if matches!(i.opcode, Opcode::Eap | Opcode::Spri) {
            "pr"
        } else {
            "x"
        };
        parts.push(format!("{prefix}{}", i.xreg));
    }
    let has_operand = i.pr.is_some()
        || i.offset != 0
        || i.indirect
        || i.mode != AddrMode::None
        || !matches!(i.opcode.operand_use(), ring_cpu::isa::OperandUse::None);
    if has_operand {
        let mut op = String::new();
        if i.mode == AddrMode::Immediate {
            op.push_str(&format!("=0o{:o}", i.offset));
        } else {
            if let Some(pr) = i.pr {
                op.push_str(&format!("pr{pr}|"));
            }
            op.push_str(&format!("0o{:o}", i.offset));
            if i.mode == AddrMode::Indexed && !reg_field {
                op.push_str(&format!(",x{}", i.xreg));
            }
            if i.indirect {
                op.push_str(",*");
            }
        }
        parts.push(op);
    }
    if !parts.is_empty() {
        out.push(' ');
        out.push_str(&parts.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;

    /// Every decodable instruction round-trips: disassemble then
    /// re-assemble to the identical word.
    #[test]
    fn disasm_asm_round_trip() {
        let cases = [
            Instr::direct(Opcode::Lda, 5),
            Instr::direct(Opcode::Lda, 5).immediate(),
            Instr::pr_relative(Opcode::Sta, 3, 0o777).with_indirect(),
            Instr::direct(Opcode::Tra, 0o1234).with_index(7),
            Instr::pr_relative(Opcode::Eap, 1, 2).with_xreg(3),
            Instr::pr_relative(Opcode::Spri, 0, 4)
                .with_xreg(5)
                .with_indirect(),
            Instr::direct(Opcode::Ldx, 9).immediate().with_xreg(2),
            Instr::direct(Opcode::Nop, 0),
            Instr::direct(Opcode::Halt, 0),
            Instr::pr_relative(Opcode::Call, 2, 0),
            Instr::pr_relative(Opcode::Return, 2, 0).with_indirect(),
        ];
        for i in cases {
            let text = disassemble(&i);
            let out = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(out.words.len(), 1, "`{text}`");
            assert_eq!(out.words[0], i.encode(), "`{text}` round trip");
        }
    }

    #[test]
    fn undecodable_word_renders_as_dw() {
        let w = Word::ZERO.with_field(28, 8, 0o76);
        assert!(disassemble_word(w).starts_with("dw "));
    }
}
