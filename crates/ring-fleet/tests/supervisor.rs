//! The self-healing supervisor, pinned: restart from checkpoints,
//! quarantine after an exhausted restart budget, host-panic capture,
//! and the isolation guarantee — a quarantined machine never perturbs
//! a healthy machine's result.

use ring_fleet::report::HealthReport;
use ring_fleet::{
    run_fleet, ChaosParams, FailureClass, FleetConfig, SupervisorConfig, WorkloadMix,
};

/// A fleet whose instruction budget is far too small to finish: every
/// attempt wedges, so every machine burns its restart budget (restoring
/// from mid-run checkpoints along the way) and ends quarantined.
fn doomed_fleet() -> FleetConfig {
    FleetConfig {
        machines: 4,
        threads: 2,
        budget: 60,
        supervisor: SupervisorConfig {
            chaos: Some(ChaosParams {
                seed: 5,
                mean_interval: 10_000,
            }),
            // Well under one attempt's cycle span, so checkpoints are
            // actually captured and restarts actually restore them.
            checkpoint_every: 100,
            restart_budget: 2,
            ..SupervisorConfig::default()
        },
        ..FleetConfig::default()
    }
}

#[test]
fn exhausted_restart_budget_quarantines_deterministically() {
    let a = run_fleet(&doomed_fleet());
    let b = run_fleet(&FleetConfig {
        threads: 1,
        ..doomed_fleet()
    });
    assert!(a.member_errors.is_empty());
    for m in &a.machines {
        // Every attempt gets a fresh instruction budget from the last
        // checkpoint, so a doomed machine either ratchets its way to a
        // clean halt across restarts or burns the whole restart budget
        // and is quarantined — nothing in between.
        assert_eq!(m.health.restarts, 2, "the full restart budget is spent");
        assert!(
            m.health.recovery_cycles > 0,
            "restarts must charge backoff and rolled-back work"
        );
        match &m.health.quarantined {
            Some(q) => {
                // The budget guarantees failure but not its flavor:
                // most attempts wedge, and some die to a genuine
                // post-recovery invariant violation when the fault
                // lands in paging state.
                assert!(
                    matches!(
                        q.class,
                        FailureClass::Wedged | FailureClass::InvariantViolation
                    ),
                    "unexpected quarantine class {}",
                    q.class
                );
                assert_eq!(
                    m.health.failures.len(),
                    3,
                    "original attempt plus both restarts each failed"
                );
                assert!(!m.halted && !m.completed);
            }
            None => {
                assert!(m.halted, "an unquarantined doomed machine healed");
                assert_eq!(m.health.failures.len(), 2);
            }
        }
    }
    let (ha, hb) = (HealthReport::of(&a.machines), HealthReport::of(&b.machines));
    // Pin the seed's outcome: checkpoint restarts genuinely heal at
    // least one machine (restart progress is real), and at least one
    // machine exhausts its budget into quarantine.
    assert!(!ha.quarantined.is_empty(), "no machine was quarantined");
    assert!(
        ha.quarantined.len() < a.machines.len(),
        "no machine healed through restarts"
    );
    // Quarantine is itself part of the determinism contract.
    assert_eq!(ha, hb, "quarantine outcome depends on threads");
    assert_eq!(ha.quarantine_hash(), hb.quarantine_hash());
    // The healthy merge folds exactly the non-quarantined machines.
    let mut healthy = ring_metrics::MetricsSnapshot::default();
    for m in a.machines.iter().filter(|m| !m.health.is_quarantined()) {
        healthy.merge(&m.snapshot);
    }
    assert_eq!(
        a.merged.to_json(),
        healthy.to_json(),
        "quarantined machines must never reach the healthy merge"
    );
}

#[test]
fn host_kill_injector_quarantines_without_perturbing_healthy_machines() {
    let plain = FleetConfig {
        machines: 4,
        threads: 2,
        ..FleetConfig::default()
    };
    let killed = FleetConfig {
        supervisor: SupervisorConfig {
            kill_machine: Some(2),
            restart_budget: 1,
            ..SupervisorConfig::default()
        },
        ..plain
    };
    let baseline = run_fleet(&plain);
    let result = run_fleet(&killed);
    assert!(
        result.member_errors.is_empty(),
        "kills are health, not errors"
    );

    let victim = &result.machines[2];
    let q = victim
        .health
        .quarantined
        .as_ref()
        .expect("the killed machine ends quarantined");
    assert_eq!(q.class, FailureClass::HostPanic);
    assert!(q.detail.contains("kill injector"), "{}", q.detail);
    assert_eq!(
        victim.health.failures.len(),
        2,
        "one original try + one restart"
    );

    // Every other machine's result is bit-identical to the kill-free
    // fleet: quarantine is perfectly isolated.
    for id in [0, 1, 3] {
        let (b, r) = (&baseline.machines[id], &result.machines[id]);
        assert_eq!(b.instructions, r.instructions);
        assert_eq!(b.cycles, r.cycles);
        assert_eq!(
            b.snapshot.to_json(),
            r.snapshot.to_json(),
            "machine {id} perturbed by machine 2's quarantine"
        );
    }

    let health = HealthReport::of(&result.machines);
    assert_eq!(health.quarantined.len(), 1);
    assert_eq!(health.quarantined[0].id, 2);
    assert_eq!(
        health.failures_by_class[FailureClass::HostPanic as usize],
        2
    );
}

#[test]
fn hot_chaos_fleet_heals_and_reports() {
    // A campaign hot enough to inject plenty of faults; ring-0 recovery
    // plus the supervisor must leave every machine halted or
    // quarantined, and the health report must account for the faults.
    let cfg = FleetConfig {
        machines: 8,
        threads: 4,
        mix: WorkloadMix::Mixed,
        supervisor: SupervisorConfig {
            chaos: Some(ChaosParams {
                seed: 0xDEAD_BEEF,
                mean_interval: 100,
            }),
            checkpoint_every: 250,
            ..SupervisorConfig::default()
        },
        ..FleetConfig::default()
    };
    let result = run_fleet(&cfg);
    assert!(result.member_errors.is_empty());
    for m in &result.machines {
        assert!(
            m.halted || m.health.is_quarantined(),
            "machine {} neither halted nor quarantined",
            m.spec.id
        );
    }
    let health = HealthReport::of(&result.machines);
    assert!(
        health.recoveries > 0,
        "a campaign this hot must exercise ring-0 recovery"
    );
}
