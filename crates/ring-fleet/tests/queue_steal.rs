//! Property test for the work-stealing run queue: under real
//! multi-thread contention, with steals provoked by jittered work,
//! every job index is executed exactly once — no loss, no duplication.

use proptest::prelude::*;
use ring_fleet::queue::RunQueue;
use std::sync::Mutex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once execution over varying fleet shapes and work skew.
    #[test]
    fn steal_half_executes_every_index_exactly_once(
        (jobs, workers) in (0usize..400, 1usize..9),
        salt in any::<u64>(),
    ) {
        let q = RunQueue::new(jobs, workers);
        let counts = Mutex::new(vec![0u32; jobs]);
        std::thread::scope(|s| {
            for w in 0..workers {
                let q = &q;
                let counts = &counts;
                s.spawn(move || {
                    while let Some(i) = q.next(w) {
                        // Skewed artificial work so some workers drain
                        // early and steal from the slow ones.
                        if (i as u64 ^ salt).is_multiple_of(5) {
                            std::thread::yield_now();
                        }
                        counts.lock().unwrap()[i] += 1;
                    }
                });
            }
        });
        let counts = counts.into_inner().unwrap();
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, 1, "index {} executed {} times", i, c);
        }
    }
}
