//! The fleet determinism contract, pinned.
//!
//! Host threading is a scheduling convenience, never an input: a fleet
//! run's merged snapshot must be bit-identical across worker-thread
//! counts, and any single member must be bit-identical to the same
//! spec run standalone on a private flat memory (the `runasm`-style
//! single-machine path). The copy-on-write boot image is likewise
//! required to be architecturally invisible.

use ring_fleet::report::{fleet_json, fnv1a64, HealthReport};
use ring_fleet::{
    build_image, run_fleet, run_member, run_standalone, ChaosParams, FleetConfig, SupervisorConfig,
    WorkloadMix,
};

fn small_fleet() -> FleetConfig {
    FleetConfig {
        machines: 16,
        mix: WorkloadMix::Mixed,
        ..FleetConfig::default()
    }
}

#[test]
fn merged_snapshot_is_bit_identical_across_thread_counts() {
    let one = run_fleet(&FleetConfig {
        threads: 1,
        ..small_fleet()
    });
    let eight = run_fleet(&FleetConfig {
        threads: 8,
        ..small_fleet()
    });
    assert_eq!(one.threads, 1);
    assert_eq!(eight.threads, 8);
    let json_one = one.merged.to_json();
    let json_eight = eight.merged.to_json();
    assert_eq!(json_one, json_eight, "merged snapshot depends on threads");
    assert_eq!(fnv1a64(json_one.as_bytes()), fnv1a64(json_eight.as_bytes()));
    // Per-machine results are index-addressed and equally invariant.
    for (a, b) in one.machines.iter().zip(eight.machines.iter()) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dirty_pages, b.dirty_pages);
        assert_eq!(
            a.snapshot.to_json(),
            b.snapshot.to_json(),
            "machine {} snapshot depends on threads",
            a.spec.id
        );
    }
}

#[test]
fn fleet_member_is_bit_identical_to_standalone_flat_run() {
    let cfg = small_fleet();
    for id in [0, 1] {
        // One machine of each workload kind under the mixed assignment.
        let spec = cfg.spec(id);
        let image = build_image(&cfg, spec.kind);
        let member = run_member(&image, &cfg, spec);
        let standalone = run_standalone(&cfg, spec);
        assert!(member.completed && standalone.completed);
        assert_eq!(member.instructions, standalone.instructions);
        assert_eq!(member.cycles, standalone.cycles);
        assert_eq!(
            member.snapshot.to_json(),
            standalone.snapshot.to_json(),
            "machine {id}: copy-on-write boot must be architecturally invisible"
        );
        assert_eq!(
            standalone.dirty_pages, 0,
            "flat boots have no copy-on-write overlay"
        );
    }
}

#[test]
fn members_share_almost_all_of_the_image() {
    let cfg = small_fleet();
    let result = run_fleet(&cfg);
    let image_pages = result.image_words.div_ceil(ring_segmem::COW_PAGE_WORDS) as u64;
    assert!(image_pages > 0);
    for m in &result.machines {
        assert!(
            u64::from(m.dirty_pages) <= image_pages / 4,
            "machine {} dirtied {}/{} pages — the image is not shared",
            m.spec.id,
            m.dirty_pages,
            image_pages
        );
    }
}

#[test]
fn fleet_completes_and_reports_consistently() {
    let cfg = small_fleet();
    let result = run_fleet(&cfg);
    assert_eq!(result.machines.len(), cfg.machines);
    assert!(result.machines.iter().all(|m| m.completed));
    let sum: u64 = result.machines.iter().map(|m| m.instructions).sum();
    assert_eq!(
        result.merged.instructions, sum,
        "merged totals equal the sum of members"
    );
    assert!(result.member_errors.is_empty(), "no host-side failures");
    let json = fleet_json(&cfg, &result, true);
    for needle in [
        "\"schema\": \"ring-fleet/bench/v2\"",
        "\"machines\": 16",
        "\"pagestorm\": 8",
        "\"gatestorm\": 8",
        "\"merged_snapshot_hash\": \"fnv1a64:",
        "\"p50\"",
        "\"p99\"",
        "\"shared_fraction\"",
        "\"chaos\": {\"enabled\": false",
        "\"quarantine_hash\": \"fnv1a64:",
        "\"member_errors\": 0",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

fn chaotic_fleet(threads: usize) -> FleetConfig {
    FleetConfig {
        threads,
        supervisor: SupervisorConfig {
            chaos: Some(ChaosParams {
                seed: 0xC4A05,
                mean_interval: 300,
            }),
            checkpoint_every: 500,
            ..SupervisorConfig::default()
        },
        ..small_fleet()
    }
}

#[test]
fn chaos_fleet_is_bit_identical_across_thread_counts() {
    let one = run_fleet(&chaotic_fleet(1));
    let eight = run_fleet(&chaotic_fleet(8));
    assert!(one.member_errors.is_empty() && eight.member_errors.is_empty());
    assert_eq!(
        one.merged.to_json(),
        eight.merged.to_json(),
        "chaos merged snapshot depends on threads"
    );
    let health_one = HealthReport::of(&one.machines);
    let health_eight = HealthReport::of(&eight.machines);
    assert_eq!(health_one, health_eight, "health report depends on threads");
    assert_eq!(health_one.quarantine_hash(), health_eight.quarantine_hash());
    assert!(
        health_one.recoveries > 0,
        "the campaign must actually inject (got a silent no-op)"
    );
    for (a, b) in one.machines.iter().zip(eight.machines.iter()) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(
            a.snapshot.to_json(),
            b.snapshot.to_json(),
            "machine {} chaos snapshot depends on threads",
            a.spec.id
        );
    }
}

#[test]
fn chaos_member_is_bit_identical_to_standalone_flat_run() {
    let cfg = chaotic_fleet(1);
    for id in [0, 1] {
        let spec = cfg.spec(id);
        let image = build_image(&cfg, spec.kind);
        let member = run_member(&image, &cfg, spec);
        let standalone = run_standalone(&cfg, spec);
        assert_eq!(member.instructions, standalone.instructions);
        assert_eq!(member.cycles, standalone.cycles);
        assert_eq!(member.halted, standalone.halted);
        assert_eq!(member.health.restarts, standalone.health.restarts);
        assert_eq!(
            member.snapshot.to_json(),
            standalone.snapshot.to_json(),
            "machine {id}: supervision must not make copy-on-write visible"
        );
    }
}

#[test]
fn different_seeds_change_the_fleet() {
    let a = run_fleet(&small_fleet());
    let b = run_fleet(&FleetConfig {
        seed: 1,
        ..small_fleet()
    });
    assert_ne!(
        a.merged.to_json(),
        b.merged.to_json(),
        "the seed must actually steer the workloads"
    );
}
