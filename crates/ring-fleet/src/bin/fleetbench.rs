//! Fleet-scale benchmark: thousands of deterministic machines over a
//! shared copy-on-write boot image.
//!
//! ```text
//! cargo run --release -p ring-fleet --bin fleetbench [-- OPTIONS]
//!
//!   --quick          256 machines (CI smoke); default is 10,000
//!   --machines N     explicit fleet size
//!   --threads K      worker threads (default: host parallelism)
//!   --seed S         fleet seed (default 0x5EED0F1EE7)
//!   --mix M          pagestorm | gatestorm | mixed (default mixed)
//!   --chaos-seed S   arm the chaos campaign with fleet chaos seed S
//!   --chaos-rate R   mean cycles between faults (default 50000;
//!                    implies --chaos-seed 0 if not given)
//!   --out FILE       report path (default BENCH_fleet.json)
//! ```
//!
//! Boots every machine from one frozen image per workload kind,
//! runs the fleet across a work-stealing queue, prints aggregate
//! simulated-instructions-per-second plus p50/p99 per-machine
//! wall-clock, and writes a `ring-fleet/bench/v2` JSON report whose
//! `merged_snapshot_hash` — and, under chaos, health report and
//! quarantine hash — are bit-stable across `--threads` values for a
//! fixed seed — the determinism contract CI enforces.

use ring_fleet::report::{fleet_json, fnv1a64, HealthReport, Percentiles};
use ring_fleet::{run_fleet, ChaosParams, FleetConfig, WorkloadMix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut cfg = FleetConfig {
        machines: if quick { 256 } else { 10_000 },
        ..FleetConfig::default()
    };
    let mut out = "BENCH_fleet.json".to_string();
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_rate: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} takes a value"))
                .clone()
        };
        match a.as_str() {
            "--quick" => {}
            "--machines" => cfg.machines = take("--machines").parse().expect("machine count"),
            "--threads" => cfg.threads = take("--threads").parse().expect("thread count"),
            "--seed" => cfg.seed = take("--seed").parse().expect("seed"),
            "--mix" => {
                cfg.mix = match take("--mix").as_str() {
                    "pagestorm" => WorkloadMix::PageStorm,
                    "gatestorm" => WorkloadMix::GateStorm,
                    "mixed" => WorkloadMix::Mixed,
                    other => panic!("unknown mix {other:?} (pagestorm|gatestorm|mixed)"),
                }
            }
            "--chaos-seed" => chaos_seed = Some(take("--chaos-seed").parse().expect("chaos seed")),
            "--chaos-rate" => chaos_rate = Some(take("--chaos-rate").parse().expect("chaos rate")),
            "--out" => out = take("--out"),
            other => panic!("unknown option {other:?}"),
        }
    }
    if chaos_seed.is_some() || chaos_rate.is_some() {
        cfg.supervisor.chaos = Some(ChaosParams {
            seed: chaos_seed.unwrap_or(0),
            mean_interval: chaos_rate.unwrap_or(50_000).max(1),
        });
    }

    let result = run_fleet(&cfg);
    let completed = result.machines.iter().filter(|m| m.completed).count();
    let instructions: u64 = result.machines.iter().map(|m| m.instructions).sum();
    let wall_ns: Vec<u64> = result.machines.iter().map(|m| m.wall_ns).collect();
    let wall = Percentiles::of(&wall_ns);
    let dirty: Vec<u64> = result
        .machines
        .iter()
        .map(|m| u64::from(m.dirty_pages))
        .collect();
    let dirty_stats = Percentiles::of(&dirty);
    let image_pages = result.image_words.div_ceil(ring_segmem::COW_PAGE_WORDS);
    let hash = fnv1a64(result.merged.to_json().as_bytes());

    println!(
        "fleet: {} machines, {} threads, seed {:#x}",
        result.machines.len(),
        result.threads,
        cfg.seed
    );
    println!(
        "  completed {completed}/{}, {instructions} instructions in {:.3}s host \
         ({:.0} aggregate ips)",
        result.machines.len(),
        result.wall_seconds,
        instructions as f64 / result.wall_seconds.max(1e-9),
    );
    println!(
        "  per-machine wall-clock: p50 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        wall.p50 as f64 / 1e6,
        wall.p99 as f64 / 1e6,
        wall.max as f64 / 1e6,
    );
    println!(
        "  cow image: {} pages shared, dirty p50 {} p99 {} per machine",
        image_pages, dirty_stats.p50, dirty_stats.p99,
    );
    println!("  merged snapshot hash: fnv1a64:{hash:016x}");
    let health = HealthReport::of(&result.machines);
    if cfg.supervisor.chaos.is_some() {
        println!(
            "  chaos: {} ring-0 recoveries, {} restarts on {} machines \
             (mean {:.0} cycles to recover), {} quarantined",
            health.recoveries,
            health.restarts_total,
            health.restarted_machines,
            health.mean_cycles_to_recover(),
            health.quarantined.len(),
        );
        println!(
            "  quarantine hash: fnv1a64:{:016x}",
            health.quarantine_hash()
        );
    }

    std::fs::write(&out, fleet_json(&cfg, &result, quick)).expect("write report");
    println!("wrote {out}");

    assert!(
        result.member_errors.is_empty(),
        "host-side member errors: {:?}",
        result.member_errors
    );
    if cfg.supervisor.chaos.is_some() {
        // Under chaos, killed (confined) processes make `completed`
        // too strict; health means every machine either halted cleanly
        // or was explicitly quarantined.
        let accounted = result
            .machines
            .iter()
            .filter(|m| m.halted || m.health.is_quarantined())
            .count();
        assert_eq!(
            accounted,
            result.machines.len(),
            "every machine must halt or be quarantined"
        );
    } else {
        assert_eq!(
            completed,
            result.machines.len(),
            "every machine must run its workload to completion"
        );
    }
}
