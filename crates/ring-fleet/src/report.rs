//! Fleet reporting: exact percentiles, a stable snapshot hash, and the
//! `ring-fleet/bench/v1` JSON trajectory.

use crate::{FleetConfig, FleetResult, WorkloadKind};

/// Exact order statistics over a set of per-machine values (unlike the
/// bucketed [`ring_metrics::HistogramSnapshot`] percentiles, these are
/// computed from the full sorted sample).
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Nearest-rank order statistics of `values` (need not be sorted).
    pub fn of(values: &[u64]) -> Percentiles {
        if values.is_empty() {
            return Percentiles::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let n = sorted.len();
            let k = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        Percentiles {
            min: sorted[0],
            p50: rank(0.50),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1}}}",
            self.min, self.p50, self.p99, self.max, self.mean
        )
    }
}

/// FNV-1a 64-bit hash — the fleet's merged-snapshot fingerprint. Tiny,
/// dependency-free, and stable across platforms; CI compares it across
/// worker-thread counts to enforce the determinism contract.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serializes a fleet run as `ring-fleet/bench/v1` JSON.
pub fn fleet_json(cfg: &FleetConfig, result: &FleetResult, quick: bool) -> String {
    let count = |k: WorkloadKind| result.machines.iter().filter(|m| m.spec.kind == k).count();
    let completed = result.machines.iter().filter(|m| m.completed).count();
    let instructions: u64 = result.machines.iter().map(|m| m.instructions).sum();
    let cycles: u64 = result.machines.iter().map(|m| m.cycles).sum();
    let wall_ns: Vec<u64> = result.machines.iter().map(|m| m.wall_ns).collect();
    let instr: Vec<u64> = result.machines.iter().map(|m| m.instructions).collect();
    let dirty: Vec<u64> = result
        .machines
        .iter()
        .map(|m| u64::from(m.dirty_pages))
        .collect();
    let image_pages = result.image_words.div_ceil(ring_segmem::COW_PAGE_WORDS);
    let dirty_stats = Percentiles::of(&dirty);
    let shared_fraction = if image_pages > 0 {
        1.0 - (dirty_stats.mean / image_pages as f64).min(1.0)
    } else {
        0.0
    };
    let hash = fnv1a64(result.merged.to_json().as_bytes());
    format!(
        "{{\n  \"schema\": \"ring-fleet/bench/v1\",\n  \"quick\": {quick},\n  \
         \"machines\": {machines},\n  \"threads\": {threads},\n  \"seed\": {seed},\n  \
         \"workloads\": {{\"pagestorm\": {pagestorm}, \"gatestorm\": {gatestorm}}},\n  \
         \"wall_seconds\": {wall:.6},\n  \
         \"aggregate\": {{\"instructions\": {instructions}, \"cycles\": {cycles}, \
         \"ips\": {ips:.1}, \"completed\": {completed}, \
         \"context_switches\": {switches}, \"page_faults\": {pfaults}, \
         \"ring_crossings\": {crossings}}},\n  \
         \"per_machine\": {{\n    \"wall_ns\": {wall_pct},\n    \"instructions\": {instr_pct}\n  }},\n  \
         \"cow\": {{\"phys_words\": {words}, \"image_pages\": {image_pages}, \
         \"dirty_pages\": {dirty_pct}, \"shared_fraction\": {shared:.4}}},\n  \
         \"merged_snapshot_hash\": \"fnv1a64:{hash:016x}\"\n}}\n",
        machines = result.machines.len(),
        threads = result.threads,
        seed = cfg.seed,
        pagestorm = count(WorkloadKind::PageStorm),
        gatestorm = count(WorkloadKind::GateStorm),
        wall = result.wall_seconds,
        ips = instructions as f64 / result.wall_seconds.max(1e-9),
        switches = result.merged.sched.context_switches,
        pfaults = result.merged.sched.page_faults(),
        crossings = result.merged.ring_changes,
        wall_pct = Percentiles::of(&wall_ns).json(),
        instr_pct = Percentiles::of(&instr).json(),
        words = cfg.phys_words,
        dirty_pct = dirty_stats.json(),
        shared = shared_fraction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let p = Percentiles::of(&[5, 1, 9, 3, 7]);
        assert_eq!(p.min, 1);
        assert_eq!(p.p50, 5);
        assert_eq!(p.p99, 9);
        assert_eq!(p.max, 9);
        assert!((p.mean - 5.0).abs() < 1e-9);
        let empty = Percentiles::of(&[]);
        assert_eq!((empty.min, empty.max), (0, 0));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
