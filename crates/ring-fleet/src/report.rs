//! Fleet reporting: exact percentiles, stable snapshot hashes, the
//! fleet health report, and the `ring-fleet/bench/v2` JSON trajectory.

use ring_chaos::FailureClass;

use crate::{FleetConfig, FleetResult, MachineResult, WorkloadKind};

/// Exact order statistics over a set of per-machine values (unlike the
/// bucketed [`ring_metrics::HistogramSnapshot`] percentiles, these are
/// computed from the full sorted sample).
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Nearest-rank order statistics of `values` (need not be sorted).
    pub fn of(values: &[u64]) -> Percentiles {
        if values.is_empty() {
            return Percentiles::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let n = sorted.len();
            let k = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[k - 1]
        };
        Percentiles {
            min: sorted[0],
            p50: rank(0.50),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1}}}",
            self.min, self.p50, self.p99, self.max, self.mean
        )
    }
}

/// FNV-1a 64-bit hash — the fleet's merged-snapshot fingerprint. Tiny,
/// dependency-free, and stable across platforms; CI compares it across
/// worker-thread counts to enforce the determinism contract.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One quarantined machine in the health report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Fleet index of the quarantined machine.
    pub id: usize,
    /// Class of the final (quarantining) failure.
    pub class: FailureClass,
    /// Attempts the supervisor made before giving up (original run
    /// plus every restart).
    pub attempts: u32,
}

/// The fleet's self-healing ledger, folded from per-machine health in
/// index order — bit-identical across worker-thread counts, exactly
/// like the merged metrics snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Checkpoint restarts across the fleet.
    pub restarts_total: u64,
    /// Machines that needed at least one restart.
    pub restarted_machines: u64,
    /// Terminal attempt failures per class, in [`FailureClass::ALL`]
    /// order.
    pub failures_by_class: [u64; FailureClass::ALL.len()],
    /// Quarantined machines in index order.
    pub quarantined: Vec<QuarantineEntry>,
    /// Faults ring-0 recovery survived (summed `chaos.recovered`
    /// extras) — the layer *below* the supervisor doing its job.
    pub recoveries: u64,
    /// Simulated cycles the fleet spent recovering (rolled-back work
    /// plus backoff, summed over every restart).
    pub recovery_cycles_total: u64,
}

impl HealthReport {
    /// Folds per-machine health, in index order.
    pub fn of(machines: &[MachineResult]) -> HealthReport {
        let mut report = HealthReport::default();
        for m in machines {
            report.restarts_total += u64::from(m.health.restarts);
            report.restarted_machines += u64::from(m.health.restarts > 0);
            for f in &m.health.failures {
                report.failures_by_class[f.class as usize] += 1;
            }
            if let Some(q) = &m.health.quarantined {
                report.quarantined.push(QuarantineEntry {
                    id: m.spec.id,
                    class: q.class,
                    attempts: m.health.failures.len() as u32,
                });
            }
            report.recoveries += m.snapshot.extra("chaos.recovered").unwrap_or(0);
            report.recovery_cycles_total += m.health.recovery_cycles;
        }
        report
    }

    /// Mean simulated cycles per restart (0.0 when nothing restarted).
    pub fn mean_cycles_to_recover(&self) -> f64 {
        if self.restarts_total == 0 {
            0.0
        } else {
            self.recovery_cycles_total as f64 / self.restarts_total as f64
        }
    }

    /// FNV-1a hash of the canonical quarantine list (`id:class:attempts`
    /// lines, index order). CI compares it across thread counts; the
    /// healthy merged-snapshot hash deliberately excludes quarantined
    /// machines, so this is their determinism fingerprint.
    pub fn quarantine_hash(&self) -> u64 {
        let mut canon = String::new();
        for q in &self.quarantined {
            canon.push_str(&format!("{}:{}:{}\n", q.id, q.class, q.attempts));
        }
        fnv1a64(canon.as_bytes())
    }

    fn json(&self, cfg: &FleetConfig) -> String {
        let failures: Vec<String> = FailureClass::ALL
            .iter()
            .map(|c| format!("\"{}\": {}", c.key(), self.failures_by_class[*c as usize]))
            .collect();
        let quarantined: Vec<String> = self
            .quarantined
            .iter()
            .map(|q| {
                format!(
                    "{{\"id\": {}, \"class\": \"{}\", \"attempts\": {}}}",
                    q.id, q.class, q.attempts
                )
            })
            .collect();
        let (enabled, seed, interval) = match cfg.supervisor.chaos {
            Some(ch) => (true, ch.seed, ch.mean_interval),
            None => (false, 0, 0),
        };
        format!(
            "{{\"enabled\": {enabled}, \"seed\": {seed}, \"mean_interval\": {interval}, \
             \"restarts\": {restarts}, \"restarted_machines\": {rmachines}, \
             \"recoveries\": {recoveries}, \"mean_cycles_to_recover\": {mctr:.1}, \
             \"failures\": {{{failures}}}, \"quarantined\": [{quarantined}], \
             \"quarantine_hash\": \"fnv1a64:{qhash:016x}\"}}",
            restarts = self.restarts_total,
            rmachines = self.restarted_machines,
            recoveries = self.recoveries,
            mctr = self.mean_cycles_to_recover(),
            failures = failures.join(", "),
            quarantined = quarantined.join(", "),
            qhash = self.quarantine_hash(),
        )
    }
}

/// Serializes a fleet run as `ring-fleet/bench/v2` JSON (v2 added the
/// `chaos` health section and `member_errors`).
pub fn fleet_json(cfg: &FleetConfig, result: &FleetResult, quick: bool) -> String {
    let count = |k: WorkloadKind| result.machines.iter().filter(|m| m.spec.kind == k).count();
    let completed = result.machines.iter().filter(|m| m.completed).count();
    let instructions: u64 = result.machines.iter().map(|m| m.instructions).sum();
    let cycles: u64 = result.machines.iter().map(|m| m.cycles).sum();
    let wall_ns: Vec<u64> = result.machines.iter().map(|m| m.wall_ns).collect();
    let instr: Vec<u64> = result.machines.iter().map(|m| m.instructions).collect();
    let dirty: Vec<u64> = result
        .machines
        .iter()
        .map(|m| u64::from(m.dirty_pages))
        .collect();
    let image_pages = result.image_words.div_ceil(ring_segmem::COW_PAGE_WORDS);
    let dirty_stats = Percentiles::of(&dirty);
    let shared_fraction = if image_pages > 0 {
        1.0 - (dirty_stats.mean / image_pages as f64).min(1.0)
    } else {
        0.0
    };
    let hash = fnv1a64(result.merged.to_json().as_bytes());
    let health = HealthReport::of(&result.machines);
    let halted = result.machines.iter().filter(|m| m.halted).count();
    format!(
        "{{\n  \"schema\": \"ring-fleet/bench/v2\",\n  \"quick\": {quick},\n  \
         \"machines\": {machines},\n  \"threads\": {threads},\n  \"seed\": {seed},\n  \
         \"workloads\": {{\"pagestorm\": {pagestorm}, \"gatestorm\": {gatestorm}}},\n  \
         \"wall_seconds\": {wall:.6},\n  \
         \"aggregate\": {{\"instructions\": {instructions}, \"cycles\": {cycles}, \
         \"ips\": {ips:.1}, \"completed\": {completed}, \"halted\": {halted}, \
         \"context_switches\": {switches}, \"page_faults\": {pfaults}, \
         \"ring_crossings\": {crossings}}},\n  \
         \"per_machine\": {{\n    \"wall_ns\": {wall_pct},\n    \"instructions\": {instr_pct}\n  }},\n  \
         \"cow\": {{\"phys_words\": {words}, \"image_pages\": {image_pages}, \
         \"dirty_pages\": {dirty_pct}, \"shared_fraction\": {shared:.4}}},\n  \
         \"chaos\": {chaos},\n  \
         \"member_errors\": {member_errors},\n  \
         \"merged_snapshot_hash\": \"fnv1a64:{hash:016x}\"\n}}\n",
        chaos = health.json(cfg),
        member_errors = result.member_errors.len(),
        machines = result.machines.len(),
        threads = result.threads,
        seed = cfg.seed,
        pagestorm = count(WorkloadKind::PageStorm),
        gatestorm = count(WorkloadKind::GateStorm),
        wall = result.wall_seconds,
        ips = instructions as f64 / result.wall_seconds.max(1e-9),
        switches = result.merged.sched.context_switches,
        pfaults = result.merged.sched.page_faults(),
        crossings = result.merged.ring_changes,
        wall_pct = Percentiles::of(&wall_ns).json(),
        instr_pct = Percentiles::of(&instr).json(),
        words = cfg.phys_words,
        dirty_pct = dirty_stats.json(),
        shared = shared_fraction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let p = Percentiles::of(&[5, 1, 9, 3, 7]);
        assert_eq!(p.min, 1);
        assert_eq!(p.p50, 5);
        assert_eq!(p.p99, 9);
        assert_eq!(p.max, 9);
        assert!((p.mean - 5.0).abs() < 1e-9);
        let empty = Percentiles::of(&[]);
        assert_eq!((empty.min, empty.max), (0, 0));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
