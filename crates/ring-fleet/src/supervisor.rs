//! The self-healing fleet supervisor: checkpoint, restart, quarantine.
//!
//! The paper's recovery story is layered: hardware detects an error,
//! traps to ring 0, and ring-0 software repairs or confines the
//! damage. This module supplies the layer *above* ring 0 — the fleet
//! operator. Each supervised machine runs its chaos campaign in
//! cycle-bounded slices; at every slice boundary whose protection
//! invariants hold, the supervisor captures a full
//! [`SystemCheckpoint`]. When a machine fails terminally — wedged past
//! its watchdog, double-faulted, invariant-broken after a recovery
//! that claimed success, or lost to a host panic — the supervisor
//! restarts it from the latest good checkpoint with a fresh
//! (attempt-salted) fault stream and a deterministic, exponentially
//! backed-off charge of dead cycles. A machine that exhausts its
//! restart budget is quarantined: its result is kept and reported, but
//! excluded from the fleet's healthy merged snapshot.
//!
//! Everything the supervisor does is a pure function of the fleet
//! seed, the machine spec, and the supervisor config — no wall clock,
//! no host randomness — so restarts, quarantines, and the merged
//! snapshot are bit-identical across worker-thread counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use ring_chaos::{mix_seed, FailureClass, FaultPlan, MachineFailure};
use ring_cpu::machine::RunExit;
use ring_os::{System, SystemCheckpoint};

use crate::{install_workload, FleetConfig, MachineResult, MachineSpec};

/// Chaos-campaign parameters shared by every supervised machine. Each
/// machine's actual fault stream is seeded from these plus its own
/// spec seed and the attempt number, so streams are uncorrelated
/// across machines and do not repeat across restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosParams {
    /// Fleet-level chaos seed (mixed with each machine's spec seed).
    pub seed: u64,
    /// Mean simulated cycles between injected faults (lower = hotter).
    pub mean_interval: u64,
}

/// Supervisor policy: checkpoint cadence, watchdog, restart budget.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Chaos campaign to run on every machine; `None` disables both
    /// injection and the slicing/checkpoint machinery (a chaos-free
    /// fleet runs exactly as an unsupervised one).
    pub chaos: Option<ChaosParams>,
    /// Simulated cycles between checkpoints (and watchdog polls).
    pub checkpoint_every: u64,
    /// Restarts allowed before a machine is quarantined.
    pub restart_budget: u32,
    /// Dead simulated cycles charged before restart attempt `n`,
    /// scaled by `2^(n-1)` (deterministic exponential backoff).
    pub backoff_cycles: u64,
    /// Simulated-cycle ceiling per attempt; a machine still running at
    /// the ceiling is classified [`FailureClass::Wedged`].
    pub watchdog_cycles: u64,
    /// Host-level kill injector: every attempt of this machine panics
    /// on the worker thread, exercising the [`FailureClass::HostPanic`]
    /// path (tests and demos; `None` in production).
    pub kill_machine: Option<usize>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            chaos: None,
            checkpoint_every: 250_000,
            restart_budget: 2,
            backoff_cycles: 25_000,
            watchdog_cycles: 1_000_000_000,
            kill_machine: None,
        }
    }
}

/// One supervised machine's health ledger.
#[derive(Clone, Debug, Default)]
pub struct MachineHealth {
    /// Restarts performed (each preceded by a recorded failure).
    pub restarts: u32,
    /// Every terminal attempt failure, in attempt order (includes the
    /// final one when the machine was quarantined).
    pub failures: Vec<MachineFailure>,
    /// Set when the machine exhausted its restart budget; carries the
    /// final failure.
    pub quarantined: Option<MachineFailure>,
    /// Simulated cycles spent recovering: for each restart, the work
    /// rolled back to the checkpoint plus the backoff charge.
    pub recovery_cycles: u64,
}

impl MachineHealth {
    /// Whether the machine ended quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.is_some()
    }
}

/// What one attempt produced: the machine-derived result fields plus
/// either clean completion or a classified failure.
struct Attempt {
    outcome: Result<(), MachineFailure>,
    instructions: u64,
    cycles: u64,
    completed: bool,
    halted: bool,
    dirty_pages: u32,
    snapshot: ring_metrics::MetricsSnapshot,
}

/// Runs one attempt: boot + install (replaying the world build so the
/// native-procedure registry matches the checkpoint's memory image),
/// restore the latest good checkpoint if this is a restart, arm the
/// attempt-salted chaos stream, then run in checkpoint-cadence slices
/// under the watchdog.
fn run_attempt(
    boot: &dyn Fn() -> System,
    cfg: &FleetConfig,
    spec: MachineSpec,
    attempt: u32,
    latest: &mut Option<SystemCheckpoint>,
) -> Attempt {
    let sup = &cfg.supervisor;
    let mut sys = boot();
    let procs = install_workload(&mut sys, cfg, spec);
    sys.enable_metrics();
    sys.machine.set_timer(Some(cfg.quantum));
    if attempt > 0 {
        if let Some(ck) = latest.as_ref() {
            sys.restore_checkpoint(ck)
                .expect("checkpoint restores onto an identically-built system");
        }
        // Exponential backoff, in dead simulated cycles: deterministic,
        // and visible to the cycle-addressed chaos stream.
        sys.machine
            .advance_cycles(sup.backoff_cycles << (attempt - 1).min(16));
    }
    if let Some(ch) = sup.chaos {
        // Fresh fault stream per attempt: transient faults do not
        // repeat, so restarting from a checkpoint can actually help.
        sys.enable_chaos(FaultPlan::Campaign {
            seed: mix_seed(mix_seed(ch.seed, spec.seed), u64::from(attempt)),
            mean_interval: ch.mean_interval,
        });
    }

    let fail = |class: FailureClass, at_cycles: u64, detail: String| MachineFailure {
        class,
        at_cycles,
        attempt,
        detail,
    };
    let mut budget_left = cfg.budget;
    let outcome = loop {
        let cycles = sys.machine.cycles();
        if cycles >= sup.watchdog_cycles {
            break Err(fail(
                FailureClass::Wedged,
                cycles,
                format!("watchdog: still running at cycle {cycles}"),
            ));
        }
        let watermark = (cycles / sup.checkpoint_every + 1)
            .saturating_mul(sup.checkpoint_every)
            .min(sup.watchdog_cycles);
        let before = sys.machine.stats().instructions;
        let exit = sys.machine.run_to_cycle(watermark, budget_left);
        budget_left -= sys.machine.stats().instructions - before;
        match exit {
            RunExit::Halted => match sys.check_invariants() {
                Ok(()) => break Ok(()),
                Err(v) => {
                    break Err(fail(
                        FailureClass::InvariantViolation,
                        sys.machine.cycles(),
                        v.to_string(),
                    ))
                }
            },
            RunExit::DoubleFault(f) => {
                break Err(fail(
                    FailureClass::KernelPanic,
                    sys.machine.cycles(),
                    format!("double fault: {f:?}"),
                ))
            }
            RunExit::BudgetExhausted => {
                break Err(fail(
                    FailureClass::Wedged,
                    sys.machine.cycles(),
                    format!("instruction budget ({}) exhausted", cfg.budget),
                ))
            }
            RunExit::CycleLimit => match sys.check_invariants() {
                // A slice boundary with intact invariants is a good
                // restart point; one with broken invariants means a
                // recovery lied about succeeding.
                Ok(()) => *latest = Some(sys.checkpoint()),
                Err(v) => {
                    break Err(fail(
                        FailureClass::InvariantViolation,
                        sys.machine.cycles(),
                        v.to_string(),
                    ))
                }
            },
        }
    };

    let halted = outcome.is_ok();
    let st = sys.state.borrow();
    let all_exited = procs
        .iter()
        .all(|p| st.processes[p.pid].aborted.as_deref() == Some("exit"));
    drop(st);
    Attempt {
        completed: halted && all_exited,
        halted,
        outcome,
        instructions: sys.machine.stats().instructions,
        cycles: sys.machine.cycles(),
        dirty_pages: sys.machine.phys().dirty_pages(),
        snapshot: sys.metrics_snapshot(),
    }
}

/// Extracts a panic payload's message (host-panic classification).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `spec` under the supervisor: attempts, checkpoints, restarts,
/// and — when the restart budget is spent — quarantine. `boot` must
/// deterministically produce the machine's freshly-booted world (from
/// the shared image for fleet members, from flat memory standalone).
///
/// Worker-thread panics inside an attempt are caught and classified
/// [`FailureClass::HostPanic`]; this function itself never panics on a
/// machine failure.
pub fn run_supervised(
    boot: &dyn Fn() -> System,
    cfg: &FleetConfig,
    spec: MachineSpec,
) -> MachineResult {
    let sup = &cfg.supervisor;
    let start = Instant::now();
    let mut latest: Option<SystemCheckpoint> = None;
    let mut health = MachineHealth::default();
    let mut attempt: u32 = 0;
    loop {
        let killed = sup.kill_machine == Some(spec.id);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if killed {
                panic!("host kill injector: machine {}", spec.id);
            }
            run_attempt(boot, cfg, spec, attempt, &mut latest)
        }));
        let ck_cycles = latest.as_ref().map_or(0, |c| c.cycles);
        let (result, failure) = match caught {
            Ok(att) => {
                let failure = att.outcome.as_ref().err().cloned();
                (
                    MachineResult {
                        spec,
                        instructions: att.instructions,
                        cycles: att.cycles,
                        wall_ns: start.elapsed().as_nanos() as u64,
                        completed: att.completed,
                        halted: att.halted,
                        dirty_pages: att.dirty_pages,
                        snapshot: att.snapshot,
                        health: MachineHealth::default(), // filled below
                    },
                    failure,
                )
            }
            Err(payload) => (
                // The attempt's world died with the panic; report the
                // machine as it stood at its last good checkpoint.
                MachineResult {
                    spec,
                    instructions: 0,
                    cycles: ck_cycles,
                    wall_ns: start.elapsed().as_nanos() as u64,
                    completed: false,
                    halted: false,
                    dirty_pages: 0,
                    snapshot: ring_metrics::MetricsSnapshot::default(),
                    health: MachineHealth::default(),
                },
                Some(MachineFailure {
                    class: FailureClass::HostPanic,
                    at_cycles: ck_cycles,
                    attempt,
                    detail: panic_message(payload),
                }),
            ),
        };
        match failure {
            None => {
                let mut result = result;
                result.health = health;
                return result;
            }
            Some(f) => {
                let rolled_back = f.at_cycles.saturating_sub(ck_cycles);
                health.failures.push(f.clone());
                if attempt >= sup.restart_budget {
                    health.quarantined = Some(f);
                    let mut result = result;
                    result.health = health;
                    return result;
                }
                attempt += 1;
                health.restarts += 1;
                health.recovery_cycles = health
                    .recovery_cycles
                    .saturating_add(rolled_back)
                    .saturating_add(sup.backoff_cycles << (attempt - 1).min(16));
            }
        }
    }
}
