//! A work-stealing run queue over a fixed set of job indices.
//!
//! The fleet runner's scheduling problem is deliberately simple: `n`
//! jobs known up front, each independent, with wildly varying runtimes
//! (a machine that pages heavily can run 10× longer than a gate
//! hammerer). A static split would leave workers idle behind the
//! slowest shard, so each worker owns a contiguous `[lo, hi)` range of
//! indices packed into one `AtomicU64`; it pops from the low end of
//! its own range, and when empty it steals the upper half of the
//! fattest remaining victim range with a single compare-and-swap.
//!
//! Stealing ranges (not items) keeps the common case — a worker
//! draining its own run — at one uncontended CAS per job, and the
//! contiguous ranges preserve index locality. Nothing here affects
//! determinism: *which* worker runs a job never influences the job's
//! result, and the fleet folds results in index order afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Packs a `[lo, hi)` index range into one atomic word.
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

/// Unpacks a `[lo, hi)` index range.
#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A fixed-size work-stealing queue of job indices `0..total`.
pub struct RunQueue {
    ranges: Vec<AtomicU64>,
}

impl RunQueue {
    /// Splits `total` jobs across `workers` contiguous ranges as
    /// evenly as possible (early workers get the remainder).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero or `total` exceeds `u32::MAX`.
    pub fn new(total: usize, workers: usize) -> RunQueue {
        assert!(workers > 0, "at least one worker");
        assert!(total <= u32::MAX as usize, "job count fits in u32");
        let total = total as u32;
        let workers_u = workers as u32;
        let base = total / workers_u;
        let rem = total % workers_u;
        let mut ranges = Vec::with_capacity(workers);
        let mut lo = 0u32;
        for w in 0..workers_u {
            let len = base + u32::from(w < rem);
            ranges.push(AtomicU64::new(pack(lo, lo + len)));
            lo += len;
        }
        RunQueue { ranges }
    }

    /// Claims the next job index for `worker`: first from its own
    /// range, then by stealing the upper half of the fattest victim.
    /// Returns `None` when every range is empty — the fleet is done.
    pub fn next(&self, worker: usize) -> Option<usize> {
        loop {
            if let Some(i) = self.pop(worker) {
                return Some(i);
            }
            let (victim, remaining) = self.fattest_victim(worker)?;
            // Steal the upper half of the victim's range. On CAS
            // failure somebody raced us; rescan for a victim.
            let cur = self.ranges[victim].load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if hi - lo < remaining {
                continue; // stale scan; retry
            }
            let mid = lo + (hi - lo) / 2;
            if self.ranges[victim]
                .compare_exchange(cur, pack(lo, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Our own range is empty (that is why we are stealing)
                // and empty ranges are never stolen from, so a plain
                // store is race-free.
                self.ranges[worker].store(pack(mid, hi), Ordering::Release);
            }
        }
    }

    /// Pops the lowest index of `worker`'s own range.
    fn pop(&self, worker: usize) -> Option<usize> {
        loop {
            let cur = self.ranges[worker].load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            if self.ranges[worker]
                .compare_exchange(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(lo as usize);
            }
        }
    }

    /// The non-empty victim (id, remaining) with the most jobs left,
    /// excluding `worker`; ranges with fewer than two jobs are left
    /// alone (the owner will finish them faster than a steal settles).
    fn fattest_victim(&self, worker: usize) -> Option<(usize, u32)> {
        let mut best: Option<(usize, u32)> = None;
        for (v, range) in self.ranges.iter().enumerate() {
            if v == worker {
                continue;
            }
            let (lo, hi) = unpack(range.load(Ordering::Acquire));
            let remaining = hi.saturating_sub(lo);
            if remaining >= 2 && best.is_none_or(|(_, r)| remaining > r) {
                best = Some((v, remaining));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn single_worker_drains_in_order() {
        let q = RunQueue::new(5, 1);
        let got: Vec<usize> = std::iter::from_fn(|| q.next(0)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.next(0), None);
    }

    #[test]
    fn uneven_split_covers_everything() {
        let q = RunQueue::new(7, 3);
        let mut got: Vec<usize> = Vec::new();
        for w in 0..3 {
            while let Some(i) = q.next(w) {
                got.push(i);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = RunQueue::new(0, 4);
        for w in 0..4 {
            assert_eq!(q.next(w), None);
        }
    }

    #[test]
    fn concurrent_workers_claim_each_index_exactly_once() {
        const JOBS: usize = 10_000;
        const WORKERS: usize = 8;
        let q = RunQueue::new(JOBS, WORKERS);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(i) = q.next(w) {
                        mine.push(i);
                        // Uneven artificial work so stealing actually
                        // happens.
                        if i % 97 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    let mut set = seen.lock().unwrap();
                    for i in mine {
                        assert!(set.insert(i), "index {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), JOBS, "every index claimed");
    }
}
