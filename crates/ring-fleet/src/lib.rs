//! A fleet of deterministic ring machines sharing one boot image.
//!
//! The paper's hardware was designed for a time-sharing utility
//! serving a whole community; this crate supplies the community. It
//! runs N independent simulated machines — each a full
//! multiprogramming kernel ([`ring_os`]) with its own processes,
//! scheduler, and demand paging — across host threads with a
//! work-stealing run queue ([`queue::RunQueue`]), and rolls their
//! [`ring_metrics::MetricsSnapshot`]s up into one fleet snapshot.
//!
//! Per-machine footprint is near zero: a prototype system is booted
//! once per workload kind, its physical memory frozen into a shared
//! read-only [`BootImage`], and every fleet member boots a
//! copy-on-write view over it ([`ring_segmem::PhysMem::cow`]). A
//! member that replays the identical world build dirties no pages;
//! its private cost is only the pages its own execution writes.
//!
//! # Determinism contract
//!
//! Every machine is seeded from the fleet seed and its index alone,
//! and host threading never touches simulated state: workers boot and
//! run whole machines locally, and the merged snapshot is folded in
//! machine-index order after every worker has joined. A fleet run
//! with K worker threads is therefore bit-identical — merged snapshot
//! JSON included — to the same seeds on 1 thread, and any single
//! member is bit-identical to the same spec run standalone on a flat
//! (non-CoW) memory. `docs/FLEET.md` states the contract precisely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod report;
pub mod supervisor;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use ring_cpu::machine::RunExit;
use ring_metrics::MetricsSnapshot;
use ring_os::boot::{BootImage, System, SystemConfig};
use ring_os::workload::{
    install_gate_storm, install_page_storm, GateStormSpec, StormProc, StormSpec,
};

pub use ring_chaos::{FailureClass, MachineFailure};
pub use supervisor::{run_supervised, ChaosParams, MachineHealth, SupervisorConfig};

/// Which canned workload a machine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Demand-paging storm: processes sweep private paged segments
    /// under frame pressure ([`install_page_storm`]).
    PageStorm,
    /// Ring-crossing storm: processes hammer the ring-1 accounting
    /// gate ([`install_gate_storm`]).
    GateStorm,
}

impl WorkloadKind {
    /// Stable lowercase name (report keys, CLI values).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::PageStorm => "pagestorm",
            WorkloadKind::GateStorm => "gatestorm",
        }
    }
}

/// Workload assignment across the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadMix {
    /// Every machine runs the page storm.
    PageStorm,
    /// Every machine runs the gate storm.
    GateStorm,
    /// Even machine indices page, odd indices hammer gates.
    Mixed,
}

impl WorkloadMix {
    /// The workload for machine `id` under this mix.
    pub fn kind(self, id: usize) -> WorkloadKind {
        match self {
            WorkloadMix::PageStorm => WorkloadKind::PageStorm,
            WorkloadMix::GateStorm => WorkloadKind::GateStorm,
            WorkloadMix::Mixed => {
                if id.is_multiple_of(2) {
                    WorkloadKind::PageStorm
                } else {
                    WorkloadKind::GateStorm
                }
            }
        }
    }
}

/// Shape of a fleet run.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: usize,
    /// Worker threads; 0 picks the host's available parallelism.
    pub threads: usize,
    /// Fleet seed; each machine's seed derives from this and its index.
    pub seed: u64,
    /// Workload assignment.
    pub mix: WorkloadMix,
    /// Processes per machine.
    pub procs: usize,
    /// Pages per page-storm process's data segment.
    pub pages: u32,
    /// Minimum workload rounds per process.
    pub base_rounds: u32,
    /// Seed-derived extra rounds in `0..=jitter` (per-machine variety;
    /// zero makes every machine of a kind identical).
    pub rounds_jitter: u32,
    /// Scheduler quantum in cycles.
    pub quantum: u64,
    /// Physical frame budget for demand paging.
    pub frames: u32,
    /// Per-machine cycle budget; a machine that exhausts it reports
    /// `completed: false`.
    pub budget: u64,
    /// Physical words per machine (image size; keep small for fleets).
    pub phys_words: usize,
    /// Fast-path execution engine switch.
    pub fastpath: bool,
    /// Self-healing supervisor policy (chaos campaign, checkpoint
    /// cadence, restart budget). With `supervisor.chaos == None` and no
    /// kill injector, machines run exactly as an unsupervised fleet.
    pub supervisor: SupervisorConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            machines: 256,
            threads: 0,
            seed: 0x005E_ED0F_1EE7,
            mix: WorkloadMix::Mixed,
            procs: 2,
            pages: 5,
            base_rounds: 6,
            rounds_jitter: 6,
            quantum: 2_000,
            frames: 6,
            budget: 5_000_000,
            phys_words: 1 << 17,
            fastpath: true,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// One machine's derived identity: everything needed to reproduce its
/// run in isolation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// Fleet index.
    pub id: usize,
    /// Machine seed (splitmix64 of fleet seed and index).
    pub seed: u64,
    /// Assigned workload.
    pub kind: WorkloadKind,
    /// Workload rounds per process (base plus seed-derived jitter).
    pub rounds: u32,
}

/// The splitmix64 scramble — the standard seed-spreading finalizer, so
/// adjacent machine indices get uncorrelated seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FleetConfig {
    /// The derived spec for machine `id`.
    pub fn spec(&self, id: usize) -> MachineSpec {
        let seed = splitmix64(self.seed ^ (id as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5));
        MachineSpec {
            id,
            seed,
            kind: self.mix.kind(id),
            rounds: self.base_rounds + (seed % u64::from(self.rounds_jitter + 1)) as u32,
        }
    }

    /// Specs for the whole fleet, in index order.
    pub fn specs(&self) -> Vec<MachineSpec> {
        (0..self.machines).map(|id| self.spec(id)).collect()
    }

    /// The per-machine system configuration (uniform across the fleet,
    /// so one frozen image per workload kind serves every member).
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            phys_words: self.phys_words,
            quantum: self.quantum,
            frame_budget: Some(self.frames),
            fastpath: self.fastpath,
            ..SystemConfig::default()
        }
    }
}

/// One machine's outcome.
#[derive(Clone, Debug)]
pub struct MachineResult {
    /// The spec that produced it.
    pub spec: MachineSpec,
    /// Instructions the machine completed.
    pub instructions: u64,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Host wall-clock for boot + install + run, in nanoseconds.
    pub wall_ns: u64,
    /// Whether the machine halted with every process exited cleanly
    /// inside the cycle budget.
    pub completed: bool,
    /// Whether the machine halted cleanly at all. Under chaos this is
    /// the health criterion: recovery may confine (kill) a damaged
    /// process, making `completed` false on a perfectly healthy halt.
    pub halted: bool,
    /// Copy-on-write pages this machine dirtied (0 on flat boots;
    /// large after a checkpoint restart, which detaches the image).
    pub dirty_pages: u32,
    /// The machine's full observability snapshot.
    pub snapshot: MetricsSnapshot,
    /// The supervisor's health ledger (restarts, failures, quarantine).
    pub health: MachineHealth,
}

/// A worker-thread failure that cost the fleet a machine result.
#[derive(Clone, Debug)]
pub struct MemberError {
    /// The machine whose result is missing.
    pub id: usize,
    /// What happened (panic message, or "never ran").
    pub detail: String,
}

/// A whole fleet's outcome.
#[derive(Debug)]
pub struct FleetResult {
    /// Per-machine results in index order (machines listed in
    /// [`FleetResult::member_errors`] are absent).
    pub machines: Vec<MachineResult>,
    /// Every healthy (non-quarantined) machine snapshot folded in
    /// index order. Quarantined machines are reported individually and
    /// hashed separately, never merged.
    pub merged: MetricsSnapshot,
    /// Host-side failures, in index order: worker panics outside the
    /// supervised attempt loop, or machines no worker ever ran. Empty
    /// on a sound run — machine failures under chaos are *not* errors;
    /// they surface as [`MachineHealth`] entries.
    pub member_errors: Vec<MemberError>,
    /// Host wall-clock for the whole fleet (image builds included).
    pub wall_seconds: f64,
    /// Worker threads actually used.
    pub threads: usize,
    /// Words in each shared boot image (one per workload kind used).
    pub image_words: usize,
}

/// Installs `spec`'s workload on a freshly booted system (shared with
/// the supervised path, which must replay the exact same world build
/// before restoring a checkpoint).
pub(crate) fn install_workload(
    sys: &mut System,
    cfg: &FleetConfig,
    spec: MachineSpec,
) -> Vec<StormProc> {
    match spec.kind {
        WorkloadKind::PageStorm => install_page_storm(
            sys,
            &StormSpec {
                procs: cfg.procs,
                pages: cfg.pages,
                rounds: spec.rounds,
            },
        ),
        WorkloadKind::GateStorm => install_gate_storm(
            sys,
            &GateStormSpec {
                procs: cfg.procs,
                rounds: spec.rounds,
            },
        ),
    }
}

/// Whether this fleet's machines need the supervisor's slicing and
/// checkpoint machinery at all; a chaos-free fleet takes the plain
/// single-run path (no checkpoint clones, no CoW-detaching restores).
fn supervised(cfg: &FleetConfig) -> bool {
    cfg.supervisor.chaos.is_some() || cfg.supervisor.kill_machine.is_some()
}

/// Installs `spec`'s workload on a booted system and runs it to
/// completion (or budget), returning the machine's result.
fn install_and_run(mut sys: System, cfg: &FleetConfig, spec: MachineSpec) -> MachineResult {
    let start = Instant::now();
    let procs = install_workload(&mut sys, cfg, spec);
    sys.enable_metrics();
    sys.machine.set_timer(Some(cfg.quantum));
    let exit = sys.machine.run(cfg.budget);
    let st = sys.state.borrow();
    let all_exited = procs
        .iter()
        .all(|p| st.processes[p.pid].aborted.as_deref() == Some("exit"));
    drop(st);
    MachineResult {
        spec,
        instructions: sys.machine.stats().instructions,
        cycles: sys.machine.cycles(),
        wall_ns: start.elapsed().as_nanos() as u64,
        completed: exit == RunExit::Halted && all_exited,
        halted: exit == RunExit::Halted,
        dirty_pages: sys.machine.phys().dirty_pages(),
        snapshot: sys.metrics_snapshot(),
        health: MachineHealth::default(),
    }
}

/// Boots a prototype system, installs `kind`'s workload exactly as a
/// fleet member will (using the *base* rounds — members' seed-jittered
/// rounds differ by at most one word per process), and freezes its
/// memory into a shared [`BootImage`].
pub fn build_image(cfg: &FleetConfig, kind: WorkloadKind) -> BootImage {
    let mut proto = System::boot_with(cfg.system_config());
    let proto_spec = MachineSpec {
        id: 0,
        seed: 0,
        kind,
        rounds: cfg.base_rounds,
    };
    match kind {
        WorkloadKind::PageStorm => {
            install_page_storm(
                &mut proto,
                &StormSpec {
                    procs: cfg.procs,
                    pages: cfg.pages,
                    rounds: proto_spec.rounds,
                },
            );
        }
        WorkloadKind::GateStorm => {
            install_gate_storm(
                &mut proto,
                &GateStormSpec {
                    procs: cfg.procs,
                    rounds: proto_spec.rounds,
                },
            );
        }
    }
    proto.freeze()
}

/// Runs one fleet member over the shared image: boots a copy-on-write
/// system and replays the workload install (dirtying only what
/// diverges) before running. Routes through the self-healing
/// supervisor when the fleet has a chaos campaign configured.
pub fn run_member(image: &BootImage, cfg: &FleetConfig, spec: MachineSpec) -> MachineResult {
    if supervised(cfg) {
        run_supervised(&|| System::boot_from_image(image), cfg, spec)
    } else {
        install_and_run(System::boot_from_image(image), cfg, spec)
    }
}

/// Runs `spec` standalone on a private flat memory — the reference
/// a fleet member must be bit-identical to (supervised when the
/// config says so, exactly as [`run_member`]).
pub fn run_standalone(cfg: &FleetConfig, spec: MachineSpec) -> MachineResult {
    if supervised(cfg) {
        run_supervised(&|| System::boot_with(cfg.system_config()), cfg, spec)
    } else {
        install_and_run(System::boot_with(cfg.system_config()), cfg, spec)
    }
}

/// Resolves the worker-thread count: explicit, or host parallelism.
pub fn resolve_threads(cfg: &FleetConfig) -> usize {
    if cfg.threads > 0 {
        return cfg.threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the whole fleet and folds the results.
///
/// Workers claim machine indices from a work-stealing queue, boot each
/// machine locally over the kind's shared image, and deposit results
/// by index; the merged snapshot folds in index order on the calling
/// thread, so thread count and steal interleaving cannot reach the
/// bytes. Quarantined machines keep their per-machine results but are
/// excluded from the healthy merged snapshot.
///
/// A worker panic outside the supervised attempt loop does not bring
/// the fleet down: the panic is caught, the machine's slot is recorded
/// in [`FleetResult::member_errors`], and the worker moves on to its
/// next index. (Panics *inside* an attempt are the supervisor's
/// problem and surface as [`FailureClass::HostPanic`] failures.)
pub fn run_fleet(cfg: &FleetConfig) -> FleetResult {
    let start = Instant::now();
    let threads = resolve_threads(cfg).max(1);
    let specs = cfg.specs();
    let needs_page = specs.iter().any(|s| s.kind == WorkloadKind::PageStorm);
    let needs_gate = specs.iter().any(|s| s.kind == WorkloadKind::GateStorm);
    let page_image = needs_page.then(|| build_image(cfg, WorkloadKind::PageStorm));
    let gate_image = needs_gate.then(|| build_image(cfg, WorkloadKind::GateStorm));
    let image_words = page_image
        .as_ref()
        .or(gate_image.as_ref())
        .map_or(0, BootImage::words);

    type Slot = Option<Result<MachineResult, String>>;
    let queue = queue::RunQueue::new(specs.len(), threads);
    let slots: Mutex<Vec<Slot>> = Mutex::new(vec![None; specs.len()]);
    std::thread::scope(|s| {
        for w in 0..threads {
            let queue = &queue;
            let slots = &slots;
            let specs = &specs;
            let page_image = page_image.as_ref();
            let gate_image = gate_image.as_ref();
            s.spawn(move || {
                while let Some(i) = queue.next(w) {
                    let spec = specs[i];
                    let slot = catch_unwind(AssertUnwindSafe(|| {
                        let image = match spec.kind {
                            WorkloadKind::PageStorm => page_image.expect("page image built"),
                            WorkloadKind::GateStorm => gate_image.expect("gate image built"),
                        };
                        run_member(image, cfg, spec)
                    }))
                    .map_err(supervisor::panic_message);
                    slots.lock().expect("result lock")[i] = Some(slot);
                }
            });
        }
    });

    let mut machines = Vec::with_capacity(specs.len());
    let mut member_errors = Vec::new();
    for (i, slot) in slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .enumerate()
    {
        match slot {
            Some(Ok(result)) => machines.push(result),
            Some(Err(detail)) => member_errors.push(MemberError { id: i, detail }),
            None => member_errors.push(MemberError {
                id: i,
                detail: "machine never ran (worker lost before claiming it)".to_string(),
            }),
        }
    }
    let mut merged = MetricsSnapshot::default();
    for m in &machines {
        if !m.health.is_quarantined() {
            merged.merge(&m.snapshot);
        }
    }
    FleetResult {
        machines,
        merged,
        member_errors,
        wall_seconds: start.elapsed().as_secs_f64(),
        threads,
        image_words,
    }
}
