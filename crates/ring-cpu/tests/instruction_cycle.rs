//! End-to-end tests of the instruction cycle: every phase of Figs. 4–9
//! driven through `Machine::step`, not through the pure decision
//! functions.

use ring_core::access::{AccessMode, Fault, Violation};
use ring_core::addr::SegNo;
use ring_core::callret::StackRule;
use ring_core::registers::{IndWord, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::isa::{Instr, Opcode};
use ring_cpu::machine::{MachineConfig, StepOutcome};
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::{addr, World};

const CODE: u32 = 10;
const DATA: u32 = 11;

/// A world with a user code segment at ring 4, a data segment, standard
/// stacks, and a trap segment whose native handler halts on any trap.
fn user_world() -> (World, SegNo, SegNo) {
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
    );
    let data = w.add_segment(DATA, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(256));
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.start(Ring::R4, code, 0);
    (w, code, data)
}

fn step_ok(w: &mut World) {
    assert_eq!(w.machine.step(), StepOutcome::Ran);
}

fn step_traps(w: &mut World) -> Fault {
    match w.machine.step() {
        StepOutcome::Trapped(f) => f,
        other => panic!("expected trap, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// ALU and data-movement semantics
// ---------------------------------------------------------------------

#[test]
fn lda_sta_round_trip() {
    let (mut w, code, data) = user_world();
    w.poke(data, 5, Word::new(0o4242));
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 5).with_xreg(0));
    // Direct addressing is relative to the instruction's own segment;
    // reading from the data segment needs a pointer register.
    // Use PR1 -> data.
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Lda, 1, 5));
    w.poke_instr(code, 1, Instr::pr_relative(Opcode::Sta, 1, 6));
    step_ok(&mut w);
    assert_eq!(w.machine.a(), Word::new(0o4242));
    step_ok(&mut w);
    assert_eq!(w.peek(data, 6), Word::new(0o4242));
}

#[test]
fn arithmetic_ops_and_indicators() {
    let (mut w, code, _data) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 10).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Ada, 7).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Sba, 17).immediate());
    w.poke_instr(code, 3, Instr::direct(Opcode::Sba, 1).immediate());
    for _ in 0..2 {
        step_ok(&mut w);
    }
    assert_eq!(w.machine.a(), Word::new(17));
    step_ok(&mut w);
    assert_eq!(w.machine.a(), Word::ZERO);
    step_ok(&mut w);
    assert!(w.machine.a().is_negative(), "0 - 1 is negative");
}

#[test]
fn logical_ops() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 0b1100).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Ana, 0b1010).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Ora, 0b0001).immediate());
    w.poke_instr(code, 3, Instr::direct(Opcode::Era, 0b1111).immediate());
    for _ in 0..4 {
        step_ok(&mut w);
    }
    assert_eq!(w.machine.a().raw(), (0b1100 & 0b1010 | 0b0001) ^ 0b1111);
}

#[test]
fn mpy_neg_shifts_eaa() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 6).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Mpy, 7).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Als, 1));
    w.poke_instr(code, 3, Instr::direct(Opcode::Ars, 2));
    w.poke_instr(code, 4, Instr::direct(Opcode::Neg, 0));
    w.poke_instr(code, 5, Instr::direct(Opcode::Eaa, 0o777));
    step_ok(&mut w);
    step_ok(&mut w);
    assert_eq!(w.machine.a().raw(), 42);
    step_ok(&mut w);
    assert_eq!(w.machine.a().raw(), 84);
    step_ok(&mut w);
    assert_eq!(w.machine.a().raw(), 21);
    step_ok(&mut w);
    assert_eq!(w.machine.a().as_signed(), -21);
    step_ok(&mut w);
    assert_eq!(w.machine.a().raw(), 0o777, "EAA loads the word number");
}

#[test]
fn q_register_and_index_registers() {
    let (mut w, code, data) = user_world();
    w.poke(data, 3, Word::new(100));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(code, 0, Instr::direct(Opcode::Ldq, 40).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Adq, 2).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Sbq, 1).immediate());
    w.poke_instr(code, 3, Instr::pr_relative(Opcode::Stq, 1, 9));
    // ldx x2, 3 ; lda data[x2] (indexed)
    w.poke_instr(
        code,
        4,
        Instr::direct(Opcode::Ldx, 3).immediate().with_xreg(2),
    );
    w.poke_instr(code, 5, Instr::pr_relative(Opcode::Lda, 1, 0).with_index(2));
    w.poke_instr(code, 6, Instr::pr_relative(Opcode::Stx, 1, 10).with_xreg(2));
    for _ in 0..4 {
        step_ok(&mut w);
    }
    assert_eq!(w.peek(data, 9), Word::new(41));
    step_ok(&mut w);
    step_ok(&mut w);
    assert_eq!(w.machine.a(), Word::new(100), "indexed load hit data[3]");
    step_ok(&mut w);
    assert_eq!(w.peek(data, 10), Word::new(3));
}

#[test]
fn aos_requires_and_uses_both_permissions() {
    let (mut w, code, data) = user_world();
    w.poke(data, 4, Word::new(9));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 4)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Aos, 1, 0));
    step_ok(&mut w);
    assert_eq!(w.peek(data, 4), Word::new(10));
}

#[test]
fn aos_fails_on_read_only_segment() {
    let (mut w, code, _) = user_world();
    // Readable everywhere, writable nowhere (write flag off).
    let ro = w.add_segment(
        12,
        SdwBuilder::new()
            .rings(Ring::R4, Ring::R7, Ring::R7)
            .read(true)
            .bound_words(16),
    );
    w.machine
        .set_pr(1, PtrReg::new(Ring::R4, addr(ro.value(), 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Aos, 1, 0));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            mode: AccessMode::Write,
            violation: Violation::FlagOff,
            ..
        }
    ));
}

#[test]
fn stz_clears_and_store_to_immediate_faults() {
    let (mut w, code, data) = user_world();
    w.poke(data, 8, Word::new(77));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 8)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Stz, 1, 0));
    step_ok(&mut w);
    assert_eq!(w.peek(data, 8), Word::ZERO);
    w.poke_instr(code, 1, Instr::direct(Opcode::Sta, 3).immediate());
    let f = step_traps(&mut w);
    assert!(matches!(f, Fault::IllegalModifier));
}

#[test]
fn cmpa_sets_indicators_without_changing_a() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 5).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Cmpa, 5).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Tze, 10));
    w.poke_instr(code, 10, Instr::direct(Opcode::Nop, 0));
    step_ok(&mut w);
    step_ok(&mut w);
    assert_eq!(w.machine.a(), Word::new(5), "CMPA leaves A intact");
    step_ok(&mut w);
    assert_eq!(w.machine.ipr().addr.wordno.value(), 10, "TZE taken");
}

// ---------------------------------------------------------------------
// Transfers (Fig. 7)
// ---------------------------------------------------------------------

#[test]
fn conditional_transfers_follow_indicators() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 1).immediate());
    w.poke_instr(code, 1, Instr::direct(Opcode::Tze, 20)); // not taken
    w.poke_instr(code, 2, Instr::direct(Opcode::Tnz, 4)); // taken
    w.poke_instr(code, 4, Instr::direct(Opcode::Tpl, 6)); // taken (positive)
    w.poke_instr(code, 6, Instr::direct(Opcode::Tmi, 20)); // not taken
    w.poke_instr(code, 7, Instr::direct(Opcode::Tra, 30)); // taken
    w.poke_instr(code, 30, Instr::direct(Opcode::Nop, 0));
    for _ in 0..6 {
        step_ok(&mut w);
    }
    assert_eq!(w.machine.ipr().addr.wordno.value(), 30);
    step_ok(&mut w);
    assert_eq!(w.machine.ipr().addr.wordno.value(), 31);
}

#[test]
fn transfer_to_non_executable_segment_faults_at_the_transfer() {
    let (mut w, code, _data) = user_world();
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Tra, 1, 0));
    let f = step_traps(&mut w);
    // The advance check catches it while the transfer instruction is
    // still identifiable.
    assert!(matches!(
        f,
        Fault::AccessViolation {
            mode: AccessMode::Execute,
            violation: Violation::FlagOff,
            ..
        }
    ));
}

#[test]
fn transfer_out_of_execute_bracket_faults() {
    let (mut w, code, _) = user_world();
    // A ring-2 procedure segment: ring 4 cannot execute it.
    let low = w.add_segment(
        13,
        SdwBuilder::procedure(Ring::R2, Ring::R2, Ring::R2).bound_words(16),
    );
    w.machine
        .set_pr(1, PtrReg::new(Ring::R4, addr(low.value(), 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Tra, 1, 0));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            violation: Violation::OutsideBracket,
            ..
        }
    ));
}

// ---------------------------------------------------------------------
// EAP and SPRI (Fig. 7, pointer group)
// ---------------------------------------------------------------------

#[test]
fn eap_is_the_only_way_to_load_a_pr_and_captures_effective_ring() {
    let (mut w, code, data) = user_world();
    // An indirect word in DATA pointing into DATA, ring 6.
    w.write_ind_word(data, 0, IndWord::new(Ring::R6, addr(DATA, 20), false));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(
        code,
        0,
        Instr::pr_relative(Opcode::Eap, 1, 0)
            .with_indirect()
            .with_xreg(3),
    );
    step_ok(&mut w);
    let pr3 = w.machine.pr(3);
    assert_eq!(pr3.addr, addr(DATA, 20));
    assert_eq!(
        pr3.ring,
        Ring::R6,
        "EAP captured the effective ring from the indirect word"
    );
}

#[test]
fn spri_stores_a_pair_and_respects_write_bracket() {
    let (mut w, code, data) = user_world();
    w.machine.set_pr(3, PtrReg::new(Ring::R5, addr(CODE, 7)));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 30)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Spri, 1, 0).with_xreg(3));
    step_ok(&mut w);
    let iw = IndWord::unpack(w.peek(data, 30), w.peek(data, 31));
    assert_eq!(iw.addr, addr(CODE, 7));
    assert_eq!(iw.ring, Ring::R5);
    assert!(!iw.indirect);
    // Writing into the (read-only) code segment is refused.
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(CODE, 100)));
    w.poke_instr(code, 1, Instr::pr_relative(Opcode::Spri, 2, 0).with_xreg(3));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            mode: AccessMode::Write,
            ..
        }
    ));
}

// ---------------------------------------------------------------------
// CALL and RETURN through the pipeline (Figs. 8, 9)
// ---------------------------------------------------------------------

/// Builds a gate segment at `segno` executing in `ring`, with gates open
/// through ring `r3`, whose body halts (native) after recording entry.
fn gate_world(gate_ring: Ring, r3: Ring) -> (World, SegNo, SegNo) {
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
    );
    let gate = w.add_segment(
        20,
        SdwBuilder::procedure(gate_ring, gate_ring, r3)
            .gates(4)
            .bound_words(64),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.start(Ring::R4, code, 0);
    (w, code, gate)
}

#[test]
fn downward_call_switches_ring_and_builds_stack_base() {
    let (mut w, code, gate) = gate_world(Ring::R1, Ring::R5);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 2)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    // Native body: verify we are in ring 1, then halt.
    w.machine.register_native(gate, |m, entry| {
        assert_eq!(m.ring(), Ring::R1);
        assert_eq!(entry.value(), 2);
        Ok(NativeAction::Halt)
    });
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    assert_eq!(w.machine.ring(), Ring::R1);
    // PR0 = stack base for the new ring: DBR rule -> stack_base + 1.
    let sb = w.machine.pr(0);
    assert_eq!(sb.addr.segno.value(), 48 + 1);
    assert_eq!(sb.addr.wordno.value(), 0);
    assert_eq!(sb.ring, Ring::R1);
    assert_eq!(w.machine.stats().calls_downward, 1);
}

#[test]
fn stack_rule_ring_is_segno() {
    let cfg = MachineConfig {
        stack_rule: StackRule::RingIsSegno,
        ..Default::default()
    };
    let mut w = World::with_config(cfg);
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
    );
    let gate = w.add_segment(
        20,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R5)
            .gates(4)
            .bound_words(64),
    );
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.machine
        .register_native(gate, |_, _| Ok(NativeAction::Halt));
    w.start(Ring::R4, code, 0);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    w.machine.step();
    assert_eq!(
        w.machine.pr(0).addr.segno.value(),
        1,
        "plain Fig. 8 rule: stack segno == new ring number"
    );
}

#[test]
fn same_ring_call_keeps_stack_segment_under_footnote_rule() {
    let (mut w, code, gate) = gate_world(Ring::R4, Ring::R4);
    // SP (PR6) currently points at a nonstandard stack segment.
    w.machine.set_pr(6, PtrReg::new(Ring::R4, addr(DATA, 40)));
    w.machine
        .register_native(gate, |_, _| Ok(NativeAction::Halt));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    w.machine.step();
    assert_eq!(w.machine.ring(), Ring::R4);
    assert_eq!(
        w.machine.pr(0).addr.segno.value(),
        DATA,
        "same-ring call keeps the nonstandard stack segment"
    );
    assert_eq!(w.machine.stats().calls_same_ring, 1);
}

#[test]
fn call_to_non_gate_word_faults_even_same_ring() {
    let (mut w, code, _gate) = gate_world(Ring::R4, Ring::R4);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 10))); // word 10 >= 4 gates
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            violation: Violation::NotAGate,
            ..
        }
    ));
}

#[test]
fn internal_call_within_same_segment_skips_gate_list() {
    let (mut w, code, _) = user_world();
    // CALL to word 50 of the code segment itself (not a gate; the code
    // segment has no gates at all).
    w.poke_instr(code, 0, Instr::direct(Opcode::Call, 50));
    w.poke_instr(code, 50, Instr::direct(Opcode::Nop, 0));
    step_ok(&mut w);
    assert_eq!(w.machine.ipr().addr.wordno.value(), 50);
    assert_eq!(w.machine.ring(), Ring::R4);
}

#[test]
fn upward_call_traps_to_software() {
    // Gate segment executes in ring 6; caller is ring 4 -> upward call.
    let (mut w, code, _gate) = gate_world(Ring::R6, Ring::R7);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    let f = step_traps(&mut w);
    assert!(matches!(f, Fault::UpwardCall { .. }));
    assert_eq!(w.machine.ring(), Ring::R0, "trap forced ring 0");
    assert_eq!(w.machine.stats().upward_call_traps, 1);
}

#[test]
fn call_above_gate_extension_is_refused() {
    // Gates open only through ring 3; ring 4 may not call.
    let (mut w, code, _gate) = gate_world(Ring::R1, Ring::R3);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            violation: Violation::AboveGateExtension,
            ..
        }
    ));
}

#[test]
fn full_downward_call_and_upward_return_round_trip() {
    let (mut w, code, gate) = gate_world(Ring::R1, Ring::R5);
    // Convention: PR2 = return pointer. The native gate body returns
    // through it.
    w.machine.register_native(gate, |m, _| {
        assert_eq!(m.ring(), Ring::R1);
        m.set_a(Word::new(0o555));
        Ok(NativeAction::Return { via: m.pr(2) })
    });
    // Caller: set up return pointer (ring 4 via set_pr floor), call.
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 1)));
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(CODE, 1)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    w.poke_instr(code, 1, Instr::direct(Opcode::Nop, 0));
    assert_eq!(w.machine.step(), StepOutcome::Ran); // CALL
    assert_eq!(w.machine.ring(), Ring::R1);
    assert_eq!(w.machine.step(), StepOutcome::Ran); // native body + RETURN
    assert_eq!(w.machine.ring(), Ring::R4, "returned to the caller's ring");
    assert_eq!(w.machine.ipr().addr, addr(CODE, 1));
    assert_eq!(w.machine.a(), Word::new(0o555));
    assert_eq!(w.machine.stats().returns_upward, 1);
    // No trap was involved in either direction: the headline claim.
    assert_eq!(w.machine.stats().traps, 0);
}

#[test]
fn upward_return_raises_all_pr_ring_floors() {
    let (mut w, code, gate) = gate_world(Ring::R1, Ring::R5);
    w.machine.register_native(gate, |m, _| {
        // Inside ring 1: PRs may legitimately hold ring-1 values.
        m.set_pr(5, PtrReg::new(Ring::R1, addr(DATA, 0)));
        Ok(NativeAction::Return { via: m.pr(2) })
    });
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(CODE, 1)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
    w.poke_instr(code, 1, Instr::direct(Opcode::Nop, 0));
    w.machine.step();
    w.machine.step();
    assert_eq!(w.machine.ring(), Ring::R4);
    for n in 0..8 {
        assert!(
            w.machine.pr(n).ring >= Ring::R4,
            "PR{n} ring must be >= the new ring of execution"
        );
    }
}

#[test]
fn return_cannot_go_below_the_pointer_ring() {
    // A malicious ring-4 caller cannot fabricate a silent return into
    // ring 1: every pointer it can produce carries ring >= 4, so the
    // RETURN's effective ring is 4, above the ring-1 target's execute
    // bracket top — the hardware hands the *downward return* to the
    // ring-0 supervisor, which is where the forgery is refused (the
    // ring-os crate implements that refusal against its return-gate
    // stack).
    let (mut w, code, _gate) = gate_world(Ring::R1, Ring::R5);
    w.machine.set_pr(3, PtrReg::new(Ring::R1, addr(20, 0))); // attempt ring 1...
    assert_eq!(
        w.machine.pr(3).ring,
        Ring::R4,
        "set_pr floors the ring at IPR.RING, like EAP"
    );
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Return, 3, 0));
    let f = step_traps(&mut w);
    assert!(matches!(f, Fault::DownwardReturn { ring: Ring::R4, .. }));
    assert_eq!(w.machine.ring(), Ring::R0, "decision is the supervisor's");
    assert_eq!(w.machine.stats().downward_return_traps, 1);
}

#[test]
fn indirect_word_cannot_lower_the_return_ring() {
    // Even an indirect word with RING=1 planted in memory cannot lower
    // the effective ring: the Fig. 5 fold is a running max.
    let (mut w, code, _gate) = gate_world(Ring::R1, Ring::R5);
    let table = w.add_segment(30, SdwBuilder::data(Ring::R0, Ring::R7).bound_words(16));
    w.write_ind_word(table, 0, IndWord::new(Ring::R1, addr(20, 0), false));
    w.machine.set_pr(3, PtrReg::new(Ring::R4, addr(30, 0)));
    w.poke_instr(
        code,
        0,
        Instr::pr_relative(Opcode::Return, 3, 0).with_indirect(),
    );
    let f = step_traps(&mut w);
    // Effective ring = max(4, 4, 1, 0) = 4 -> downward-return trap, not
    // a silent entry into ring 1.
    assert!(matches!(f, Fault::DownwardReturn { ring: Ring::R4, .. }));
}

#[test]
fn software_mediated_upward_call_and_downward_return() {
    // The full round trip the hardware cannot do alone (the paper's
    // "upward call / downward return" case): ring-1 supervisor code
    // calls a ring-4 procedure; the hardware traps; a ring-0 handler
    // performs the upward call, pushing a return gate; the ring-4
    // procedure returns; the hardware traps the downward return; the
    // handler validates it against the pushed gate and restores ring 1.
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut w = World::new();
    // Ring-1 caller code (native, so we can observe re-entry).
    let low = w.add_segment(
        33,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1).bound_words(16),
    );
    // Ring-4 callee with a gate at word 0.
    let high = w.add_segment(
        34,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(1)
            .bound_words(16),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();

    // Return-gate stack maintained by the ring-0 mediator.
    type Gate = (Ring, ring_core::registers::Ipr);
    let gates: Rc<RefCell<Vec<Gate>>> = Rc::new(RefCell::new(Vec::new()));
    let phases: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));

    {
        let gates = gates.clone();
        let phases = phases.clone();
        w.machine.register_native(trap, move |m, vector| {
            let upward = Fault::UpwardCall {
                target: addr(0, 0),
                ring: Ring::R0,
            }
            .vector();
            let downward = Fault::DownwardReturn {
                target: addr(0, 0),
                ring: Ring::R0,
            }
            .vector();
            let v = vector.value();
            if v == upward {
                phases.borrow_mut().push("upward-call");
                let (_, ring, target, _) = m.fault_info().unwrap();
                let mut state = m.saved_state().unwrap();
                // Push the dynamic return gate: the caller's declared
                // return point (PR2 by convention) in the caller's
                // ring. (The saved IPR is the faulting CALL itself —
                // resuming there would just retry the call.)
                gates.borrow_mut().push((
                    state.ipr.ring,
                    ring_core::registers::Ipr::new(state.ipr.ring, state.prs[2].addr),
                ));
                // Enter the higher ring at the called gate; floor every
                // PR ring like a hardware upward switch would.
                let new_ring = Ring::R4;
                assert_eq!(ring, Ring::R1);
                state.ipr = ring_core::registers::Ipr::new(new_ring, target);
                for pr in state.prs.iter_mut() {
                    *pr = pr.with_ring_floor(new_ring);
                }
                m.set_saved_state(&state).unwrap();
                Ok(NativeAction::Resume)
            } else if v == downward {
                phases.borrow_mut().push("downward-return");
                let (_, _, target, _) = m.fault_info().unwrap();
                let (ring, cont) = gates.borrow_mut().pop().expect("return gate");
                // Software verification: the return must match the
                // pushed gate (here: same ring; a real supervisor also
                // validates the stack pointer).
                assert_eq!(ring, Ring::R1);
                assert_eq!(target.segno, cont.addr.segno);
                let mut state = m.saved_state().unwrap();
                state.ipr = cont;
                m.set_saved_state(&state).unwrap();
                Ok(NativeAction::Resume)
            } else {
                Ok(NativeAction::Halt)
            }
        });
    }

    // Ring-1 caller: on first entry CALL the ring-4 gate; on re-entry
    // (after the mediated return) record success and halt.
    let called_back: Rc<RefCell<bool>> = Rc::new(RefCell::new(false));
    {
        let called_back = called_back.clone();
        w.machine.register_native(low, move |m, entry| {
            if entry.value() == 0 {
                // CALL high|0: executed through the real pipeline by
                // pointing the IPR at a one-instruction stub... natives
                // cannot execute CALL, so raise the upward-call trap
                // exactly as the hardware would on `call pr1|0`.
                assert_eq!(m.ring(), Ring::R1);
                Err(Fault::UpwardCall {
                    target: addr(34, 0),
                    ring: Ring::R1,
                })
            } else {
                assert_eq!(m.ring(), Ring::R1, "mediated return restored ring 1");
                *called_back.borrow_mut() = true;
                Ok(NativeAction::Halt)
            }
        });
    }

    // Ring-4 callee: RETURN through PR2 (which, after the mediated
    // upward switch, carries ring >= 4).
    w.machine.register_native(high, move |m, _| {
        assert_eq!(m.ring(), Ring::R4);
        Ok(NativeAction::Return { via: m.pr(2) })
    });

    w.start(Ring::R1, low, 0);
    // PR2 = the ring-1 continuation (word 1 of the caller segment).
    w.machine.set_pr(2, PtrReg::new(Ring::R1, addr(33, 1)));
    let exit = w.machine.run(50);
    assert_eq!(exit, ring_cpu::machine::RunExit::Halted);
    assert!(*called_back.borrow(), "control returned to ring 1");
    assert_eq!(
        *phases.borrow(),
        vec!["upward-call", "downward-return"],
        "both software assists ran"
    );
    assert!(gates.borrow().is_empty(), "return gate consumed");
}

// ---------------------------------------------------------------------
// Privileged instructions and traps
// ---------------------------------------------------------------------

#[test]
fn privileged_instructions_fault_outside_ring_0() {
    for op in [
        Opcode::Ldbr,
        Opcode::Sio,
        Opcode::Rett,
        Opcode::Ldt,
        Opcode::Halt,
    ] {
        let (mut w, code, _) = user_world();
        w.poke_instr(code, 0, Instr::direct(op, 0));
        let f = step_traps(&mut w);
        assert!(
            matches!(f, Fault::PrivilegedViolation { ring } if ring == Ring::R4),
            "{op:?} must be privileged, got {f:?}"
        );
    }
}

#[test]
fn halt_in_ring_0_stops_the_machine() {
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(16),
    );
    w.add_trap_segment();
    w.start(Ring::R0, code, 0);
    w.poke_instr(code, 0, Instr::direct(Opcode::Halt, 0));
    assert_eq!(w.machine.step(), StepOutcome::Halted);
    assert!(w.machine.halted());
}

#[test]
fn illegal_opcode_and_derail_trap() {
    let (mut w, code, _) = user_world();
    w.poke(code, 0, Word::ZERO.with_field(28, 8, 0o76));
    let f = step_traps(&mut w);
    assert!(matches!(f, Fault::IllegalOpcode { opcode: 0o76 }));

    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Drl, 5));
    let f = step_traps(&mut w);
    assert!(matches!(f, Fault::Derail { code: 5 }));
}

#[test]
fn trap_enters_ring_0_at_the_fault_vector() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Drl, 3));
    let f = step_traps(&mut w);
    let vector = f.vector();
    assert_eq!(w.machine.ring(), Ring::R0);
    assert_eq!(
        w.machine.ipr().addr.wordno.value(),
        w.machine.config().trap_vector_base + vector
    );
    assert_eq!(w.machine.ipr().addr.segno, w.machine.config().trap_segno);
}

#[test]
fn fault_info_describes_the_fault() {
    let (mut w, code, _) = user_world();
    w.poke_instr(code, 0, Instr::direct(Opcode::Drl, 42));
    let f = step_traps(&mut w);
    let (vector, _ring, _addr, detail) = w.machine.fault_info().unwrap();
    assert_eq!(vector, f.vector());
    assert_eq!(detail.raw(), 42);
}

#[test]
fn rett_resumes_the_disrupted_instruction() {
    // A page-fault-and-resume round trip: the classic use of the
    // save/restore mechanism.
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    // A paged data segment whose single page is missing.
    let pt = w.alloc_raw(4);
    let frame = {
        let base = w.alloc_raw(1024 + 1024); // room to page-align
        base.value().div_ceil(1024)
    };
    w.machine
        .phys_mut()
        .poke(pt, ring_segmem::paging::Ptw::MISSING.pack())
        .unwrap();
    let paged = SdwBuilder::data(Ring::R4, Ring::R4)
        .unpaged(false)
        .addr(pt)
        .bound_words(1024)
        .build();
    w.install_sdw(14, &paged);
    let trap = w.add_trap_segment();
    // Ring-0 handler: fix the PTW, then resume.
    w.machine.register_native(trap, move |m, vector| {
        assert_eq!(
            vector.value(),
            Fault::PageFault { addr: addr(14, 0) }.vector()
        );
        m.phys_mut()
            .poke(pt, ring_segmem::paging::Ptw::present(frame).unwrap().pack())
            .unwrap();
        Ok(NativeAction::Resume)
    });
    w.start(Ring::R4, code, 0);
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(14, 3)));
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 0o123).immediate());
    w.poke_instr(code, 1, Instr::pr_relative(Opcode::Sta, 1, 0));
    step_ok(&mut w); // LDA
    let f = step_traps(&mut w); // STA faults
    assert!(matches!(f, Fault::PageFault { .. }));
    // Next step runs the native handler (fetch lands in trap segment)
    // which resumes; the step after that retries STA successfully.
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    assert_eq!(w.machine.ring(), Ring::R4, "resumed back in ring 4");
    let abs = ring_core::addr::AbsAddr::new(frame * 1024 + 3).unwrap();
    assert_eq!(w.machine.phys().peek(abs).unwrap(), Word::new(0o123));
}

#[test]
fn timer_runout_traps() {
    let (mut w, code, _) = user_world();
    for i in 0..20 {
        w.poke_instr(code, i, Instr::direct(Opcode::Nop, 0));
    }
    w.machine.set_timer(Some(10));
    let mut trapped = false;
    for _ in 0..20 {
        match w.machine.step() {
            StepOutcome::Trapped(Fault::TimerRunout) => {
                trapped = true;
                break;
            }
            StepOutcome::Ran => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(trapped, "timer must run out");
    assert_eq!(w.machine.ring(), Ring::R0);
}

#[test]
fn execute_from_data_segment_faults() {
    let (mut w, _code, data) = user_world();
    w.start(Ring::R4, data, 0);
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            mode: AccessMode::Execute,
            violation: Violation::FlagOff,
            ..
        }
    ));
}

#[test]
fn execute_below_bracket_bottom_faults() {
    // "preventing the accidental transfer to and execution of a
    // procedure in a ring lower than intended".
    let mut w = World::new();
    let code = w.add_segment(
        CODE,
        SdwBuilder::procedure(Ring::R4, Ring::R5, Ring::R5).bound_words(16),
    );
    w.add_trap_segment();
    let trap = w.machine.config().trap_segno;
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.start(Ring::R2, code, 0);
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            violation: Violation::OutsideBracket,
            ..
        }
    ));
}

// ---------------------------------------------------------------------
// Cycle accounting: the headline comparison in miniature
// ---------------------------------------------------------------------

#[test]
fn downward_call_costs_like_same_ring_call() {
    // Run the same CALL twice: once crossing rings, once not; the
    // hardware cost must be identical (same number of references).
    let cost_of = |gate_ring: Ring| -> u64 {
        let (mut w, code, gate) = gate_world(gate_ring, Ring::R5);
        w.machine
            .register_native(gate, |_, _| Ok(NativeAction::Halt));
        w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(20, 0)));
        w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 1, 0));
        let before = w.machine.cycles();
        w.machine.step();
        w.machine.cycles() - before
    };
    let same_ring = cost_of(Ring::R4);
    let downward = cost_of(Ring::R1);
    assert_eq!(
        same_ring, downward,
        "a downward call is *identical* to a same-ring call in cost"
    );
}

#[test]
fn pr_ring_invariant_holds_across_arbitrary_programs() {
    // Run a program that loads PRs through every mechanism and check
    // the invariant after each step.
    let (mut w, code, data) = user_world();
    // Establish the invariant for the initial state: a freshly built
    // world has null PRs (ring 0); real processes enter user rings only
    // through mechanisms that floor the PR rings.
    for n in 0..8 {
        w.machine.set_pr(n, PtrReg::NULL);
    }
    w.write_ind_word(data, 0, IndWord::new(Ring::R6, addr(DATA, 20), false));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(DATA, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Eap, 1, 0).with_xreg(3));
    w.poke_instr(
        code,
        1,
        Instr::pr_relative(Opcode::Eap, 1, 0)
            .with_indirect()
            .with_xreg(4),
    );
    w.poke_instr(code, 2, Instr::direct(Opcode::Call, 5));
    w.poke_instr(code, 5, Instr::direct(Opcode::Nop, 0));
    for _ in 0..4 {
        if w.machine.step() != StepOutcome::Ran {
            break;
        }
        for n in 0..8 {
            assert!(
                w.machine.pr(n).ring >= w.machine.ring(),
                "PR{n} ring below ring of execution"
            );
        }
    }
}

#[test]
fn same_ring_tra_bypasses_the_gate_list() {
    // "On intersegment transfers of control within the same ring, the
    // gate restriction can be bypassed by using a normal transfer
    // instruction rather than a CALL."
    let (mut w, code, _data) = user_world();
    // Another ring-4 procedure segment with only one gate.
    let lib = w.add_segment(
        21,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(1)
            .bound_words(64),
    );
    w.poke_instr(lib, 9, Instr::direct(Opcode::Nop, 0));
    w.machine.set_pr(3, PtrReg::new(Ring::R4, addr(21, 9)));
    // CALL to the non-gate word 9 is refused...
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 3, 0));
    let f = step_traps(&mut w);
    assert!(matches!(
        f,
        Fault::AccessViolation {
            violation: Violation::NotAGate,
            ..
        }
    ));
    // ...but a plain TRA to the same word is fine (same ring).
    let (mut w, code, _data) = user_world();
    let lib = w.add_segment(
        21,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(1)
            .bound_words(64),
    );
    w.poke_instr(lib, 9, Instr::direct(Opcode::Nop, 0));
    w.machine.set_pr(3, PtrReg::new(Ring::R4, addr(21, 9)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Tra, 3, 0));
    step_ok(&mut w);
    assert_eq!(w.machine.ipr().addr, addr(21, 9));
    step_ok(&mut w); // the NOP executes
    assert_eq!(w.machine.ring(), Ring::R4);
}
