//! Edge cases of the machine: double faults, asynchronous-trap masking
//! during trap service, I/O channel busy handling, tracing, and cycle
//! accounting details.

use ring_core::access::Fault;
use ring_core::registers::PtrReg;
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::io::{Direction, IoSystem};
use ring_cpu::isa::{Instr, Opcode};
use ring_cpu::machine::{RunExit, StepOutcome};
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::{addr, World};
use ring_cpu::trace::TraceEvent;

#[test]
fn missing_trap_segment_is_a_double_fault() {
    // No trap segment installed at all: the first fault cannot be
    // serviced; the machine must stop rather than loop or corrupt.
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    w.poke_instr(code, 0, Instr::direct(Opcode::Drl, 1));
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.step(), StepOutcome::Halted);
    // The save-area write faulted (trap segment missing): the exact
    // word is the presence check's bound probe.
    assert!(matches!(
        w.machine.run(10),
        RunExit::DoubleFault(Fault::SegmentFault { .. })
    ));
    // clear_halt refuses to restart a double-faulted machine.
    w.machine.clear_halt();
    assert!(w.machine.halted());
}

#[test]
fn async_traps_are_held_off_during_trap_service() {
    // Arm the timer so it expires while a derail is being serviced; the
    // timer trap must wait until after RETT (the save area is in use).
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    let trap = w.add_trap_segment();
    w.machine.register_native(trap, |m, entry| {
        if entry.value() == ring_core::access::vector::DERAIL {
            // Service takes long enough that the timer has expired.
            m.charge(10_000);
            let mut st = m.saved_state()?;
            st.ipr = ring_core::registers::Ipr::new(
                st.ipr.ring,
                ring_core::addr::SegAddr::new(
                    st.ipr.addr.segno,
                    st.ipr.addr.wordno.wrapping_add(1),
                ),
            );
            m.set_saved_state(&st)?;
            Ok(NativeAction::Resume)
        } else {
            Ok(NativeAction::Halt)
        }
    });
    w.poke_instr(code, 0, Instr::direct(Opcode::Drl, 1));
    w.poke_instr(code, 1, Instr::direct(Opcode::Nop, 0));
    w.poke_instr(code, 2, Instr::direct(Opcode::Nop, 0));
    w.start(Ring::R4, code, 0);
    w.machine.set_timer(Some(50));

    assert!(matches!(
        w.machine.step(),
        StepOutcome::Trapped(Fault::Derail { .. })
    ));
    // Next step services the derail (native) — the timer has long
    // expired but must NOT preempt the service.
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    // Now the timer trap is recognised, between instructions.
    assert!(matches!(
        w.machine.step(),
        StepOutcome::Trapped(Fault::TimerRunout)
    ));
}

#[test]
fn sio_to_busy_channel_reports_channel_busy() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
            .write(true)
            .bound_words(64),
    );
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    // Two back-to-back SIOs on the same channel: the second faults.
    let (c0, c1) = IoSystem::channel_program(
        2,
        Direction::Output,
        ring_core::addr::AbsAddr::new(0).unwrap(),
        1000,
    );
    w.poke(code, 10, c0);
    w.poke(code, 11, c1);
    w.poke_instr(code, 0, Instr::direct(Opcode::Sio, 10));
    w.poke_instr(code, 1, Instr::direct(Opcode::Sio, 10));
    w.start(Ring::R0, code, 0);
    assert_eq!(w.machine.step(), StepOutcome::Ran);
    assert!(w.machine.io().busy(2));
    match w.machine.step() {
        StepOutcome::Trapped(Fault::Derail { code: 0o77 }) => {}
        other => panic!("expected channel-busy derail, got {other:?}"),
    }
}

#[test]
fn trace_records_the_interesting_events() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(2)
            .bound_words(64),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.poke_instr(code, 0, Instr::direct(Opcode::Call, 1)); // same-segment call
    w.poke_instr(code, 1, Instr::direct(Opcode::Drl, 0o777));
    w.start(Ring::R4, code, 0);
    w.machine.enable_trace(64);
    w.machine.run(10);
    let trace = w.machine.take_trace();
    assert!(trace.iter().any(|e| matches!(e, TraceEvent::Call { .. })));
    assert!(trace.iter().any(|e| matches!(e, TraceEvent::Trap { .. })));
    assert!(trace.iter().any(|e| matches!(e, TraceEvent::Instr { .. })));
    assert!(trace.iter().any(|e| matches!(e, TraceEvent::Native { .. })));
    // Drained.
    assert!(w.machine.take_trace().is_empty());
}

#[test]
fn charge_adds_to_cycles_and_timer() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    let native_seg = w.add_segment(
        11,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4)
            .gates(1)
            .bound_words(16),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.machine.register_native(native_seg, |m, _| {
        m.charge(500);
        Ok(NativeAction::Return { via: m.pr(2) })
    });
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(10, 1)));
    w.machine.set_pr(3, PtrReg::new(Ring::R4, addr(11, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Call, 3, 0));
    w.poke_instr(code, 1, Instr::direct(Opcode::Nop, 0));
    w.start(Ring::R4, code, 0);
    let before = w.machine.cycles();
    w.machine.step(); // CALL
    w.machine.step(); // native body (+500) + RETURN
    assert!(
        w.machine.cycles() - before >= 500,
        "charged cycles are accounted"
    );
}

#[test]
fn indicators_reflect_loads_and_arithmetic() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    // LDQ must NOT disturb the indicators (only A-register ops do).
    w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 0).immediate()); // zero
    w.poke_instr(code, 1, Instr::direct(Opcode::Ldq, 5).immediate());
    w.poke_instr(code, 2, Instr::direct(Opcode::Tze, 10)); // still zero -> taken
    w.poke_instr(code, 10, Instr::direct(Opcode::Nop, 0));
    w.start(Ring::R4, code, 0);
    for _ in 0..3 {
        assert_eq!(w.machine.step(), StepOutcome::Ran);
    }
    assert_eq!(w.machine.ipr().addr.wordno.value(), 10);
}

#[test]
fn run_exit_reports_budget() {
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.poke_instr(code, 0, Instr::direct(Opcode::Tra, 0)); // tight loop
    w.start(Ring::R4, code, 0);
    assert_eq!(w.machine.run(100), RunExit::BudgetExhausted);
    assert_eq!(w.machine.stats().instructions, 100);
}

#[test]
fn stz_write_validation_at_effective_ring() {
    // STZ through a pointer whose ring is above the write bracket
    // faults even though the executing ring is privileged enough —
    // the per-reference validation the paper's argument story needs.
    let mut w = World::new();
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1).bound_words(16),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R2, Ring::R4).bound_words(16));
    let _ = data;
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.start(Ring::R1, code, 0);
    w.machine.set_pr(4, PtrReg::new(Ring::R4, addr(11, 0)));
    w.poke_instr(code, 0, Instr::pr_relative(Opcode::Stz, 4, 0));
    match w.machine.step() {
        StepOutcome::Trapped(Fault::AccessViolation { ring, .. }) => {
            assert_eq!(ring, Ring::R4, "validated at the effective ring");
        }
        other => panic!("expected violation, got {other:?}"),
    }
    // The same store with a ring-1 pointer (privileged provenance)
    // succeeds: write bracket is [0,2].
    let mut w2 = World::new();
    let code = w2.add_segment(
        10,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1).bound_words(16),
    );
    w2.add_segment(11, SdwBuilder::data(Ring::R2, Ring::R4).bound_words(16));
    let trap = w2.add_trap_segment();
    w2.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w2.start(Ring::R1, code, 0);
    w2.machine.set_pr(4, PtrReg::new(Ring::R1, addr(11, 0)));
    w2.poke_instr(code, 0, Instr::pr_relative(Opcode::Stz, 4, 0));
    assert_eq!(w2.machine.step(), StepOutcome::Ran);
}

#[test]
fn word_zero_write_readback_via_validated_accessors() {
    let mut w = World::new();
    w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
    );
    w.start(Ring::R4, ring_core::addr::SegNo::new(10).unwrap(), 0);
    let p = PtrReg::new(Ring::R4, addr(11, 3));
    w.machine.write_validated(p, Word::new(0o1234)).unwrap();
    assert_eq!(w.machine.read_validated(p).unwrap(), Word::new(0o1234));
    // Pointer round trip through memory.
    let slot = PtrReg::new(Ring::R4, addr(11, 8));
    w.machine.write_pointer_validated(slot, p).unwrap();
    let back = w.machine.read_pointer_validated(slot).unwrap();
    assert_eq!(back.addr, p.addr);
    assert_eq!(back.ring, Ring::R4);
}
