//! Ring checks on the supervisor-level machine services (the native
//! equivalents of the privileged instructions).

use ring_core::access::Fault;
use ring_core::addr::SegNo;
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::io::{Direction, IoSystem};
use ring_cpu::testkit::World;

fn world_in_ring(ring: Ring) -> World {
    let mut w = World::new();
    let code = w.add_segment(10, SdwBuilder::procedure(ring, ring, ring).bound_words(16));
    w.add_trap_segment();
    w.start(ring, code, 0);
    w
}

#[test]
fn store_descriptor_requires_ring_0() {
    let sdw = SdwBuilder::data(Ring::R4, Ring::R4).build();
    let mut w = world_in_ring(Ring::R4);
    assert!(matches!(
        w.machine.store_descriptor(SegNo::new(20).unwrap(), &sdw),
        Err(Fault::PrivilegedViolation { ring: Ring::R4 })
    ));
    let mut w = world_in_ring(Ring::R0);
    assert!(w
        .machine
        .store_descriptor(SegNo::new(20).unwrap(), &sdw)
        .is_ok());
    // And the change is readable back.
    assert_eq!(w.read_sdw(20), sdw);
}

#[test]
fn start_io_requires_ring_0() {
    let (w0, w1) = IoSystem::channel_program(
        1,
        Direction::Output,
        ring_core::addr::AbsAddr::new(0).unwrap(),
        4,
    );
    let mut w = world_in_ring(Ring::R1);
    assert!(matches!(
        w.machine.start_io(w0, w1),
        Err(Fault::PrivilegedViolation { ring: Ring::R1 })
    ));
    let mut w = world_in_ring(Ring::R0);
    assert!(w.machine.start_io(w0, w1).is_ok());
    assert!(w.machine.io().busy(1));
}

#[test]
fn segment_descriptor_reads_are_unprivileged_but_counted() {
    // Reading a descriptor is how the hardware works on every
    // reference; the accessor is available in any ring and costs
    // memory traffic on a cache miss.
    let mut w = world_in_ring(Ring::R4);
    let before = w.machine.phys().ref_count();
    let sdw = w
        .machine
        .segment_descriptor(SegNo::new(10).unwrap())
        .unwrap();
    assert!(sdw.execute);
    assert!(w.machine.phys().ref_count() > before, "miss walked memory");
    let mid = w.machine.phys().ref_count();
    let _ = w
        .machine
        .segment_descriptor(SegNo::new(10).unwrap())
        .unwrap();
    assert_eq!(w.machine.phys().ref_count(), mid, "hit cost nothing");
}

#[test]
fn device_input_reaches_programs() {
    // Type a line on the device, SIO an input transfer from ring 0,
    // and find the characters in memory after completion.
    let mut w = world_in_ring(Ring::R0);
    w.machine.io_mut().device_mut(3).type_line("ok");
    let buf = ring_core::addr::AbsAddr::new(0o70000).unwrap();
    let (w0, w1) = IoSystem::channel_program(3, Direction::Input, buf, 2);
    w.machine.start_io(w0, w1).unwrap();
    // Run NOPs until the completion trap fires (the trap segment has
    // no handler registered here, so the machine halts on it — after
    // the DMA happened).
    let code = SegNo::new(10).unwrap();
    for i in 0..40 {
        w.poke_instr(
            code,
            i,
            ring_cpu::isa::Instr::direct(ring_cpu::isa::Opcode::Nop, 0),
        );
    }
    let _ = w.machine.run(60);
    assert_eq!(
        w.machine.phys().peek(buf).unwrap(),
        Word::new(u64::from(b'o'))
    );
    assert_eq!(
        w.machine.phys().peek(buf.wrapping_add(1)).unwrap(),
        Word::new(u64::from(b'k'))
    );
}
