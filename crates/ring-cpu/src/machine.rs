//! The processor: registers, configuration, cycle accounting, and the
//! instruction-cycle driver.
//!
//! The instruction cycle follows the paper's narrative exactly:
//! instruction retrieval with the Fig. 4 validation (`fetch` phase,
//! here), effective-address formation per Fig. 5 ([`crate::ea`]),
//! operand access or transfer per Figs. 6–7 ([`crate::exec`]), and the
//! CALL/RETURN ring switching of Figs. 8–9 ([`crate::callret`]). Traps
//! force ring 0 ([`crate::trap`]).
//!
//! # Cycle model
//!
//! Simulated time is counted in "cycles": one cycle per physical-memory
//! reference (so descriptor walks, page-table walks, indirect-word
//! fetches and operand references all cost what they touch), plus a
//! per-instruction base cost, plus fixed overheads for traps and DBR
//! loads. The SDW associative memory absorbs descriptor-walk references
//! on hits, exactly the effect it has in hardware.

use ring_core::access::Fault;
use ring_core::addr::{SegAddr, SegNo, WordNo, MAX_WORDNO};
use ring_core::callret::StackRule;
use ring_core::effective::EffectiveRingRules;
use ring_core::registers::{Dbr, Ipr, PtrReg, NUM_PR};
use ring_core::ring::Ring;
use ring_core::sdw::Sdw;
use ring_core::validate;
use ring_core::word::Word;
use ring_metrics::{EventSink, FastPathStats, Metrics, MetricsSnapshot, SdwCacheStats};
use ring_segmem::phys::PhysMem;
use ring_segmem::translate::Translator;

use crate::io::IoSystem;
use crate::isa::Instr;
use crate::native::{NativeAction, NativeRegistry};
use crate::trace::{Trace, TraceEvent};
use crate::trap::SavedState;

/// Fixed cycle costs beyond counted memory references.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Base cost of every instruction (decode + ALU).
    pub base_instruction: u64,
    /// Overhead of a trap: forcing ring 0, state save sequencing
    /// (the save-area stores are counted as memory references on top).
    pub trap_overhead: u64,
    /// Overhead of loading the DBR (beyond the associative-memory
    /// flush, whose cost shows up as subsequent misses).
    pub dbr_load: u64,
    /// Overhead of restoring processor state (RETT), beyond the
    /// save-area reads.
    pub rett_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_instruction: 1,
            trap_overhead: 12,
            dbr_load: 5,
            rett_overhead: 6,
        }
    }
}

/// Static machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Stack-segment selection rule used by CALL (Fig. 8 + footnote).
    pub stack_rule: StackRule,
    /// Effective-ring formation rules (full paper design by default;
    /// weakened variants for the T6 ablation).
    pub ea_rules: EffectiveRingRules,
    /// Maximum indirect-word chain length before faulting.
    pub indirect_limit: u32,
    /// SDW associative-memory capacity.
    pub sdw_cache: usize,
    /// Segment containing the trap vectors and save area (must be a
    /// present, unpaged ring-0 segment).
    pub trap_segno: SegNo,
    /// Word number of trap vector 0 within the trap segment.
    pub trap_vector_base: u32,
    /// Word number of the processor state save area within the trap
    /// segment.
    pub trap_save_offset: u32,
    /// Which pointer register is the stack pointer by software
    /// convention (Multics used PR6).
    pub sp_pr: u8,
    /// Hardening beyond the paper (the eventual Multics 6180 adopted
    /// it): privileged instructions additionally require the executing
    /// segment's SDW privileged bit, not just ring 0. Off by default
    /// (the paper restricts by ring alone).
    pub require_privileged_segments: bool,
    /// Run common instructions through the fast-path engine (the
    /// `fastpath` module): cached ring-checked translations plus a
    /// predecoded instruction cache. Architecturally invisible —
    /// registers, memory, faults and simulated cycle counts are
    /// identical either way — so it is on by default; turn it off to
    /// run the reference interpreter alone (`--no-fastpath` in the
    /// tools).
    pub fastpath: bool,
    /// Fixed cycle costs.
    pub costs: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            stack_rule: StackRule::DbrBase,
            ea_rules: EffectiveRingRules::PAPER,
            indirect_limit: 16,
            sdw_cache: ring_segmem::sdw_cache::SdwCache::DEFAULT_CAPACITY,
            trap_segno: SegNo::from_bits(1),
            trap_vector_base: 0,
            trap_save_offset: 64,
            sp_pr: 6,
            require_privileged_segments: false,
            fastpath: true,
            costs: CostModel::default(),
        }
    }
}

/// Execution statistics maintained by the machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Instructions completed (including those that then trapped).
    pub instructions: u64,
    /// CALLs that stayed in the same ring.
    pub calls_same_ring: u64,
    /// CALLs that switched the ring downward in hardware.
    pub calls_downward: u64,
    /// RETURNs that stayed in the same ring.
    pub returns_same_ring: u64,
    /// RETURNs that switched the ring upward in hardware.
    pub returns_upward: u64,
    /// Traps taken, by any cause.
    pub traps: u64,
    /// Upward-call traps (software-assisted ring crossing).
    pub upward_call_traps: u64,
    /// Downward-return traps (software-assisted ring crossing).
    pub downward_return_traps: u64,
    /// Native-procedure invocations.
    pub native_calls: u64,
    /// Instructions committed by the fast-path engine (a subset of
    /// `instructions`).
    pub fast_steps: u64,
}

/// Outcome of a single [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction completed normally.
    Ran,
    /// A fault was detected and the processor trapped to ring 0.
    Trapped(Fault),
    /// The processor is halted.
    Halted,
}

/// Why [`Machine::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// A HALT instruction was executed in ring 0.
    Halted,
    /// The instruction budget was exhausted.
    BudgetExhausted,
    /// The simulated-cycle watermark was reached
    /// ([`Machine::run_to_cycle`] only) — the machine is still live and
    /// can continue running.
    CycleLimit,
    /// A fault occurred while entering a trap (unrecoverable).
    DoubleFault(Fault),
}

/// The simulated processor plus its memory system.
///
/// # Examples
///
/// Build a one-segment world with [`crate::testkit::World`], run a
/// two-instruction program, and observe the registers:
///
/// ```
/// use ring_core::ring::Ring;
/// use ring_core::sdw::SdwBuilder;
/// use ring_cpu::isa::{Instr, Opcode};
/// use ring_cpu::machine::StepOutcome;
/// use ring_cpu::testkit::World;
///
/// let mut w = World::new();
/// let code = w.add_segment(
///     10,
///     SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(16),
/// );
/// w.poke_instr(code, 0, Instr::direct(Opcode::Lda, 40).immediate());
/// w.poke_instr(code, 1, Instr::direct(Opcode::Ada, 2).immediate());
/// w.start(Ring::R4, code, 0);
/// assert_eq!(w.machine.step(), StepOutcome::Ran);
/// assert_eq!(w.machine.step(), StepOutcome::Ran);
/// assert_eq!(w.machine.a().raw(), 42);
/// assert_eq!(w.machine.ring(), Ring::R4);
/// ```
pub struct Machine {
    pub(crate) phys: PhysMem,
    pub(crate) tr: Translator,
    pub(crate) dbr: Dbr,
    pub(crate) ipr: Ipr,
    pub(crate) prs: [PtrReg; NUM_PR],
    pub(crate) a: Word,
    pub(crate) q: Word,
    pub(crate) x: [u32; 8],
    pub(crate) ind_zero: bool,
    pub(crate) ind_neg: bool,
    pub(crate) timer: Option<u64>,
    pub(crate) cycles: u64,
    pub(crate) config: MachineConfig,
    pub(crate) in_trap: bool,
    pub(crate) last_fault: Option<Fault>,
    pub(crate) natives: NativeRegistry,
    pub(crate) io: IoSystem,
    pub(crate) halted: bool,
    pub(crate) double_fault: Option<Fault>,
    pub(crate) stats: ExecStats,
    pub(crate) trace: Trace,
    pub(crate) metrics: Metrics,
    pub(crate) last_use: Option<crate::isa::OperandUse>,
    pub(crate) extra_cycles: u64,
    pub(crate) fast: crate::fastpath::FastState,
    pub(crate) spans: ring_trace::SpanRecorder,
    pub(crate) chaos: ring_chaos::ChaosEngine,
    pub(crate) chaos_protect: Vec<(u32, u32)>,
    pub(crate) prof: ring_prof::Profiler,
    pub(crate) timeseries: ring_prof::TimeSeries,
}

impl Machine {
    /// Creates a machine with `phys_words` of zeroed physical memory.
    ///
    /// The DBR starts empty (bound 0); world-building code installs a
    /// descriptor segment and loads the DBR before execution starts.
    pub fn new(phys_words: usize, config: MachineConfig) -> Machine {
        Machine::with_phys(PhysMem::new(phys_words), config)
    }

    /// Creates a machine around an existing physical memory — typically
    /// a copy-on-write view over a shared boot image
    /// ([`PhysMem::cow`]), so a fleet of machines can share one frozen
    /// image instead of each allocating private storage.
    pub fn with_phys(phys: PhysMem, config: MachineConfig) -> Machine {
        Machine {
            phys,
            tr: Translator::new(config.sdw_cache),
            dbr: Dbr::new(ring_core::addr::AbsAddr::ZERO, 0, SegNo::from_bits(0)),
            ipr: Ipr::new(Ring::R0, SegAddr::new(SegNo::from_bits(0), WordNo::ZERO)),
            prs: [PtrReg::NULL; NUM_PR],
            a: Word::ZERO,
            q: Word::ZERO,
            x: [0; 8],
            ind_zero: true,
            ind_neg: false,
            timer: None,
            cycles: 0,
            config,
            in_trap: false,
            last_fault: None,
            natives: NativeRegistry::new(),
            io: IoSystem::new(),
            halted: false,
            double_fault: None,
            stats: ExecStats::default(),
            trace: Trace::disabled(),
            metrics: Metrics::disabled(),
            last_use: None,
            extra_cycles: 0,
            fast: crate::fastpath::FastState::new(),
            spans: ring_trace::SpanRecorder::new(),
            chaos: ring_chaos::ChaosEngine::off(),
            chaos_protect: Vec::new(),
            prof: ring_prof::Profiler::default(),
            timeseries: ring_prof::TimeSeries::default(),
        }
    }

    // ---- register and state access -------------------------------------

    /// The accumulator.
    pub fn a(&self) -> Word {
        self.a
    }

    /// Sets the accumulator (native procedures / world building).
    pub fn set_a(&mut self, v: Word) {
        self.a = v;
        self.set_indicators(v);
    }

    /// The Q register.
    pub fn q(&self) -> Word {
        self.q
    }

    /// Sets the Q register.
    pub fn set_q(&mut self, v: Word) {
        self.q = v;
    }

    /// Index register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn xreg(&self, n: usize) -> u32 {
        self.x[n]
    }

    /// Sets index register `n` (masked to 18 bits).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn set_xreg(&mut self, n: usize, v: u32) {
        self.x[n] = v & MAX_WORDNO;
    }

    /// Pointer register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn pr(&self, n: usize) -> PtrReg {
        self.prs[n]
    }

    /// Sets pointer register `n`, flooring its ring at the current ring
    /// of execution so the hardware invariant `PRn.RING >= IPR.RING` is
    /// preserved (this models a load performed by EAP, which inherits
    /// the invariant from `TPR.RING`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn set_pr(&mut self, n: usize, pr: PtrReg) {
        self.prs[n] = pr.with_ring_floor(self.ipr.ring);
    }

    /// The instruction pointer.
    pub fn ipr(&self) -> Ipr {
        self.ipr
    }

    /// Starts execution at `ipr` (world building / examples).
    pub fn set_ipr(&mut self, ipr: Ipr) {
        self.ipr = ipr;
    }

    /// The current ring of execution.
    pub fn ring(&self) -> Ring {
        self.ipr.ring
    }

    /// The descriptor base register.
    pub fn dbr(&self) -> Dbr {
        self.dbr
    }

    /// Loads the DBR directly (world building; running programs use the
    /// privileged LDBR instruction). Flushes the SDW associative memory.
    pub fn load_dbr(&mut self, dbr: Dbr) {
        self.dbr = dbr;
        self.tr.flush_cache();
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The most recent fault taken (cleared by RETT).
    pub fn last_fault(&self) -> Option<Fault> {
        self.last_fault
    }

    /// True once the processor has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The fault that caused a double-fault halt, if any.
    pub fn double_fault(&self) -> Option<Fault> {
        self.double_fault
    }

    /// Clears the halt condition (operator restart). Double faults are
    /// not cleared — a machine that faulted while entering a trap needs
    /// its world repaired, not a restart.
    pub fn clear_halt(&mut self) {
        if self.double_fault.is_none() {
            self.halted = false;
        }
    }

    /// Direct access to physical memory (world building and assertions;
    /// bypasses translation and protection exactly like a front panel).
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// Read-only access to physical memory.
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// The translation engine (SDW cache statistics, etc.).
    pub fn translator(&self) -> &Translator {
        &self.tr
    }

    /// Mutable access to the translation engine (world building).
    pub fn translator_mut(&mut self) -> &mut Translator {
        &mut self.tr
    }

    /// Sets the interval timer (world building; programs use LDT).
    pub fn set_timer(&mut self, t: Option<u64>) {
        self.timer = t;
    }

    /// The interval timer's remaining cycles, if it is armed. The
    /// kernel uses this to re-arm the quantum only on machines that
    /// run preemptively.
    pub fn timer(&self) -> Option<u64> {
        self.timer
    }

    /// Enables execution tracing with the given capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::enabled(capacity);
    }

    /// Drains and returns the trace events recorded so far.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Drains the trace with global sequence numbers, so a consumer can
    /// tell how many earlier events were dropped by the ring buffer.
    pub fn take_trace_seq(&mut self) -> Vec<(u64, TraceEvent)> {
        self.trace.take_seq()
    }

    /// Trace events discarded so far because the buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Turns on the span flight recorder: every CALL and trap entry
    /// opens a span and every RETURN/RETT closes it, keyed by `(ring,
    /// segment, entry word)`. Off by default: a disabled recorder costs
    /// one branch on the CALL/RETURN/trap slow paths only and changes
    /// no architectural state either way.
    pub fn enable_spans(&mut self) {
        self.spans.enable();
    }

    /// The span recorder (read-only).
    pub fn spans(&self) -> &ring_trace::SpanRecorder {
        &self.spans
    }

    /// Drains the recorded span events (the recorder stays enabled).
    pub fn take_span_events(&mut self) -> Vec<ring_trace::SpanEvent> {
        self.prof.note_drained(self.spans.events());
        self.spans.take_events()
    }

    /// Attaches the cycle-driven sampling profiler (`ring-prof`):
    /// every `sample_every` simulated cycles a weighted stack sample
    /// is taken at a step boundary (never inside a trap), and every
    /// `timeseries_every` cycles the full metrics snapshot is recorded
    /// for interval telemetry. Either period can be zero to disable
    /// that pipeline. Enabling the profiler also enables the span
    /// recorder (the sampled stacks are derived from it). Profiling is
    /// purely observational: simulated cycles, registers and faults
    /// are bit-identical with it on or off.
    pub fn enable_profiler(&mut self, sample_every: u64, timeseries_every: u64) {
        self.prof = ring_prof::Profiler::new(sample_every);
        self.timeseries = ring_prof::TimeSeries::new(timeseries_every);
        if sample_every > 0 {
            self.spans.enable();
        }
    }

    /// The sampling profiler (read-only).
    pub fn profiler(&self) -> &ring_prof::Profiler {
        &self.prof
    }

    /// The interval time-series pipeline (read-only).
    pub fn timeseries(&self) -> &ring_prof::TimeSeries {
        &self.timeseries
    }

    /// Notes that the supervisor dispatched process `pid` at the
    /// current cycle count. Paints per-process scheduler tracks in the
    /// span flight recorder; a no-op (one branch) while spans are off,
    /// and never a change to architectural state.
    pub fn note_sched(&mut self, pid: u32) {
        let cycles = self.cycles;
        self.spans.sched(pid, cycles);
    }

    /// Turns on metrics collection (ring crossings, faults, cycle
    /// histograms, the per-segment heatmap). Off by default: a disabled
    /// recorder costs one branch per event and changes no architectural
    /// state either way.
    pub fn enable_metrics(&mut self) {
        self.metrics.enable();
    }

    /// The metrics recorder (read-only).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics recorder (reset, re-enablement).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// SDW associative-memory statistics, independent of the metrics
    /// recorder (the cache counts its own traffic).
    pub fn sdw_cache_stats(&self) -> ring_segmem::sdw_cache::CacheStats {
        self.tr.cache_stats()
    }

    /// Builds an export-ready snapshot of everything recorded: metrics
    /// counters and histograms, execution totals, and SDW-cache
    /// statistics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cs = self.tr.cache_stats();
        let mut snap = MetricsSnapshot::new(
            &self.metrics,
            self.stats.instructions,
            self.cycles,
            SdwCacheStats {
                hits: cs.hits,
                misses: cs.misses,
                flushes: cs.flushes,
                invalidations: cs.invalidations,
            },
            self.fastpath_stats(),
        );
        snap.prof = ring_metrics::ProfStats {
            samples: self.prof.samples(),
            sample_every: self.prof.sample_every(),
            timeseries_points: self.timeseries.len() as u64,
            timeseries_every: self.timeseries.every(),
        };
        snap.trace_dropped = self.trace.dropped();
        if self.chaos.enabled() {
            for (k, v) in self.chaos.export_pairs() {
                snap.push_extra(k, v);
            }
            snap.push_extra("chaos.repaired", self.phys.repaired_count());
            snap.push_extra(
                "chaos.latent",
                self.phys.poison_count()
                    + self.chaos.armed_drum_errors()
                    + u64::from(self.io.pending_watchdogs()),
            );
        }
        snap
    }

    /// Fast-path engine counters: instructions by path, lookaside
    /// traffic, and instruction-cache traffic.
    pub fn fastpath_stats(&self) -> FastPathStats {
        let tlb = self.tr.tlb_stats();
        FastPathStats {
            fast_instructions: self.stats.fast_steps,
            slow_instructions: self.stats.instructions - self.stats.fast_steps,
            tlb_hits: tlb.hits,
            tlb_misses: tlb.misses,
            tlb_installs: tlb.installs,
            tlb_invalidations: tlb.invalidations,
            tlb_flushes: tlb.flushes,
            icache_hits: self.fast.icache.hits,
            icache_misses: self.fast.icache.misses,
        }
    }

    /// Charges extra simulated cycles (used by native procedures to
    /// account for the work a compiled-code body would have done).
    pub fn charge(&mut self, cycles: u64) {
        self.extra_cycles += cycles;
    }

    /// Advances the simulated clock by `n` cycles without executing
    /// anything. This is supervisor dead time — the restart backoff
    /// between a machine failure and the restarted machine's first
    /// instruction — so it moves the clock directly rather than going
    /// through [`Machine::charge`] (whose cycles attach to the next
    /// instruction) and does not consume the preemption timer.
    pub fn advance_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Arms the chaos engine (deterministic fault injection). The
    /// default engine is inert; arming replaces it wholesale, so this
    /// happens during world building, before execution starts.
    pub fn set_chaos(&mut self, engine: ring_chaos::ChaosEngine) {
        self.chaos = engine;
    }

    /// The chaos engine (injection/detection ledger).
    pub fn chaos(&self) -> &ring_chaos::ChaosEngine {
        &self.chaos
    }

    /// Mutable chaos engine access — the supervisor consumes armed drum
    /// errors and reports recoveries through this.
    pub fn chaos_mut(&mut self) -> &mut ring_chaos::ChaosEngine {
        &mut self.chaos
    }

    /// Registers a physical range `[lo, hi)` that chaos injection must
    /// never poison. The supervisor registers the per-process trap-SDW
    /// pairs here: a parity error met while entering a trap is an
    /// unrecoverable double fault, so those words play the role of the
    /// real hardware's dedicated (parity-checked-and-corrected) trap
    /// storage.
    pub fn chaos_protect(&mut self, lo: u32, hi: u32) {
        self.chaos_protect.push((lo, hi));
    }

    /// The I/O system (device queues).
    pub fn io_mut(&mut self) -> &mut IoSystem {
        &mut self.io
    }

    /// Read-only access to the I/O system.
    pub fn io(&self) -> &IoSystem {
        &self.io
    }

    pub(crate) fn set_indicators(&mut self, v: Word) {
        self.ind_zero = v.is_zero();
        self.ind_neg = v.is_negative();
    }

    // ---- supervisor-level services (native ring-0 procedures) ----

    /// Reads the SDW currently installed for `segno` (counted like the
    /// hardware's descriptor walk; served from the associative memory
    /// when possible).
    pub fn segment_descriptor(&mut self, segno: SegNo) -> Result<Sdw, Fault> {
        self.tr.fetch_sdw(
            &mut self.phys,
            &self.dbr,
            SegAddr::new(segno, WordNo::ZERO),
            ring_core::access::AccessMode::Read,
        )
    }

    /// Writes `sdw` into the current descriptor segment for `segno` and
    /// invalidates its associative-memory entry (so the change is
    /// immediately effective). Refused outside ring 0: this is
    /// supervisor work.
    pub fn store_descriptor(&mut self, segno: SegNo, sdw: &Sdw) -> Result<(), Fault> {
        if self.ipr.ring != Ring::R0 {
            return Err(Fault::PrivilegedViolation {
                ring: self.ipr.ring,
            });
        }
        self.tr.store_sdw(&mut self.phys, &self.dbr, segno, sdw)
    }

    /// Starts an I/O channel from a two-word channel program — the
    /// native-procedure equivalent of the privileged SIO instruction,
    /// with the same ring-0 restriction.
    pub fn start_io(&mut self, w0: Word, w1: Word) -> Result<(), Fault> {
        if self.ipr.ring != Ring::R0 {
            return Err(Fault::PrivilegedViolation {
                ring: self.ipr.ring,
            });
        }
        let now = self.cycles;
        self.io.start(w0, w1, now)
    }

    // ---- validated memory access (the paths native procedures use) ----

    /// Fetches the SDW for `addr.segno` (counted like hardware).
    ///
    /// This is the single chokepoint every validated reference funnels
    /// through, so it is also where the metrics layer observes memory
    /// traffic: SDW-cache hit/miss latency and the per-segment access
    /// heatmap.
    pub(crate) fn sdw_for(
        &mut self,
        addr: SegAddr,
        mode: ring_core::access::AccessMode,
    ) -> Result<Sdw, Fault> {
        if !self.metrics.is_enabled() {
            return self.tr.fetch_sdw(&mut self.phys, &self.dbr, addr, mode);
        }
        let hits_before = self.tr.cache_stats().hits;
        let refs_before = self.phys.ref_count();
        let result = self.tr.fetch_sdw(&mut self.phys, &self.dbr, addr, mode);
        let hit = self.tr.cache_stats().hits > hits_before;
        self.metrics
            .sdw_lookup(hit, self.phys.ref_count() - refs_before);
        if result.is_ok() {
            self.metrics.access(addr.segno.value(), mode);
        }
        result
    }

    /// Reads a word with full hardware validation at the effective ring
    /// of `ptr` — exactly what an `LDA ptr|0` would do.
    ///
    /// Native procedures must use this (or the other `*_validated`
    /// accessors) for every reference they make on behalf of a caller,
    /// so that cross-ring argument references are validated exactly as
    /// compiled code's references would be.
    pub fn read_validated(&mut self, ptr: PtrReg) -> Result<Word, Fault> {
        // The pointer's ring field is an effective validation level
        // (TPR.RING so far) and is always honoured; the ablation rules
        // govern only what gets folded in during chain traversal.
        let ring = self.ipr.ring.least_privileged(ptr.ring);
        let sdw = self.sdw_for(ptr.addr, ring_core::access::AccessMode::Read)?;
        validate::check_read(&sdw, ptr.addr, ring)?;
        let abs = self.tr.resolve(&mut self.phys, &sdw, ptr.addr, false)?;
        self.phys.read(abs)
    }

    /// Writes a word with full hardware validation at the effective
    /// ring of `ptr` — exactly what an `STA ptr|0` would do.
    pub fn write_validated(&mut self, ptr: PtrReg, value: Word) -> Result<(), Fault> {
        let ring = self.ipr.ring.least_privileged(ptr.ring);
        let sdw = self.sdw_for(ptr.addr, ring_core::access::AccessMode::Write)?;
        validate::check_write(&sdw, ptr.addr, ring)?;
        let abs = self.tr.resolve(&mut self.phys, &sdw, ptr.addr, true)?;
        self.phys.write(abs, value)
    }

    /// Retrieves the indirect-word pair at `ptr` — following any
    /// further-indirection chain — and returns a pointer whose ring is
    /// the folded effective ring (current ring, `ptr`'s ring, every
    /// indirect word's ring, every containing segment's write-bracket
    /// top): exactly the Fig. 5 treatment. This is how a native
    /// procedure dereferences an argument-list entry safely.
    pub fn read_pointer_validated(&mut self, ptr: PtrReg) -> Result<PtrReg, Fault> {
        let mut ring = ring_core::effective::fold_pr(self.ipr.ring, ptr.ring, self.config.ea_rules);
        let mut addr = ptr.addr;
        let mut depth = 0u32;
        loop {
            depth += 1;
            if depth > self.config.indirect_limit {
                return Err(Fault::IndirectLimit);
            }
            let sdw = self.sdw_for(addr, ring_core::access::AccessMode::Read)?;
            validate::check_read(&sdw, addr, ring)?;
            let second = SegAddr::new(addr.segno, addr.wordno.wrapping_add(1));
            if !sdw.in_bounds(second.wordno) {
                return Err(Fault::AccessViolation {
                    mode: ring_core::access::AccessMode::Read,
                    violation: ring_core::access::Violation::OutOfBounds,
                    addr: second,
                    ring,
                });
            }
            let abs0 = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
            let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, false)?;
            let w0 = self.phys.read(abs0)?;
            let w1 = self.phys.read(abs1)?;
            let iw = ring_core::registers::IndWord::unpack(w0, w1);
            ring = ring_core::effective::fold_indirect(ring, iw.ring, &sdw, self.config.ea_rules);
            addr = iw.addr;
            if !iw.indirect {
                return Ok(PtrReg::new(ring, addr));
            }
        }
    }

    /// Stores `ptr` as an indirect-word pair at `at` with write
    /// validation — what SPRI does.
    pub fn write_pointer_validated(&mut self, at: PtrReg, ptr: PtrReg) -> Result<(), Fault> {
        let ring = self.ipr.ring.least_privileged(at.ring);
        let sdw = self.sdw_for(at.addr, ring_core::access::AccessMode::Write)?;
        validate::check_write(&sdw, at.addr, ring)?;
        let second = SegAddr::new(at.addr.segno, at.addr.wordno.wrapping_add(1));
        if !sdw.in_bounds(second.wordno) {
            return Err(Fault::AccessViolation {
                mode: ring_core::access::AccessMode::Write,
                violation: ring_core::access::Violation::OutOfBounds,
                addr: second,
                ring,
            });
        }
        let (w0, w1) = ring_core::registers::IndWord::from_ptr(ptr).pack();
        let abs0 = self.tr.resolve(&mut self.phys, &sdw, at.addr, true)?;
        let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, true)?;
        self.phys.write(abs0, w0)?;
        self.phys.write(abs1, w1)
    }

    /// Returns a pointer to the `n`-th argument given the argument-list
    /// pointer `ap`: dereferences the indirect pair at `ap + 2n`. The
    /// returned pointer carries the effective validation ring, so
    /// subsequent [`Machine::read_validated`] / [`Machine::write_validated`]
    /// through it are automatically validated "as though execution were
    /// occurring in the (higher numbered) ring of the calling procedure".
    pub fn arg_pointer(&mut self, ap: PtrReg, n: u32) -> Result<PtrReg, Fault> {
        let slot = PtrReg::new(
            ap.ring,
            SegAddr::new(ap.addr.segno, ap.addr.wordno.wrapping_add(2 * n)),
        );
        self.read_pointer_validated(slot)
    }

    // ---- instruction cycle ---------------------------------------------

    /// Executes one instruction (or takes one trap).
    pub fn step(&mut self) -> StepOutcome {
        if self.halted {
            return StepOutcome::Halted;
        }
        // Asynchronous conditions are recognised between instructions,
        // and held off while a trap is being serviced (the save area
        // holds state the supervisor has not yet copied). Chaos
        // injection obeys the same eligibility window, so it is part of
        // the deterministic simulated state and replays identically.
        if !self.in_trap {
            // The profiler samples at the same eligibility window:
            // deterministic in simulated cycles, purely observational
            // (no counted memory references), so cycle counts are
            // identical with it on or off.
            if self.prof.due(self.cycles) {
                let (cycles, ring, segno) = (
                    self.cycles,
                    self.ipr.ring.number(),
                    self.ipr.addr.segno.value(),
                );
                self.prof.tick(cycles, ring, segno, self.spans.events());
            }
            if self.timeseries.due(self.cycles) {
                let snap = self.metrics_snapshot();
                self.timeseries.record(self.cycles, snap);
            }
            if self.chaos.enabled() {
                self.chaos_tick();
            }
            if let Some(f) = self.pending_async() {
                return self.take_trap(self.snapshot(), f);
            }
        }
        let refs_before = self.phys.ref_count();
        self.extra_cycles = 0;
        self.last_use = None;
        // The fast path either commits a whole instruction or bails
        // with nothing mutated, so the pre-instruction snapshot is only
        // needed (and only valid to defer) for the slow path.
        let (result, snapshot) = if self.config.fastpath && self.try_execute_fast().is_some() {
            (Ok(()), None)
        } else {
            if self.config.fastpath {
                self.tr.fast_note_miss();
            }
            let snapshot = self.snapshot();
            (self.execute_one(), Some(snapshot))
        };
        self.stats.instructions += 1;
        let spent = self.config.costs.base_instruction
            + (self.phys.ref_count() - refs_before)
            + self.extra_cycles;
        self.cycles += spent;
        if let Some(t) = self.timer.as_mut() {
            *t = t.saturating_sub(spent);
        }
        if result.is_ok() && self.metrics.is_enabled() {
            // Attribute the whole instruction's cycle cost to the
            // CALL/RETURN path histograms (completed paths only).
            match self.last_use {
                Some(crate::isa::OperandUse::Call) => self.metrics.call_cycles(spent),
                Some(crate::isa::OperandUse::Return) => self.metrics.return_cycles(spent),
                _ => {}
            }
        }
        match result {
            Ok(()) => {
                if self.halted {
                    StepOutcome::Halted
                } else {
                    StepOutcome::Ran
                }
            }
            Err(fault) => {
                let snapshot = snapshot.expect("fast path cannot fault");
                self.take_trap(snapshot, fault)
            }
        }
    }

    /// Runs until halt, a double fault, or `budget` instructions.
    pub fn run(&mut self, budget: u64) -> RunExit {
        for _ in 0..budget {
            match self.step() {
                StepOutcome::Halted => {
                    return match self.double_fault {
                        Some(f) => RunExit::DoubleFault(f),
                        None => RunExit::Halted,
                    }
                }
                StepOutcome::Ran | StepOutcome::Trapped(_) => {}
            }
        }
        RunExit::BudgetExhausted
    }

    /// Runs until halt, a double fault, `budget` instructions, or the
    /// simulated clock reaching `cycle_watermark` — whichever first.
    ///
    /// This is the checkpoint-cadence / watchdog primitive: a
    /// supervisor runs the machine in cycle-bounded slices, capturing a
    /// checkpoint at each [`RunExit::CycleLimit`] return, and treats a
    /// machine that exhausts its cycle budget without halting as
    /// wedged. Slicing is architecturally invisible — the steps taken
    /// are exactly the steps [`Machine::run`] would take.
    pub fn run_to_cycle(&mut self, cycle_watermark: u64, budget: u64) -> RunExit {
        for _ in 0..budget {
            if self.cycles >= cycle_watermark {
                return RunExit::CycleLimit;
            }
            match self.step() {
                StepOutcome::Halted => {
                    return match self.double_fault {
                        Some(f) => RunExit::DoubleFault(f),
                        None => RunExit::Halted,
                    }
                }
                StepOutcome::Ran | StepOutcome::Trapped(_) => {}
            }
        }
        RunExit::BudgetExhausted
    }

    fn pending_async(&mut self) -> Option<Fault> {
        if matches!(self.timer, Some(0)) {
            self.timer = None;
            return Some(Fault::TimerRunout);
        }
        if let Some(channel) = self.io.take_completion(self.cycles, &mut self.phys) {
            return Some(Fault::IoCompletion { channel });
        }
        if let Some(channel) = self.io.take_watchdog_expiry(self.cycles) {
            return Some(Fault::IoError {
                channel,
                code: crate::io::IO_ERROR_WATCHDOG,
            });
        }
        None
    }

    fn execute_one(&mut self) -> Result<(), Fault> {
        // ---- Fig. 4: retrieve the next instruction ----
        let iaddr = self.ipr.addr;
        let isdw = self.sdw_for(iaddr, ring_core::access::AccessMode::Execute)?;
        validate::check_fetch(&isdw, iaddr, self.ipr.ring)?;
        if let Some(handler) = self.natives.handler(iaddr.segno) {
            self.stats.native_calls += 1;
            self.trace.push(|| TraceEvent::Native {
                segno: iaddr.segno,
                entry: iaddr.wordno,
            });
            let action = handler(self, iaddr.wordno)?;
            return self.apply_native_action(action);
        }
        let abs = self.tr.resolve(&mut self.phys, &isdw, iaddr, false)?;
        let iword = self.phys.read(abs)?;
        if self.config.fastpath {
            // Warm both fast-path caches from the successful slow
            // fetch (the natives intercept above already passed, so
            // plain fetches from this page are safe to cache).
            self.tr
                .fast_install(&self.phys, iaddr, self.ipr.ring, &isdw, false);
        }
        let instr = Instr::decode(iword)?;
        if self.config.fastpath {
            self.fast.icache.install(iaddr, iword, instr);
        }
        self.trace.push(|| TraceEvent::Instr {
            at: self.ipr,
            instr,
        });
        let use_class = instr.opcode.operand_use();
        self.last_use = Some(use_class);
        self.metrics
            .instruction(self.ipr.ring, use_class.metric_class());
        // The instruction counter advances before execution; transfers
        // overwrite it.
        self.ipr.addr = SegAddr::new(iaddr.segno, iaddr.wordno.wrapping_add(1));
        self.exec_instr(instr, iaddr.segno, &isdw)
    }

    fn apply_native_action(&mut self, action: NativeAction) -> Result<(), Fault> {
        match action {
            NativeAction::Return { via } => self.exec_return_via(via),
            NativeAction::Resume => self.exec_rett(),
            NativeAction::Halt => {
                self.halted = true;
                Ok(())
            }
        }
    }

    pub(crate) fn snapshot(&self) -> SavedState {
        SavedState {
            ipr: self.ipr,
            prs: self.prs,
            a: self.a,
            q: self.q,
            x: self.x,
            ind_zero: self.ind_zero,
            ind_neg: self.ind_neg,
        }
    }

    pub(crate) fn restore(&mut self, s: &SavedState) {
        self.ipr = s.ipr;
        self.prs = s.prs;
        self.a = s.a;
        self.q = s.q;
        self.x = s.x;
        self.ind_zero = s.ind_zero;
        self.ind_neg = s.ind_neg;
    }
}
