//! A tiny world-builder for tests, benches and examples.
//!
//! `ring-os` builds complete systems (ACLs, processes, supervisor);
//! this module builds *bare* machines — a descriptor segment, a few
//! hand-placed segments, and a started processor — which is what unit
//! tests of the hardware want.

use ring_core::addr::{AbsAddr, SegAddr, SegNo, WordNo};
use ring_core::registers::{Dbr, IndWord, Ipr};
use ring_core::ring::Ring;
use ring_core::sdw::{Sdw, SdwBuilder};
use ring_core::word::Word;
use ring_segmem::layout::PhysAllocator;

use crate::isa::Instr;
use crate::machine::{Machine, MachineConfig};

/// Convenience two-part address constructor.
///
/// # Panics
///
/// Panics if either part is out of range.
pub fn addr(segno: u32, wordno: u32) -> SegAddr {
    SegAddr::from_parts(segno, wordno).expect("address in range")
}

/// A bare machine plus the bookkeeping to lay segments into it.
pub struct World {
    /// The machine under test.
    pub machine: Machine,
    alloc: PhysAllocator,
    dbr: Dbr,
}

/// Number of SDW slots in the test descriptor segment.
pub const TEST_SEGMENTS: u32 = 64;

impl World {
    /// A world with the default machine configuration.
    pub fn new() -> World {
        World::with_config(MachineConfig::default())
    }

    /// A world with a custom machine configuration.
    ///
    /// 256 KiW of physical memory; the descriptor segment (for
    /// [`TEST_SEGMENTS`] segments) is placed at the bottom and the DBR
    /// loaded. The DBR stack base is segment 48, so per-ring stacks are
    /// segments 48–55 under the footnote rule.
    pub fn with_config(config: MachineConfig) -> World {
        let mut machine = Machine::new(256 * 1024, config);
        let mut alloc = PhysAllocator::new(0o100, 256 * 1024);
        let desc = alloc
            .alloc(2 * TEST_SEGMENTS)
            .expect("room for descriptor segment");
        let dbr = Dbr::new(
            desc,
            TEST_SEGMENTS,
            SegNo::new(48).expect("48 is a valid segno"),
        );
        machine.load_dbr(dbr);
        World {
            machine,
            alloc,
            dbr,
        }
    }

    /// Allocates physical storage for a segment described by `builder`,
    /// installs its SDW at `segno`, and returns the segment number.
    ///
    /// # Panics
    ///
    /// Panics on allocation failure or a bad segment number.
    pub fn add_segment(&mut self, segno: u32, builder: SdwBuilder) -> SegNo {
        let probe = builder.build();
        let base = self
            .alloc
            .alloc(probe.length_words())
            .expect("segment storage");
        let sdw = builder.addr(base).build();
        self.install_sdw(segno, &sdw);
        SegNo::new(segno).expect("segment number")
    }

    /// Installs an SDW verbatim (for segments whose storage the caller
    /// manages, e.g. paged segments).
    ///
    /// # Panics
    ///
    /// Panics on a bad segment number or physical fault.
    pub fn install_sdw(&mut self, segno: u32, sdw: &Sdw) {
        let sn = SegNo::new(segno).expect("segment number");
        let base = self.dbr.sdw_addr(sn).expect("segno within descriptor");
        let (w0, w1) = sdw.pack();
        self.machine.phys_mut().poke(base, w0).expect("poke sdw");
        self.machine
            .phys_mut()
            .poke(base.wrapping_add(1), w1)
            .expect("poke sdw");
        self.machine.translator_mut().flush_cache();
    }

    /// Reads back the SDW currently installed for `segno`.
    ///
    /// # Panics
    ///
    /// Panics on a bad segment number.
    pub fn read_sdw(&self, segno: u32) -> Sdw {
        let sn = SegNo::new(segno).expect("segment number");
        let base = self.dbr.sdw_addr(sn).expect("segno within descriptor");
        let w0 = self.machine.phys().peek(base).expect("peek sdw");
        let w1 = self
            .machine
            .phys()
            .peek(base.wrapping_add(1))
            .expect("peek sdw");
        Sdw::unpack(w0, w1)
    }

    /// Allocates a fresh physical region of `words` words (for page
    /// tables and manual layouts).
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    pub fn alloc_raw(&mut self, words: u32) -> AbsAddr {
        self.alloc.alloc(words).expect("raw storage")
    }

    /// Writes `value` at `(segno, wordno)` through the installed SDW,
    /// bypassing protection (front-panel poke).
    ///
    /// # Panics
    ///
    /// Panics if the segment is paged/missing or the address is out of
    /// bounds — test worlds are expected to be well formed.
    pub fn poke(&mut self, segno: SegNo, wordno: u32, value: Word) {
        let sdw = self.read_sdw(segno.value());
        assert!(sdw.unpaged, "poke only supports unpaged segments");
        let abs = sdw.addr.wrapping_add(wordno);
        self.machine.phys_mut().poke(abs, value).expect("poke");
    }

    /// Reads the word at `(segno, wordno)` without counting traffic.
    ///
    /// # Panics
    ///
    /// Panics if the segment is paged or the physical address invalid.
    pub fn peek(&self, segno: SegNo, wordno: u32) -> Word {
        let sdw = self.read_sdw(segno.value());
        assert!(sdw.unpaged, "peek only supports unpaged segments");
        let abs = sdw.addr.wrapping_add(wordno);
        self.machine.phys().peek(abs).expect("peek")
    }

    /// Assembles `instr` into `(segno, wordno)`.
    pub fn poke_instr(&mut self, segno: SegNo, wordno: u32, instr: Instr) {
        self.poke(segno, wordno, instr.encode());
    }

    /// Writes an indirect-word pair at `(segno, wordno)`.
    pub fn write_ind_word(&mut self, segno: SegNo, wordno: u32, iw: IndWord) {
        let (w0, w1) = iw.pack();
        self.poke(segno, wordno, w0);
        self.poke(segno, wordno + 1, w1);
    }

    /// Points the processor at `(segno, wordno)` in ring `ring`.
    ///
    /// # Panics
    ///
    /// Panics if `wordno` is out of range.
    pub fn start(&mut self, ring: Ring, segno: SegNo, wordno: u32) {
        self.machine.set_ipr(Ipr::new(
            ring,
            SegAddr::new(segno, WordNo::new(wordno).expect("wordno")),
        ));
    }

    /// The DBR this world loaded.
    pub fn dbr(&self) -> Dbr {
        self.dbr
    }

    /// Installs the trap segment the machine configuration names: a
    /// present, unpaged ring-0 procedure segment big enough for the
    /// vector table and the processor-state save area. Returns its
    /// segment number; tests typically register a native handler on it.
    pub fn add_trap_segment(&mut self) -> SegNo {
        let segno = self.machine.config().trap_segno.value();
        self.add_segment(
            segno,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
                .write(true)
                .bound_words(256),
        )
    }

    /// Adds the eight standard per-ring stack segments (segments
    /// `stack_base + r`), each writable-through ring `r` exactly as the
    /// paper prescribes ("the stack segment for procedures executing in
    /// ring n has read and write brackets that end at ring n"), with the
    /// next-free-frame word initialised to `first_frame`.
    pub fn add_standard_stacks(&mut self, first_frame: u32) {
        let base = self.dbr.stack_base.value();
        for r in Ring::all() {
            let segno = base + u32::from(r.number());
            let sn = self.add_segment(segno, SdwBuilder::data(r, r).bound_words(1024));
            self.poke(sn, 0, Word::new(u64::from(first_frame)));
        }
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_laid_out_disjoint() {
        let mut w = World::new();
        let a = w.add_segment(2, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(32));
        let b = w.add_segment(3, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(32));
        let sa = w.read_sdw(a.value());
        let sb = w.read_sdw(b.value());
        assert!(sa.addr.value() + 32 <= sb.addr.value());
    }

    #[test]
    fn poke_peek_round_trip() {
        let mut w = World::new();
        let s = w.add_segment(2, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(32));
        w.poke(s, 5, Word::new(99));
        assert_eq!(w.peek(s, 5), Word::new(99));
    }

    #[test]
    fn standard_stacks_have_per_ring_brackets() {
        let mut w = World::new();
        w.add_standard_stacks(16);
        for r in Ring::all() {
            let segno = w.dbr().stack_base.value() + u32::from(r.number());
            let sdw = w.read_sdw(segno);
            assert_eq!(sdw.r1, r, "write bracket ends at ring {r}");
            assert_eq!(sdw.r2, r, "read bracket ends at ring {r}");
        }
    }
}
