//! The trap mechanism and processor-state save/restore.
//!
//! "When the processor detects such a condition, it changes the ring of
//! execution to zero and transfers control to a fixed location in the
//! supervisor. A special instruction allows the state of the processor
//! at the time of the trap to be restored later if appropriate, resuming
//! the disrupted instruction."
//!
//! The state saved is the state at the *start* of the disrupted
//! instruction, so an instruction interrupted by (say) a page fault is
//! re-executed from scratch after RETT — the simulator's analogue of
//! the hardware's instruction-retry support.
//!
//! # Save-area layout (within the trap segment, at `trap_save_offset`)
//!
//! ```text
//! +0       IPR (packed pointer)
//! +1..+9   PR0..PR7 (packed pointers)
//! +9       A
//! +10      Q
//! +11..+15 X0..X7 (two 18-bit values per word)
//! +15      indicators (bit 0 zero, bit 1 negative)
//! +16      fault vector number
//! +17      fault address (packed pointer: validation ring + address)
//! +18      fault detail (class / code / channel, fault-specific)
//! ```

use ring_core::access::{AccessMode, Fault};
use ring_core::addr::{pack_pointer, unpack_pointer, SegAddr, WordNo, MAX_WORDNO};
use ring_core::registers::{Ipr, PtrReg, NUM_PR};
use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_metrics::{Crossing, EventSink};

use crate::machine::{Machine, StepOutcome};
use crate::trace::TraceEvent;

/// Number of words in the processor-state save area.
pub const SAVE_WORDS: u32 = 19;

/// A complete snapshot of the program-visible processor state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SavedState {
    /// Instruction pointer (ring + address of the disrupted instruction).
    pub ipr: Ipr,
    /// Pointer registers.
    pub prs: [PtrReg; NUM_PR],
    /// Accumulator.
    pub a: Word,
    /// Q register.
    pub q: Word,
    /// Index registers.
    pub x: [u32; 8],
    /// Zero indicator.
    pub ind_zero: bool,
    /// Negative indicator.
    pub ind_neg: bool,
}

impl SavedState {
    /// Serialises the snapshot (without fault information) into the
    /// first 16 words of the save-area layout.
    pub fn pack(&self) -> [Word; 16] {
        let mut out = [Word::ZERO; 16];
        out[0] = self.ipr.pack();
        for (i, pr) in self.prs.iter().enumerate() {
            out[1 + i] = pr.pack();
        }
        out[9] = self.a;
        out[10] = self.q;
        for i in 0..4 {
            out[11 + i] = Word::ZERO
                .with_field(0, 18, u64::from(self.x[2 * i]))
                .with_field(18, 18, u64::from(self.x[2 * i + 1]));
        }
        out[15] = Word::ZERO
            .with_bit(0, self.ind_zero)
            .with_bit(1, self.ind_neg);
        out
    }

    /// Deserialises a snapshot from the first 16 save-area words.
    pub fn unpack(words: &[Word; 16]) -> SavedState {
        let mut prs = [PtrReg::NULL; NUM_PR];
        for (i, pr) in prs.iter_mut().enumerate() {
            *pr = PtrReg::unpack(words[1 + i]);
        }
        let mut x = [0u32; 8];
        for i in 0..4 {
            x[2 * i] = words[11 + i].field(0, 18) as u32;
            x[2 * i + 1] = words[11 + i].field(18, 18) as u32;
        }
        SavedState {
            ipr: Ipr::unpack(words[0]),
            prs,
            a: words[9],
            q: words[10],
            x,
            ind_zero: words[15].bit(0),
            ind_neg: words[15].bit(1),
        }
    }
}

/// Fault-specific detail word written at save-area offset +18.
fn fault_detail(fault: &Fault) -> (Word, Word) {
    // (fault address pointer, detail word)
    match fault {
        Fault::AccessViolation { addr, ring, .. } => (pack_pointer(*ring, *addr), Word::new(0)),
        Fault::UpwardCall { target, ring } => (pack_pointer(*ring, *target), Word::new(0)),
        Fault::DownwardReturn { target, ring } => (pack_pointer(*ring, *target), Word::new(0)),
        Fault::SegmentFault { addr, class } => {
            (pack_pointer(Ring::R0, *addr), Word::new(u64::from(*class)))
        }
        Fault::PageFault { addr } => (pack_pointer(Ring::R0, *addr), Word::new(0)),
        Fault::Derail { code } => (Word::ZERO, Word::new(u64::from(*code))),
        Fault::IoCompletion { channel } => (Word::ZERO, Word::new(u64::from(*channel))),
        Fault::IllegalOpcode { opcode } => (Word::ZERO, Word::new(u64::from(*opcode))),
        Fault::PrivilegedViolation { ring } => (Word::ZERO, Word::new(u64::from(ring.number()))),
        Fault::PhysicalBounds { abs } => (Word::ZERO, Word::new(u64::from(*abs))),
        Fault::ParityError { abs } => (Word::ZERO, Word::new(u64::from(*abs))),
        Fault::IoError { channel, code } => (
            Word::ZERO,
            Word::new((u64::from(*channel) << 18) | u64::from(*code)),
        ),
        _ => (Word::ZERO, Word::ZERO),
    }
}

impl Machine {
    /// Enters a trap: saves `snapshot` and the fault description into
    /// the save area, forces ring 0, and transfers to the fault's
    /// vector. A fault during trap entry is a double fault and halts the
    /// machine.
    pub(crate) fn take_trap(&mut self, snapshot: SavedState, fault: Fault) -> StepOutcome {
        self.stats.traps += 1;
        match fault {
            Fault::UpwardCall { .. } => self.stats.upward_call_traps += 1,
            Fault::DownwardReturn { .. } => self.stats.downward_return_traps += 1,
            _ => {}
        }
        self.trace.push(|| TraceEvent::Trap { fault });
        // A parity or I/O-error trap is the *detection* of an injected
        // hardware fault reaching the supervisor.
        if matches!(fault, Fault::ParityError { .. } | Fault::IoError { .. }) {
            self.chaos.note_detected();
        }
        let from = self.ipr.ring;
        self.metrics.fault(&fault, from);
        // The software-assisted crossings get their own kind; every
        // other trap is a plain forced entry to ring 0.
        let kind = match fault {
            Fault::UpwardCall { .. } => Crossing::UpwardCallTrap,
            Fault::DownwardReturn { .. } => Crossing::DownwardReturnTrap,
            _ => Crossing::TrapToRing0,
        };
        self.metrics.crossing(kind, from, Ring::R0);
        if self.spans.is_enabled() {
            let ikind = if matches!(fault, Fault::AccessViolation { .. }) {
                ring_trace::InstantKind::Violation
            } else {
                ring_trace::InstantKind::Fault
            };
            self.spans
                .instant(ikind, from.number(), self.cycles, || fault.to_string());
            self.spans.open(
                ring_trace::SpanKind::Trap,
                ring_trace::SpanKey {
                    ring: 0,
                    segno: self.config.trap_segno.value(),
                    entry: fault.vector(),
                },
                from.number(),
                self.cycles,
            );
        }
        self.cycles += self.config.costs.trap_overhead;
        self.last_fault = Some(fault);

        if let Err(df) = self.write_save_area(&snapshot, &fault) {
            self.double_fault = Some(df);
            self.halted = true;
            return StepOutcome::Halted;
        }

        self.in_trap = true;
        self.ipr = Ipr::new(
            Ring::R0,
            SegAddr::new(
                self.config.trap_segno,
                WordNo::from_bits(u64::from(
                    (self.config.trap_vector_base + fault.vector()) & MAX_WORDNO,
                )),
            ),
        );
        StepOutcome::Trapped(fault)
    }

    fn write_save_area(&mut self, snapshot: &SavedState, fault: &Fault) -> Result<(), Fault> {
        let seg = self.config.trap_segno;
        let base = self.config.trap_save_offset;
        let sdw = self.sdw_for(
            SegAddr::new(seg, WordNo::from_bits(u64::from(base))),
            AccessMode::Write,
        )?;
        // Hardware state saving bypasses the access brackets (it is the
        // processor, not a program, storing) but not presence or bounds.
        let last = SegAddr::new(seg, WordNo::from_bits(u64::from(base + SAVE_WORDS - 1)));
        sdw.check_present_and_bounds(AccessMode::Write, last)?;
        let words = snapshot.pack();
        for (i, w) in words.iter().enumerate() {
            let addr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + i as u32)));
            let abs = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
            self.phys.write(abs, *w)?;
        }
        let (fap, detail) = fault_detail(fault);
        let extra = [Word::new(u64::from(fault.vector())), fap, detail];
        for (i, w) in extra.iter().enumerate() {
            let addr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + 16 + i as u32)));
            let abs = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
            self.phys.write(abs, *w)?;
        }
        Ok(())
    }

    /// Reads the save area back into a snapshot plus fault vector.
    pub(crate) fn read_save_area(&mut self) -> Result<(SavedState, u32), Fault> {
        let seg = self.config.trap_segno;
        let base = self.config.trap_save_offset;
        let sdw = self.sdw_for(
            SegAddr::new(seg, WordNo::from_bits(u64::from(base))),
            AccessMode::Read,
        )?;
        let mut words = [Word::ZERO; 16];
        for (i, w) in words.iter_mut().enumerate() {
            let addr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + i as u32)));
            let abs = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
            *w = self.phys.read(abs)?;
        }
        let vaddr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + 16)));
        let abs = self.tr.resolve(&mut self.phys, &sdw, vaddr, false)?;
        let vector = self.phys.read(abs)?.raw() as u32;
        Ok((SavedState::unpack(&words), vector))
    }

    /// The RETT instruction: restores the saved processor state and
    /// resumes the disrupted instruction. Privileged (checked by the
    /// dispatcher); also ends the trap-servicing window, re-enabling
    /// asynchronous trap recognition.
    pub(crate) fn exec_rett(&mut self) -> Result<(), Fault> {
        let (state, _) = self.read_save_area()?;
        self.restore(&state);
        self.in_trap = false;
        self.last_fault = None;
        self.spans.close(self.ipr.ring.number(), self.cycles);
        self.charge(self.config.costs.rett_overhead);
        Ok(())
    }

    /// Fault information saved with the last trap: `(vector, validation
    /// ring, faulting address, detail)` — the supervisor-visible fault
    /// registers. Native trap handlers read this instead of re-parsing
    /// memory.
    pub fn fault_info(&mut self) -> Result<(u32, Ring, SegAddr, Word), Fault> {
        let seg = self.config.trap_segno;
        let base = self.config.trap_save_offset;
        let sdw = self.sdw_for(
            SegAddr::new(seg, WordNo::from_bits(u64::from(base))),
            AccessMode::Read,
        )?;
        let mut out = [Word::ZERO; 3];
        for (i, w) in out.iter_mut().enumerate() {
            let addr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + 16 + i as u32)));
            let abs = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
            *w = self.phys.read(abs)?;
        }
        let (ring, addr) = unpack_pointer(out[1]);
        Ok((out[0].raw() as u32, ring, addr, out[2]))
    }

    /// The saved state currently in the save area (for supervisor
    /// handlers that need to inspect or modify the interrupted
    /// computation, e.g. the upward-call mediator).
    pub fn saved_state(&mut self) -> Result<SavedState, Fault> {
        self.read_save_area().map(|(s, _)| s)
    }

    /// Overwrites the saved state (supervisor handlers adjusting the
    /// resume point, e.g. completing a software ring crossing).
    pub fn set_saved_state(&mut self, state: &SavedState) -> Result<(), Fault> {
        let seg = self.config.trap_segno;
        let base = self.config.trap_save_offset;
        let sdw = self.sdw_for(
            SegAddr::new(seg, WordNo::from_bits(u64::from(base))),
            AccessMode::Write,
        )?;
        let words = state.pack();
        for (i, w) in words.iter().enumerate() {
            let addr = SegAddr::new(seg, WordNo::from_bits(u64::from(base + i as u32)));
            let abs = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
            self.phys.write(abs, *w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_core::addr::SegNo;

    fn sample_state() -> SavedState {
        let mut prs = [PtrReg::NULL; NUM_PR];
        for (i, pr) in prs.iter_mut().enumerate() {
            *pr = PtrReg::new(
                Ring::new(i as u8).unwrap(),
                SegAddr::new(
                    SegNo::new(i as u32 * 3).unwrap(),
                    WordNo::new(i as u32 * 7).unwrap(),
                ),
            );
        }
        SavedState {
            ipr: Ipr::new(Ring::R4, SegAddr::from_parts(100, 0o1234).unwrap()),
            prs,
            a: Word::new(0o707070),
            q: Word::new(0o121212),
            x: [1, 2, 3, 4, 5, 6, 7, 0o777777],
            ind_zero: false,
            ind_neg: true,
        }
    }

    #[test]
    fn saved_state_pack_round_trip() {
        let s = sample_state();
        assert_eq!(SavedState::unpack(&s.pack()), s);
    }

    #[test]
    fn indicators_round_trip_all_combinations() {
        for (z, n) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut s = sample_state();
            s.ind_zero = z;
            s.ind_neg = n;
            let r = SavedState::unpack(&s.pack());
            assert_eq!((r.ind_zero, r.ind_neg), (z, n));
        }
    }
}
