//! Deterministic record/replay of machine runs.
//!
//! [`Recorder`] captures the initial machine image, periodic
//! checkpoints, and every I/O completion as a run executes;
//! [`replay`] re-runs a [`Recording`] in a freshly built machine and
//! verifies it bit-for-bit (final registers, memory, cycles, I/O
//! timeline). [`seek`] restores the nearest checkpoint at or before a
//! target instruction count and re-executes forward — the primitive
//! behind `ringdbg`'s reverse-step.
//!
//! The simulator is deterministic by construction, so a recording's
//! I/O events are *verification* data (and future-proofing for device
//! models with real nondeterminism): replay checks each completion
//! arrives at the recorded instruction, cycle, and channel.
//!
//! Recording observes the machine only through uncounted reads, so a
//! recorded run is bit-identical to an unrecorded one.

use ring_core::access::Fault;
use ring_trace::{Checkpoint, IoEvent, Recording};

use crate::image::MachineImage;
use crate::machine::{Machine, RunExit, StepOutcome};

/// Default checkpoint interval in simulated cycles.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 50_000;

/// Captures a run into a [`Recording`].
#[derive(Debug)]
pub struct Recorder {
    recording: Recording,
    next_checkpoint: u64,
}

impl Recorder {
    /// Starts recording: captures `machine`'s current state as the
    /// initial image. `checkpoint_every` is in simulated cycles (0
    /// records only the endpoints).
    pub fn start(machine: &Machine, program: &str, checkpoint_every: u64) -> Recorder {
        Recorder {
            recording: Recording {
                program: program.to_string(),
                checkpoint_every,
                initial: machine.capture_image().into_words(),
                ..Recording::default()
            },
            next_checkpoint: machine.cycles().saturating_add(checkpoint_every.max(1)),
        }
    }

    /// Notes the outcome of one [`Machine::step`]: logs I/O completion
    /// deliveries and takes a checkpoint when the interval elapses.
    pub fn after_step(&mut self, machine: &Machine, outcome: &StepOutcome) {
        if let StepOutcome::Trapped(Fault::IoCompletion { channel }) = outcome {
            self.recording.io_events.push(IoEvent {
                instructions: machine.stats().instructions,
                cycles: machine.cycles(),
                channel: *channel,
            });
        }
        if self.recording.checkpoint_every > 0 && machine.cycles() >= self.next_checkpoint {
            self.recording.checkpoints.push(Checkpoint {
                instructions: machine.stats().instructions,
                cycles: machine.cycles(),
                image: machine.capture_image().into_words(),
            });
            self.next_checkpoint = machine.cycles() + self.recording.checkpoint_every;
        }
    }

    /// The recording accumulated so far (endpoints not yet stamped).
    pub fn recording(&self) -> &Recording {
        &self.recording
    }

    /// A finished copy of the recording as of `machine`'s current
    /// state; the recorder keeps running. Used by `ringdbg` to write a
    /// recording file mid-session.
    pub fn snapshot(&self, machine: &Machine) -> Recording {
        let mut r = self.recording.clone();
        r.final_instructions = machine.stats().instructions;
        r.final_cycles = machine.cycles();
        r.final_image = machine.capture_image().into_words();
        r
    }

    /// Finishes the recording: stamps the final instruction/cycle
    /// counts and captures the final image.
    pub fn finish(self, machine: &Machine) -> Recording {
        self.snapshot(machine)
    }
}

/// Runs `machine` for up to `budget` instructions under a recorder
/// (the recording analogue of [`Machine::run`]).
pub fn run_recorded(machine: &mut Machine, budget: u64, recorder: &mut Recorder) -> RunExit {
    for _ in 0..budget {
        let outcome = machine.step();
        recorder.after_step(machine, &outcome);
        if let StepOutcome::Halted = outcome {
            return match machine.double_fault() {
                Some(f) => RunExit::DoubleFault(f),
                None => RunExit::Halted,
            };
        }
    }
    RunExit::BudgetExhausted
}

/// The verdict of a [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Instructions retired by the replayed run.
    pub instructions: u64,
    /// Simulated cycles at the end of the replayed run.
    pub cycles: u64,
    /// Whether the replay reproduced the recording bit-for-bit.
    pub ok: bool,
    /// Human-readable description of the first divergence, if any.
    pub mismatch: Option<String>,
}

/// Replays `recording` in `machine` (which must be built from the same
/// program and configuration) and verifies it against the recorded
/// run: every I/O completion at the recorded instruction/cycle/channel
/// and a bit-identical final image.
///
/// Returns `Err` only when the recording cannot be applied at all
/// (wrong machine shape); divergence during the run is reported in the
/// [`ReplayReport`].
pub fn replay(machine: &mut Machine, recording: &Recording) -> Result<ReplayReport, String> {
    machine.restore_image(&MachineImage::from_words(recording.initial.clone()))?;
    let mut mismatch: Option<String> = None;
    let mut io_seen = 0usize;
    // Async trap deliveries retire no instruction, so allow headroom
    // beyond the instruction count before declaring the replay stuck.
    let max_steps = recording
        .final_instructions
        .saturating_add(recording.io_events.len() as u64 + 64)
        .saturating_mul(2);
    let mut steps = 0u64;
    while machine.stats().instructions < recording.final_instructions && mismatch.is_none() {
        if steps >= max_steps {
            mismatch = Some("replay made no progress".to_string());
            break;
        }
        steps += 1;
        let outcome = machine.step();
        if let StepOutcome::Trapped(Fault::IoCompletion { channel }) = outcome {
            let got = IoEvent {
                instructions: machine.stats().instructions,
                cycles: machine.cycles(),
                channel,
            };
            match recording.io_events.get(io_seen) {
                Some(want) if *want == got => io_seen += 1,
                Some(want) => {
                    mismatch = Some(format!(
                        "I/O completion diverged: recorded {want:?}, replayed {got:?}"
                    ));
                }
                None => {
                    mismatch = Some(format!("unrecorded I/O completion {got:?}"));
                }
            }
        }
        if let StepOutcome::Halted = outcome {
            break;
        }
    }
    if mismatch.is_none() && io_seen != recording.io_events.len() {
        mismatch = Some(format!(
            "replay delivered {io_seen} of {} recorded I/O completions",
            recording.io_events.len()
        ));
    }
    if mismatch.is_none() && machine.stats().instructions != recording.final_instructions {
        mismatch = Some(format!(
            "instruction count diverged: recorded {}, replayed {}",
            recording.final_instructions,
            machine.stats().instructions
        ));
    }
    if mismatch.is_none() && machine.cycles() != recording.final_cycles {
        mismatch = Some(format!(
            "cycle count diverged: recorded {}, replayed {}",
            recording.final_cycles,
            machine.cycles()
        ));
    }
    if mismatch.is_none() && machine.capture_image().words() != recording.final_image.as_slice() {
        mismatch = Some("final machine image diverged".to_string());
    }
    Ok(ReplayReport {
        instructions: machine.stats().instructions,
        cycles: machine.cycles(),
        ok: mismatch.is_none(),
        mismatch,
    })
}

/// Positions `machine` exactly at `target` instructions of `recording`
/// by restoring the nearest checkpoint at or before it and
/// re-executing forward. The primitive behind reverse-step.
pub fn seek(machine: &mut Machine, recording: &Recording, target: u64) -> Result<(), String> {
    let (_, image) = recording.nearest_checkpoint(target);
    machine.restore_image(&MachineImage::from_words(image.to_vec()))?;
    let mut guard = target
        .saturating_sub(machine.stats().instructions)
        .saturating_add(1024)
        .saturating_mul(2);
    while machine.stats().instructions < target {
        if guard == 0 {
            return Err("seek made no progress".to_string());
        }
        guard -= 1;
        if let StepOutcome::Halted = machine.step() {
            break;
        }
    }
    Ok(())
}
