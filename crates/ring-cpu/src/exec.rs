//! Instruction performance: operand access validation (Figs. 6 and 7)
//! and the ALU/transfer semantics.

use ring_core::access::{AccessMode, Fault, Violation};
use ring_core::addr::{SegAddr, SegNo};
use ring_core::registers::{Dbr, PtrReg};
use ring_core::ring::Ring;
use ring_core::validate;
use ring_core::word::Word;

use crate::ea::EffAddr;
use crate::isa::{Instr, Opcode, OperandUse};
use crate::machine::Machine;

impl Machine {
    /// Performs `instr`, fetched from segment `iseg` whose descriptor
    /// (already retrieved for the fetch validation) is `isdw`.
    pub(crate) fn exec_instr(
        &mut self,
        instr: Instr,
        iseg: SegNo,
        isdw: &ring_core::sdw::Sdw,
    ) -> Result<(), Fault> {
        // Privileged instructions execute only in ring 0 (and, under
        // the optional hardening, only from privileged segments). The
        // fetch already fetched this segment's SDW, so the hardening
        // check reuses it instead of a second associative-memory
        // lookup.
        if instr.opcode.privileged() {
            if self.ipr.ring != Ring::R0 {
                return Err(Fault::PrivilegedViolation {
                    ring: self.ipr.ring,
                });
            }
            if self.config.require_privileged_segments && !isdw.privileged {
                return Err(Fault::PrivilegedViolation {
                    ring: self.ipr.ring,
                });
            }
        }

        // The privileged read-class instructions have two-word operands
        // and machine-level side effects; handle them apart.
        if matches!(instr.opcode, Opcode::Ldbr | Opcode::Sio | Opcode::Ldt) {
            return self.exec_privileged_read(instr, iseg);
        }

        match instr.opcode.operand_use() {
            OperandUse::None => self.exec_no_operand(instr),
            OperandUse::Read => {
                let ea = self.form_ea(&instr, iseg)?;
                let value = self.operand_read(&ea)?;
                self.exec_read_op(instr, value)
            }
            OperandUse::Write => {
                let ea = self.form_ea(&instr, iseg)?;
                let value = self.write_value(instr);
                self.operand_write(&ea, value)
            }
            OperandUse::ReadWrite => {
                // AOS: both the read and the write capability are
                // required at the effective ring.
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                let (sdw, addr, ring) = self.memory_ea(&ea)?;
                validate::check_read(&sdw, addr, ring)?;
                validate::check_write(&sdw, addr, ring)?;
                let abs = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
                let v = self.phys.read(abs)?.wrapping_add(Word::new(1));
                self.phys.write(abs, v)?;
                self.set_indicators(v);
                Ok(())
            }
            OperandUse::Pointer => {
                // EAP: no operand reference, no validation; the only way
                // to load a pointer register. Immediate mode is
                // meaningless here.
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                self.prs[instr.xreg as usize] = PtrReg::new(ea.tpr.ring, ea.tpr.addr);
                Ok(())
            }
            OperandUse::WritePair => {
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                let (sdw, addr, ring) = self.memory_ea(&ea)?;
                validate::check_write(&sdw, addr, ring)?;
                let second = SegAddr::new(addr.segno, addr.wordno.wrapping_add(1));
                if !sdw.in_bounds(second.wordno) {
                    return Err(Fault::AccessViolation {
                        mode: AccessMode::Write,
                        violation: Violation::OutOfBounds,
                        addr: second,
                        ring,
                    });
                }
                let (w0, w1) =
                    ring_core::registers::IndWord::from_ptr(self.prs[instr.xreg as usize]).pack();
                let abs0 = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
                let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, true)?;
                self.phys.write(abs0, w0)?;
                self.phys.write(abs1, w1)
            }
            OperandUse::Transfer => {
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                if self.transfer_taken(instr.opcode) {
                    let (sdw, addr, ring) = self.memory_ea(&ea)?;
                    validate::check_transfer(&sdw, addr, ring)?;
                    // Ordinary transfers cannot change the ring.
                    self.ipr.addr = addr;
                }
                Ok(())
            }
            OperandUse::Call => {
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                self.exec_call(ea.tpr, iseg)
            }
            OperandUse::Return => {
                let ea = self.form_ea(&instr, iseg)?;
                if ea.immediate.is_some() {
                    return Err(Fault::IllegalModifier);
                }
                self.exec_return(ea.tpr)
            }
            OperandUse::AddressOnly => {
                let ea = self.form_ea(&instr, iseg)?;
                let count = u64::from(ea.tpr.addr.wordno.value());
                self.exec_address_only(instr, count);
                Ok(())
            }
        }
    }

    /// The address-only group (EAA, ALS, ARS): operates on the
    /// effective word number, no memory reference. Shared with the
    /// fast path.
    pub(crate) fn exec_address_only(&mut self, instr: Instr, count: u64) {
        match instr.opcode {
            Opcode::Eaa => {
                let v = Word::new(count);
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Als => {
                let v = Word::new(self.a.raw() << (count & 63));
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Ars => {
                let v = Word::new(self.a.raw() >> (count & 63));
                self.a = v;
                self.set_indicators(v);
            }
            _ => unreachable!("address-only group"),
        }
    }

    /// Resolves a (non-immediate) effective address to its SDW and
    /// validation ring.
    fn memory_ea(&mut self, ea: &EffAddr) -> Result<(ring_core::sdw::Sdw, SegAddr, Ring), Fault> {
        debug_assert!(ea.immediate.is_none());
        let mode = AccessMode::Read; // only used for NoSuchSegment reporting
        let sdw = self.sdw_for(ea.tpr.addr, mode)?;
        Ok((sdw, ea.tpr.addr, ea.tpr.ring))
    }

    /// Reads the operand for a Read-class instruction (Fig. 6, read).
    fn operand_read(&mut self, ea: &EffAddr) -> Result<Word, Fault> {
        if let Some(lit) = ea.immediate {
            return Ok(lit);
        }
        let (sdw, addr, ring) = self.memory_ea(ea)?;
        validate::check_read(&sdw, addr, ring)?;
        let abs = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
        let v = self.phys.read(abs)?;
        if self.config.fastpath {
            let slow_fetch = self.natives.is_native(addr.segno);
            self.tr
                .fast_install(&self.phys, addr, ring, &sdw, slow_fetch);
        }
        Ok(v)
    }

    /// Writes the operand for a Write-class instruction (Fig. 6, write).
    fn operand_write(&mut self, ea: &EffAddr, value: Word) -> Result<(), Fault> {
        if ea.immediate.is_some() {
            return Err(Fault::IllegalModifier);
        }
        let (sdw, addr, ring) = self.memory_ea(ea)?;
        validate::check_write(&sdw, addr, ring)?;
        let abs = self.tr.resolve(&mut self.phys, &sdw, addr, true)?;
        self.phys.write(abs, value)?;
        if self.config.fastpath {
            let slow_fetch = self.natives.is_native(addr.segno);
            self.tr
                .fast_install(&self.phys, addr, ring, &sdw, slow_fetch);
        }
        Ok(())
    }

    pub(crate) fn write_value(&self, instr: Instr) -> Word {
        match instr.opcode {
            Opcode::Sta => self.a,
            Opcode::Stq => self.q,
            Opcode::Stx => Word::new(u64::from(self.x[instr.xreg as usize])),
            Opcode::Stz => Word::ZERO,
            _ => unreachable!("write group"),
        }
    }

    pub(crate) fn transfer_taken(&self, op: Opcode) -> bool {
        match op {
            Opcode::Tra => true,
            Opcode::Tze => self.ind_zero,
            Opcode::Tnz => !self.ind_zero,
            Opcode::Tmi => self.ind_neg,
            Opcode::Tpl => !self.ind_neg,
            _ => unreachable!("transfer group"),
        }
    }

    pub(crate) fn exec_read_op(&mut self, instr: Instr, operand: Word) -> Result<(), Fault> {
        match instr.opcode {
            Opcode::Lda => {
                self.a = operand;
                self.set_indicators(operand);
            }
            Opcode::Ldq => {
                self.q = operand;
            }
            Opcode::Ldx => {
                self.x[instr.xreg as usize] = (operand.raw() as u32) & ring_core::addr::MAX_WORDNO;
            }
            Opcode::Ada => {
                let v = self.a.wrapping_add(operand);
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Sba => {
                let v = self.a.wrapping_sub(operand);
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Mpy => {
                let v = self.a.wrapping_mul(operand);
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Ana => {
                let v = Word::new(self.a.raw() & operand.raw());
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Ora => {
                let v = Word::new(self.a.raw() | operand.raw());
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Era => {
                let v = Word::new(self.a.raw() ^ operand.raw());
                self.a = v;
                self.set_indicators(v);
            }
            Opcode::Cmpa => {
                let v = self.a.wrapping_sub(operand);
                self.set_indicators(v);
            }
            Opcode::Adq => {
                self.q = self.q.wrapping_add(operand);
            }
            Opcode::Sbq => {
                self.q = self.q.wrapping_sub(operand);
            }
            _ => unreachable!("read group"),
        }
        Ok(())
    }

    pub(crate) fn exec_no_operand(&mut self, instr: Instr) -> Result<(), Fault> {
        match instr.opcode {
            Opcode::Nop => Ok(()),
            Opcode::Neg => {
                let v = Word::from_signed(-self.a.as_signed());
                self.a = v;
                self.set_indicators(v);
                Ok(())
            }
            Opcode::Drl => Err(Fault::Derail { code: instr.offset }),
            Opcode::Rett => self.exec_rett(),
            Opcode::Halt => {
                self.halted = true;
                Ok(())
            }
            _ => unreachable!("no-operand group"),
        }
    }
}

/// The privileged read-class instructions (LDBR, SIO, LDT) need special
/// operand handling (two-word reads, side effects); they are intercepted
/// before the generic read path.
impl Machine {
    pub(crate) fn exec_privileged_read(&mut self, instr: Instr, iseg: SegNo) -> Result<(), Fault> {
        let ea = self.form_ea(&instr, iseg)?;
        match instr.opcode {
            Opcode::Ldt => {
                let v = self.operand_read_pub(&ea)?;
                self.timer = Some(v.raw());
                Ok(())
            }
            Opcode::Ldbr => {
                let (sdw, addr, ring) = self.memory_ea_pub(&ea)?;
                validate::check_read(&sdw, addr, ring)?;
                let second = SegAddr::new(addr.segno, addr.wordno.wrapping_add(1));
                if !sdw.in_bounds(second.wordno) {
                    return Err(Fault::AccessViolation {
                        mode: AccessMode::Read,
                        violation: Violation::OutOfBounds,
                        addr: second,
                        ring,
                    });
                }
                let abs0 = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
                let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, false)?;
                let w0 = self.phys.read(abs0)?;
                let w1 = self.phys.read(abs1)?;
                self.dbr = Dbr::unpack(w0, w1);
                self.tr.flush_cache();
                self.charge(self.config.costs.dbr_load);
                Ok(())
            }
            Opcode::Sio => {
                let (sdw, addr, ring) = self.memory_ea_pub(&ea)?;
                validate::check_read(&sdw, addr, ring)?;
                let second = SegAddr::new(addr.segno, addr.wordno.wrapping_add(1));
                if !sdw.in_bounds(second.wordno) {
                    return Err(Fault::AccessViolation {
                        mode: AccessMode::Read,
                        violation: Violation::OutOfBounds,
                        addr: second,
                        ring,
                    });
                }
                let abs0 = self.tr.resolve(&mut self.phys, &sdw, addr, false)?;
                let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, false)?;
                let w0 = self.phys.read(abs0)?;
                let w1 = self.phys.read(abs1)?;
                let now = self.cycles;
                self.io.start(w0, w1, now)
            }
            _ => unreachable!("privileged read group"),
        }
    }

    fn operand_read_pub(&mut self, ea: &EffAddr) -> Result<Word, Fault> {
        self.operand_read(ea)
    }

    fn memory_ea_pub(
        &mut self,
        ea: &EffAddr,
    ) -> Result<(ring_core::sdw::Sdw, SegAddr, Ring), Fault> {
        self.memory_ea(ea)
    }
}
