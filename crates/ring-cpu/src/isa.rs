//! The instruction set of the simulated processor.
//!
//! The paper describes the access-control architecture, not a complete
//! order code; this module supplies the small general-register ISA the
//! simulator executes so that real programs can exercise the ring
//! mechanisms. It follows the general form of the Honeywell 645 order
//! code the paper assumes: single-address instructions with an optional
//! pointer-register base, an indirect flag, and an index/immediate tag
//! (the `INS` format of Fig. 3).
//!
//! # Instruction word layout (36 bits, LSB-0)
//!
//! ```text
//! OFFSET[0..18]  XREG[18..21]  TAG[21..23]  I[23]  PRFLAG[24]
//! PRNUM[25..28]  OPCODE[28..36]
//! ```
//!
//! * `OFFSET` — 18-bit operand offset (`INST.OFFSET`).
//! * `PRFLAG`/`PRNUM` — when `PRFLAG` is set the offset is relative to
//!   pointer register `PRNUM` (`INST.PRNUM`), otherwise to the segment
//!   the instruction came from.
//! * `I` — indirect flag (`INST.I`).
//! * `TAG` — address modifier: none, indexed (add index register
//!   `XREG`), or immediate (the offset itself is the operand; no memory
//!   reference). The fourth encoding is reserved and faults.
//! * `XREG` — index register for the indexed modifier; for the
//!   pointer-register instructions `EAP` and `SPRI` it instead names the
//!   pointer register being loaded or stored.

use ring_core::access::Fault;
use ring_core::word::Word;

/// Address-modification tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrMode {
    /// No modification.
    None,
    /// Add index register `XREG` to the offset.
    Indexed,
    /// The 18-bit offset is itself the operand (direct literal); no
    /// memory reference is made and the indirect flag is ignored.
    Immediate,
}

impl AddrMode {
    fn from_bits(b: u64) -> Result<AddrMode, Fault> {
        match b {
            0 => Ok(AddrMode::None),
            1 => Ok(AddrMode::Indexed),
            2 => Ok(AddrMode::Immediate),
            _ => Err(Fault::IllegalModifier),
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            AddrMode::None => 0,
            AddrMode::Indexed => 1,
            AddrMode::Immediate => 2,
        }
    }
}

/// Operation codes.
///
/// Grouped by the kind of operand reference they make, which is what
/// the access-validation hardware cares about (Figs. 6 and 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum Opcode {
    // ---- operand-reading instructions (Fig. 6, read) ----
    /// Load A from the operand.
    Lda = 0o01,
    /// Load Q from the operand.
    Ldq = 0o02,
    /// Load index register XREG from the operand (low 18 bits).
    Ldx = 0o03,
    /// Add operand to A.
    Ada = 0o04,
    /// Subtract operand from A.
    Sba = 0o05,
    /// Multiply A by operand (low 36 bits kept).
    Mpy = 0o06,
    /// AND operand into A.
    Ana = 0o07,
    /// OR operand into A.
    Ora = 0o10,
    /// XOR operand into A.
    Era = 0o11,
    /// Compare A with operand: set indicators from `A - operand`.
    Cmpa = 0o12,
    /// Add operand to Q.
    Adq = 0o13,
    /// Subtract operand from Q.
    Sbq = 0o14,

    // ---- operand-writing instructions (Fig. 6, write) ----
    /// Store A at the operand.
    Sta = 0o20,
    /// Store Q at the operand.
    Stq = 0o21,
    /// Store index register XREG at the operand (low 18 bits).
    Stx = 0o22,
    /// Store zero at the operand.
    Stz = 0o23,

    // ---- read-modify-write ----
    /// Add one to storage (requires both read and write permission).
    Aos = 0o30,

    // ---- pointer-register instructions (Fig. 7, EAP-type) ----
    /// Effective address to pointer register XREG: loads RING, SEGNO,
    /// WORDNO from the TPR. The only way to load a pointer register.
    Eap = 0o31,
    /// Store pointer register XREG as an indirect-word pair at the
    /// operand (two words written).
    Spri = 0o32,

    // ---- transfer instructions (Fig. 7) ----
    /// Unconditional transfer.
    Tra = 0o40,
    /// Transfer if A is zero.
    Tze = 0o41,
    /// Transfer if A is non-zero.
    Tnz = 0o42,
    /// Transfer if A is negative.
    Tmi = 0o43,
    /// Transfer if A is non-negative.
    Tpl = 0o44,

    // ---- ring-crossing instructions (Figs. 8, 9) ----
    /// Call: the only instruction that can switch the ring of execution
    /// downward.
    Call = 0o45,
    /// Return: the only instruction that can switch the ring of
    /// execution upward (also usable for the non-local goto).
    Return = 0o46,

    // ---- address-only instructions (no operand reference) ----
    /// Effective address (word number) to A.
    Eaa = 0o50,
    /// Shift A left by the effective word number (mod 64).
    Als = 0o51,
    /// Shift A right (logical) by the effective word number (mod 64).
    Ars = 0o52,

    // ---- no-operand instructions ----
    /// No operation.
    Nop = 0o60,
    /// Negate A (two's complement).
    Neg = 0o61,
    /// Derail: explicit trap to the supervisor carrying the offset.
    Drl = 0o62,

    // ---- privileged instructions (ring 0 only) ----
    /// Load the descriptor base register from a two-word operand;
    /// flushes the SDW associative memory.
    Ldbr = 0o70,
    /// Start an I/O channel (connect; channel program at the operand).
    Sio = 0o71,
    /// Restore processor state saved at the last trap and resume.
    Rett = 0o72,
    /// Load the interval timer from the operand.
    Ldt = 0o73,
    /// Stop the processor (orderly halt).
    Halt = 0o77,
}

/// How an instruction references its operand — the grouping the paper
/// uses to describe access validation ("the possible instructions may be
/// broken into three groups, according to the type of reference made to
/// the operand").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OperandUse {
    /// Reads the operand word (validated per Fig. 6, read).
    Read,
    /// Writes the operand word (validated per Fig. 6, write).
    Write,
    /// Reads then writes the operand word (both Fig. 6 checks).
    ReadWrite,
    /// Writes a two-word indirect pair (SPRI).
    WritePair,
    /// Does not reference the operand: loads the effective address into
    /// a pointer register (EAP-type; Fig. 7).
    Pointer,
    /// Does not reference the operand: ordinary transfer with the
    /// advance check of Fig. 7.
    Transfer,
    /// The CALL instruction (Fig. 8).
    Call,
    /// The RETURN instruction (Fig. 9).
    Return,
    /// Uses only the effective word number as data; no reference and no
    /// validation beyond the effective-address calculation itself.
    AddressOnly,
    /// Has no operand; the address field is ignored (or is an inline
    /// code, as for DRL).
    None,
}

impl OperandUse {
    /// The corresponding `ring-metrics` counter class. The two enums
    /// mirror each other; the metrics crate keeps its own copy so it
    /// depends only on `ring-core`.
    pub fn metric_class(self) -> ring_metrics::OpClass {
        use ring_metrics::OpClass;
        match self {
            OperandUse::Read => OpClass::Read,
            OperandUse::Write => OpClass::Write,
            OperandUse::ReadWrite => OpClass::ReadWrite,
            OperandUse::WritePair => OpClass::WritePair,
            OperandUse::Pointer => OpClass::Pointer,
            OperandUse::Transfer => OpClass::Transfer,
            OperandUse::Call => OpClass::Call,
            OperandUse::Return => OpClass::Return,
            OperandUse::AddressOnly => OpClass::AddressOnly,
            OperandUse::None => OpClass::NoOperand,
        }
    }
}

impl Opcode {
    /// Decodes an opcode field value.
    pub fn from_bits(b: u64) -> Result<Opcode, Fault> {
        use Opcode::*;
        Ok(match b {
            0o01 => Lda,
            0o02 => Ldq,
            0o03 => Ldx,
            0o04 => Ada,
            0o05 => Sba,
            0o06 => Mpy,
            0o07 => Ana,
            0o10 => Ora,
            0o11 => Era,
            0o12 => Cmpa,
            0o13 => Adq,
            0o14 => Sbq,
            0o20 => Sta,
            0o21 => Stq,
            0o22 => Stx,
            0o23 => Stz,
            0o30 => Aos,
            0o31 => Eap,
            0o32 => Spri,
            0o40 => Tra,
            0o41 => Tze,
            0o42 => Tnz,
            0o43 => Tmi,
            0o44 => Tpl,
            0o45 => Call,
            0o46 => Return,
            0o50 => Eaa,
            0o51 => Als,
            0o52 => Ars,
            0o60 => Nop,
            0o61 => Neg,
            0o62 => Drl,
            0o70 => Ldbr,
            0o71 => Sio,
            0o72 => Rett,
            0o73 => Ldt,
            0o77 => Halt,
            other => {
                return Err(Fault::IllegalOpcode {
                    opcode: other as u16,
                })
            }
        })
    }

    /// The operand-reference class of this opcode.
    pub fn operand_use(self) -> OperandUse {
        use Opcode::*;
        match self {
            Lda | Ldq | Ldx | Ada | Sba | Mpy | Ana | Ora | Era | Cmpa | Adq | Sbq => {
                OperandUse::Read
            }
            Sta | Stq | Stx | Stz => OperandUse::Write,
            Aos => OperandUse::ReadWrite,
            Eap => OperandUse::Pointer,
            Spri => OperandUse::WritePair,
            Tra | Tze | Tnz | Tmi | Tpl => OperandUse::Transfer,
            Call => OperandUse::Call,
            Return => OperandUse::Return,
            Eaa | Als | Ars => OperandUse::AddressOnly,
            Nop | Neg | Drl | Rett | Halt => OperandUse::None,
            // LDBR, SIO and LDT read their (two-word or one-word)
            // operands; they are validated as reads in ring 0.
            Ldbr | Sio | Ldt => OperandUse::Read,
        }
    }

    /// True for the instructions executable only in ring 0 ("such
    /// instructions are designated as privileged and will be executed by
    /// the processor only in ring 0").
    pub fn privileged(self) -> bool {
        matches!(
            self,
            Opcode::Ldbr | Opcode::Sio | Opcode::Rett | Opcode::Ldt | Opcode::Halt
        )
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Lda => "lda",
            Ldq => "ldq",
            Ldx => "ldx",
            Ada => "ada",
            Sba => "sba",
            Mpy => "mpy",
            Ana => "ana",
            Ora => "ora",
            Era => "era",
            Cmpa => "cmpa",
            Adq => "adq",
            Sbq => "sbq",
            Sta => "sta",
            Stq => "stq",
            Stx => "stx",
            Stz => "stz",
            Aos => "aos",
            Eap => "eap",
            Spri => "spri",
            Tra => "tra",
            Tze => "tze",
            Tnz => "tnz",
            Tmi => "tmi",
            Tpl => "tpl",
            Call => "call",
            Return => "return",
            Eaa => "eaa",
            Als => "als",
            Ars => "ars",
            Nop => "nop",
            Neg => "neg",
            Drl => "drl",
            Ldbr => "ldbr",
            Sio => "sio",
            Rett => "rett",
            Ldt => "ldt",
            Halt => "halt",
        }
    }

    /// Every defined opcode (for exhaustive tests and the assembler's
    /// mnemonic table).
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Lda, Ldq, Ldx, Ada, Sba, Mpy, Ana, Ora, Era, Cmpa, Adq, Sbq, Sta, Stq, Stx, Stz, Aos,
            Eap, Spri, Tra, Tze, Tnz, Tmi, Tpl, Call, Return, Eaa, Als, Ars, Nop, Neg, Drl, Ldbr,
            Sio, Rett, Ldt, Halt,
        ]
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Instr {
    /// Operation code.
    pub opcode: Opcode,
    /// Offset relative to a pointer register when `Some(prnum)`, else
    /// relative to the instruction's own segment.
    pub pr: Option<u8>,
    /// Indirect flag.
    pub indirect: bool,
    /// Address modifier.
    pub mode: AddrMode,
    /// Index register (or target pointer register for EAP/SPRI).
    pub xreg: u8,
    /// 18-bit offset.
    pub offset: u32,
}

impl Instr {
    /// A plain instruction with no base, no indexing, no indirection.
    pub fn direct(opcode: Opcode, offset: u32) -> Instr {
        Instr {
            opcode,
            pr: None,
            indirect: false,
            mode: AddrMode::None,
            xreg: 0,
            offset,
        }
    }

    /// An instruction addressed relative to pointer register `pr`.
    pub fn pr_relative(opcode: Opcode, pr: u8, offset: u32) -> Instr {
        Instr {
            opcode,
            pr: Some(pr),
            indirect: false,
            mode: AddrMode::None,
            xreg: 0,
            offset,
        }
    }

    /// Returns a copy with the indirect flag set.
    #[must_use]
    pub fn with_indirect(mut self) -> Instr {
        self.indirect = true;
        self
    }

    /// Returns a copy with the given index register and indexed mode.
    #[must_use]
    pub fn with_index(mut self, xreg: u8) -> Instr {
        self.mode = AddrMode::Indexed;
        self.xreg = xreg;
        self
    }

    /// Returns a copy in immediate mode.
    #[must_use]
    pub fn immediate(mut self) -> Instr {
        self.mode = AddrMode::Immediate;
        self
    }

    /// Returns a copy with `xreg` set (the EAP/SPRI target register).
    #[must_use]
    pub fn with_xreg(mut self, xreg: u8) -> Instr {
        self.xreg = xreg;
        self
    }

    /// Encodes into the 36-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics if `offset`, `xreg` or `pr` exceed their fields.
    pub fn encode(self) -> Word {
        assert!(self.offset < (1 << 18), "offset field overflow");
        assert!(self.xreg < 8, "xreg field overflow");
        let (prflag, prnum) = match self.pr {
            Some(n) => {
                assert!(n < 8, "prnum field overflow");
                (true, u64::from(n))
            }
            None => (false, 0),
        };
        Word::ZERO
            .with_field(0, 18, u64::from(self.offset))
            .with_field(18, 3, u64::from(self.xreg))
            .with_field(21, 2, self.mode.to_bits())
            .with_bit(23, self.indirect)
            .with_bit(24, prflag)
            .with_field(25, 3, prnum)
            .with_field(28, 8, self.opcode as u64)
    }

    /// Decodes an instruction word.
    pub fn decode(w: Word) -> Result<Instr, Fault> {
        let opcode = Opcode::from_bits(w.field(28, 8))?;
        let mode = AddrMode::from_bits(w.field(21, 2))?;
        let pr = if w.bit(24) {
            Some(w.field(25, 3) as u8)
        } else {
            None
        };
        Ok(Instr {
            opcode,
            pr,
            indirect: w.bit(23),
            mode,
            xreg: w.field(18, 3) as u8,
            offset: w.field(0, 18) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_opcodes() {
        for &op in Opcode::all() {
            let i = Instr {
                opcode: op,
                pr: Some(5),
                indirect: true,
                mode: AddrMode::Indexed,
                xreg: 3,
                offset: 0o123456,
            };
            assert_eq!(Instr::decode(i.encode()).unwrap(), i);
            let j = Instr::direct(op, 7);
            assert_eq!(Instr::decode(j.encode()).unwrap(), j);
        }
    }

    #[test]
    fn opcode_bits_round_trip() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_bits(op as u64).unwrap(), op);
        }
    }

    #[test]
    fn unknown_opcode_faults() {
        assert!(matches!(
            Opcode::from_bits(0o76),
            Err(Fault::IllegalOpcode { opcode: 0o76 })
        ));
        let w = Word::ZERO.with_field(28, 8, 0o76);
        assert!(Instr::decode(w).is_err());
    }

    #[test]
    fn reserved_modifier_faults() {
        let w = Instr::direct(Opcode::Lda, 0).encode().with_field(21, 2, 3);
        assert!(matches!(Instr::decode(w), Err(Fault::IllegalModifier)));
    }

    #[test]
    fn operand_use_covers_paper_grouping() {
        assert_eq!(Opcode::Lda.operand_use(), OperandUse::Read);
        assert_eq!(Opcode::Sta.operand_use(), OperandUse::Write);
        assert_eq!(Opcode::Aos.operand_use(), OperandUse::ReadWrite);
        assert_eq!(Opcode::Eap.operand_use(), OperandUse::Pointer);
        assert_eq!(Opcode::Tra.operand_use(), OperandUse::Transfer);
        assert_eq!(Opcode::Call.operand_use(), OperandUse::Call);
        assert_eq!(Opcode::Return.operand_use(), OperandUse::Return);
        assert_eq!(Opcode::Nop.operand_use(), OperandUse::None);
    }

    #[test]
    fn privileged_set_matches_the_paper() {
        // "Among these are the instructions to load the DBR, start I/O,
        // and restore the processor state after a trap."
        assert!(Opcode::Ldbr.privileged());
        assert!(Opcode::Sio.privileged());
        assert!(Opcode::Rett.privileged());
        assert!(Opcode::Ldt.privileged());
        assert!(Opcode::Halt.privileged());
        for &op in Opcode::all() {
            if !matches!(
                op,
                Opcode::Ldbr | Opcode::Sio | Opcode::Rett | Opcode::Ldt | Opcode::Halt
            ) {
                assert!(!op.privileged(), "{op:?} should be unprivileged");
            }
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "dup mnemonic {}", op.mnemonic());
        }
    }

    #[test]
    fn builder_helpers() {
        let i = Instr::pr_relative(Opcode::Lda, 1, 4)
            .with_indirect()
            .with_index(2);
        assert_eq!(i.pr, Some(1));
        assert!(i.indirect);
        assert_eq!(i.mode, AddrMode::Indexed);
        assert_eq!(i.xreg, 2);
        let imm = Instr::direct(Opcode::Lda, 42).immediate();
        assert_eq!(imm.mode, AddrMode::Immediate);
    }
}
