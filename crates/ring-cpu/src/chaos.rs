//! Applying chaos-engine decisions to the machine.
//!
//! The engine ([`ring_chaos::ChaosEngine`]) decides *when* a simulated
//! hardware fault fires and *what kind*; this module decides *where* —
//! which physical word, which descriptor, which channel — using only
//! the engine's deterministic RNG stream and the machine's own state,
//! so a chaos run replays bit-for-bit.
//!
//! Injection happens between instructions, outside trap handling, in
//! [`crate::machine::Machine::step`]. Each kind arms exactly one
//! architecturally-detectable condition:
//!
//! - **MemParity** scrambles one bit of a physical word and marks it
//!   poisoned; the next *counted* read raises a parity-error trap.
//! - **SdwCorrupt** / **PtwCorrupt** do the same to a descriptor or
//!   page-table word, additionally dropping the damaged translation
//!   from the SDW cache and TLB so the corruption cannot be outlived
//!   by a clean cached copy.
//! - **TlbCorrupt** damages a translation-cache entry; cache parity
//!   detects it immediately and the entry is discarded (hardware
//!   recovery), feeding the graceful-degradation policy.
//! - **DrumReadError** / **DrumWriteError** arm a backing-store
//!   transfer failure the supervisor consumes and retries.
//! - **LostIoCompletion** makes the next channel completion drop its
//!   interrupt; the channel watchdog converts the silence into an
//!   I/O-error trap.
//! - **SpuriousTimer** forces an immediate timer runout.
//!
//! The trap segment's physical range is never poisoned: the hardware
//! save area must stay readable for any recovery to be possible at
//! all (a parity error during trap entry is an unrecoverable double
//! fault by design, the same reason the real hardware put its save
//! area in dedicated storage).

use ring_chaos::{ChaosKind, Degrade};
use ring_core::sdw::Sdw;
use ring_core::word::WORD_BITS;
use ring_trace::InstantKind;

use crate::machine::Machine;

/// Bounded re-roll attempts when a drawn injection target is invalid
/// (protected range, out of range, empty map). Bounded so a degenerate
/// world cannot loop forever; an exhausted draw skips the injection
/// without counting it.
const TARGET_REROLLS: u32 = 8;

impl Machine {
    /// One chaos poll: fires at most one injection decided by the plan.
    pub(crate) fn chaos_tick(&mut self) {
        let Some(kind) = self.chaos.poll(self.cycles) else {
            return;
        };
        match kind {
            ChaosKind::MemParity => self.inject_mem_parity(),
            ChaosKind::SdwCorrupt => self.inject_sdw_corrupt(),
            ChaosKind::PtwCorrupt => self.inject_ptw_corrupt(),
            ChaosKind::DrumReadError => {
                self.chaos.arm_drum_read_error();
                self.note_injection(ChaosKind::DrumReadError, 0);
            }
            ChaosKind::DrumWriteError => {
                self.chaos.arm_drum_write_error();
                self.note_injection(ChaosKind::DrumWriteError, 0);
            }
            ChaosKind::LostIoCompletion => self.inject_lost_completion(),
            ChaosKind::TlbCorrupt => self.inject_tlb_corrupt(),
            ChaosKind::SpuriousTimer => self.inject_spurious_timer(),
        }
    }

    /// Ledger + flight-recorder bookkeeping for one applied injection.
    fn note_injection(&mut self, kind: ChaosKind, detail: u64) {
        self.chaos.note_injected(kind);
        let (ring, cycles) = (self.ipr.ring.number(), self.cycles);
        self.spans.instant(InstantKind::Marker, ring, cycles, || {
            format!("chaos: {kind} @{detail:#o}")
        });
    }

    /// Applies a degradation decision from the policy: repeated
    /// corruption demotes a segment (or the whole machine) to the
    /// always-revalidating slow path.
    fn apply_degrade(&mut self, d: Degrade) {
        if d.global {
            self.tr.set_global_fast_veto();
        } else if let Some(seg) = d.seg {
            self.tr.set_fast_veto(seg);
        }
    }

    /// The physical range of the trap segment (vectors + save area),
    /// which injection must never poison.
    fn protected_range(&self) -> Option<(u32, u32)> {
        let sa = self.dbr.sdw_addr(self.config.trap_segno)?;
        let w0 = self.phys.peek(sa).ok()?;
        let w1 = self.phys.peek(sa.wrapping_add(1)).ok()?;
        let sdw = Sdw::unpack(w0, w1);
        if !sdw.present || !sdw.unpaged {
            return None;
        }
        Some((sdw.addr.value(), sdw.addr.value() + sdw.length_words()))
    }

    /// Draws a poisonable physical address below the memory high-water
    /// mark, avoiding the protected trap-segment range and every range
    /// registered through [`Machine::chaos_protect`].
    fn draw_parity_target(&mut self) -> Option<u32> {
        let hw = self.phys.high_water();
        if hw == 0 {
            return None;
        }
        let protect = self.protected_range();
        for _ in 0..TARGET_REROLLS {
            let abs = (self.chaos.rand() % u64::from(hw)) as u32;
            if let Some((lo, hi)) = protect {
                if abs >= lo && abs < hi {
                    continue;
                }
            }
            if self
                .chaos_protect
                .iter()
                .any(|&(lo, hi)| abs >= lo && abs < hi)
            {
                continue;
            }
            return Some(abs);
        }
        None
    }

    fn draw_mask(&mut self) -> u64 {
        1u64 << (self.chaos.rand() % u64::from(WORD_BITS))
    }

    fn inject_mem_parity(&mut self) {
        let Some(abs) = self.draw_parity_target() else {
            return;
        };
        let mask = self.draw_mask();
        if self.phys.corrupt(abs, mask) {
            self.note_injection(ChaosKind::MemParity, u64::from(abs));
        }
    }

    /// Scrambles one word of a random segment's in-memory SDW pair.
    /// The next descriptor walk for that segment meets the parity
    /// error; the supervisor's salvager repairs the descriptor segment.
    fn inject_sdw_corrupt(&mut self) {
        if self.dbr.bound == 0 {
            return;
        }
        for _ in 0..TARGET_REROLLS {
            let segno = (self.chaos.rand() % u64::from(self.dbr.bound)) as u32;
            if segno == self.config.trap_segno.value() {
                continue;
            }
            let segno_t = ring_core::addr::SegNo::from_bits(u64::from(segno));
            let Some(sa) = self.dbr.sdw_addr(segno_t) else {
                continue;
            };
            let abs = sa.wrapping_add((self.chaos.rand() % 2) as u32).value();
            let mask = self.draw_mask();
            if self.phys.corrupt(abs, mask) {
                self.tr.chaos_invalidate(segno_t);
                self.note_injection(ChaosKind::SdwCorrupt, u64::from(abs));
                let d = self.chaos.note_corruption(Some(segno));
                self.apply_degrade(d);
            }
            return;
        }
    }

    /// Scrambles one PTW of a random paged, present segment. Falls back
    /// to a plain memory parity error when the current address space
    /// has no paged segments.
    fn inject_ptw_corrupt(&mut self) {
        let bound = self.dbr.bound;
        if bound == 0 {
            self.inject_mem_parity();
            return;
        }
        let start = (self.chaos.rand() % u64::from(bound)) as u32;
        for i in 0..bound {
            let segno = (start + i) % bound;
            if segno == self.config.trap_segno.value() {
                continue;
            }
            let segno_t = ring_core::addr::SegNo::from_bits(u64::from(segno));
            let Some(sa) = self.dbr.sdw_addr(segno_t) else {
                continue;
            };
            let (Ok(w0), Ok(w1)) = (self.phys.peek(sa), self.phys.peek(sa.wrapping_add(1))) else {
                continue;
            };
            let sdw = Sdw::unpack(w0, w1);
            if !sdw.present || sdw.unpaged {
                continue;
            }
            let pages = ring_segmem::paging::pages_for(sdw.length_words());
            if pages == 0 {
                continue;
            }
            let page = (self.chaos.rand() % u64::from(pages)) as u32;
            let abs = sdw.addr.wrapping_add(page).value();
            let mask = self.draw_mask();
            if self.phys.corrupt(abs, mask) {
                self.tr.chaos_invalidate(segno_t);
                self.note_injection(ChaosKind::PtwCorrupt, u64::from(abs));
                let d = self.chaos.note_corruption(Some(segno));
                self.apply_degrade(d);
            }
            return;
        }
        self.inject_mem_parity();
    }

    /// Damages a live translation-cache entry. Cache parity catches it
    /// immediately — the entry is discarded and refilled on the next
    /// reference — so injection and detection coincide; what matters is
    /// the degradation policy's ledger.
    fn inject_tlb_corrupt(&mut self) {
        let (pick, which) = (self.chaos.rand(), self.chaos.rand());
        if let Some(seg) = self.tr.chaos_corrupt_cache(pick, which) {
            self.note_injection(ChaosKind::TlbCorrupt, u64::from(seg));
            self.chaos.note_detected();
            let d = self.chaos.note_corruption(Some(seg));
            self.apply_degrade(d);
        }
    }

    /// Arms the next channel completion to drop its interrupt. Only
    /// applied while a transfer is actually in flight, so every count
    /// corresponds to a real lost interrupt.
    fn inject_lost_completion(&mut self) {
        let busy = (0..crate::io::NUM_CHANNELS).any(|c| self.io.busy(c));
        if busy && !self.io.completion_loss_armed() {
            self.io.lose_next_completion();
            self.note_injection(ChaosKind::LostIoCompletion, 0);
        }
    }

    /// Forces an immediate timer runout (a preemption the scheduler
    /// did not ask for). Skipped when the timer is not armed — a
    /// runout needs a running timer to be architecturally possible.
    fn inject_spurious_timer(&mut self) {
        if self.timer.is_some() {
            self.timer = Some(0);
            self.note_injection(ChaosKind::SpuriousTimer, 0);
            self.chaos.note_detected();
        }
    }
}
