//! Execution tracing for examples, debugging and tests.
//!
//! Disabled by default; when enabled the machine records one event per
//! instruction plus call/return/trap/native events into a drop-oldest
//! ring buffer ([`ring_metrics::EventRing`]): beyond the capacity the
//! *oldest* events are discarded, so the recorder always holds the most
//! recent window of execution. Sequence numbers reveal how many earlier
//! events were dropped.

use ring_core::access::Fault;
use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::registers::Ipr;
use ring_core::ring::Ring;
use ring_metrics::EventRing;

use crate::isa::Instr;

/// One traced event.
#[derive(Clone, Copy, Debug)]
pub enum TraceEvent {
    /// An instruction was decoded at `at`.
    Instr {
        /// Location (and ring) the instruction came from.
        at: Ipr,
        /// The decoded instruction.
        instr: Instr,
    },
    /// A CALL transferred control.
    Call {
        /// Caller's IPR (already advanced past the CALL).
        from: Ipr,
        /// Entry point called.
        to: SegAddr,
        /// Ring of execution after the call.
        new_ring: Ring,
    },
    /// A RETURN transferred control.
    Return {
        /// Returner's IPR.
        from: Ipr,
        /// Return point.
        to: SegAddr,
        /// Ring of execution after the return.
        new_ring: Ring,
    },
    /// A fault trapped to ring 0.
    Trap {
        /// The fault taken.
        fault: Fault,
    },
    /// A native procedure body was invoked.
    Native {
        /// The native segment.
        segno: SegNo,
        /// Entry word number.
        entry: WordNo,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Instr { at, instr } => write!(
                f,
                "[ring {}] {}|{}: {} {:o}",
                at.ring,
                at.addr.segno,
                at.addr.wordno,
                instr.opcode.mnemonic(),
                instr.offset
            ),
            TraceEvent::Call { from, to, new_ring } => write!(
                f,
                "CALL ring {} -> ring {} at {to} (from {})",
                from.ring, new_ring, from.addr
            ),
            TraceEvent::Return { from, to, new_ring } => write!(
                f,
                "RETURN ring {} -> ring {} to {to} (from {})",
                from.ring, new_ring, from.addr
            ),
            TraceEvent::Trap { fault } => write!(f, "TRAP: {fault}"),
            TraceEvent::Native { segno, entry } => {
                write!(f, "native procedure {segno}|{entry}")
            }
        }
    }
}

/// Event recorder: a drop-oldest ring buffer with a capacity bound.
pub(crate) struct Trace {
    events: Option<EventRing<TraceEvent>>,
}

impl Trace {
    pub(crate) fn disabled() -> Trace {
        Trace { events: None }
    }

    pub(crate) fn enabled(capacity: usize) -> Trace {
        Trace {
            events: Some(EventRing::new(capacity)),
        }
    }

    /// Records the event produced by `make` if tracing is on; once the
    /// buffer is full the oldest event is discarded to make room (the
    /// closure avoids constructing events when disabled).
    pub(crate) fn push<F: FnOnce() -> TraceEvent>(&mut self, make: F) {
        if let Some(ring) = self.events.as_mut() {
            ring.push(make());
        }
    }

    /// Events discarded so far because the buffer was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, |r| r.dropped())
    }

    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        match self.events.as_mut() {
            Some(ring) => ring.drain().into_iter().map(|(_, e)| e).collect(),
            None => Vec::new(),
        }
    }

    /// Drains the recorded events with their global sequence numbers.
    pub(crate) fn take_seq(&mut self) -> Vec<(u64, TraceEvent)> {
        match self.events.as_mut() {
            Some(ring) => ring.drain(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(|| TraceEvent::Trap {
            fault: Fault::TimerRunout,
        });
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_trace_respects_capacity() {
        let mut t = Trace::enabled(2);
        for _ in 0..5 {
            t.push(|| TraceEvent::Trap {
                fault: Fault::TimerRunout,
            });
        }
        assert_eq!(t.take().len(), 2);
        // take() drains.
        assert!(t.take().is_empty());
    }

    #[test]
    fn full_trace_keeps_newest_events() {
        let mut t = Trace::enabled(2);
        for i in 0..5u32 {
            t.push(|| TraceEvent::Trap {
                fault: Fault::Derail { code: i },
            });
        }
        assert_eq!(t.dropped(), 3);
        let held = t.take_seq();
        // The two *newest* events survive, with their true positions in
        // the event stream — the drop-oldest contract.
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].0, 3);
        assert_eq!(held[1].0, 4);
        for (seq, e) in held {
            match e {
                TraceEvent::Trap {
                    fault: Fault::Derail { code },
                } => assert_eq!(u64::from(code), seq),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Trap {
            fault: Fault::TimerRunout,
        };
        assert!(e.to_string().contains("TRAP"));
    }
}
