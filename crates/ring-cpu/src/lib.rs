//! The processor simulator: a 36-bit segmented machine implementing the
//! ring-protection hardware of Schroeder & Saltzer (SOSP 1971).
//!
//! The instruction cycle mirrors the paper's Figs. 4–9:
//!
//! * instruction retrieval validated against the execute bracket
//!   ([`machine`], Fig. 4);
//! * effective-address formation with effective-ring maximisation over
//!   pointer registers and indirect words ([`ea`], Fig. 5);
//! * operand read/write validation ([`exec`], Fig. 6) and the EAP /
//!   ordinary-transfer advance checks ([`exec`], Fig. 7);
//! * hardware CALL and RETURN with downward/upward ring switching,
//!   stack-base generation and pointer-register ring floors
//!   ([`callret`], Figs. 8–9);
//! * traps forcing ring 0 with full state save/restore ([`trap`]);
//! * privileged instructions (LDBR, SIO, RETT, LDT) refused outside
//!   ring 0 ([`exec`]);
//! * I/O channels operating on absolute addresses ([`io`]).
//!
//! Supervisor code can be supplied either as machine code (assembled
//! with `ring-asm`) or as **native procedures** ([`native`]): Rust
//! bodies behind ordinary gate segments, entered only through the
//! hardware CALL path and constrained to ring-validated memory access.
//!
//! [`testkit`] builds small bare worlds for tests and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callret;
mod chaos;
pub mod ea;
pub mod exec;
mod fastpath;
pub mod image;
pub mod io;
pub mod isa;
pub mod machine;
pub mod native;
pub mod recorder;
pub mod testkit;
pub mod trace;
pub mod trap;

pub use image::MachineImage;
pub use io::{Direction, IoSystem, TtyDevice};
pub use isa::{AddrMode, Instr, Opcode, OperandUse};
pub use machine::{CostModel, ExecStats, Machine, MachineConfig, RunExit, StepOutcome};
pub use native::{NativeAction, NativeFn, NativeRegistry};
pub use recorder::{replay, run_recorded, seek, Recorder, ReplayReport, DEFAULT_CHECKPOINT_EVERY};
pub use ring_chaos::{ChaosEngine, ChaosKind, FaultPlan};
pub use ring_metrics::{Crossing, FastPathStats, Metrics, MetricsSnapshot, SdwCacheStats};
pub use ring_trace::{SpanEvent, SpanKey, SpanKind, SpanRecorder};
pub use trace::TraceEvent;
pub use trap::SavedState;
