//! The fast-path execution engine.
//!
//! [`Machine::step`] first attempts [`Machine::try_execute_fast`]: a
//! re-implementation of the common instructions built on two caches —
//! the ring-checked translation lookaside in `ring-segmem`
//! ([`ring_segmem::fastpath::RingTlb`], reached through
//! [`ring_segmem::translate::Translator`]) and the predecoded
//! instruction cache here ([`ICache`]). The attempt either *commits* a
//! whole instruction or *bails* with every piece of machine state
//! untouched, after which the untouched slow path runs as always.
//!
//! # The parity contract
//!
//! With the fast path enabled, every architectural outcome — registers,
//! memory, faults, trap sequences, and **simulated cycle counts** — must
//! be bit-identical to a run with `MachineConfig::fastpath` off. The
//! mechanisms:
//!
//! * **Probe, then commit.** All reads during the attempt are uncounted
//!   peeks through pure TLB probes. Only a committing attempt mutates
//!   anything: it charges exactly the counted reads the slow path would
//!   have made ([`ring_segmem::phys::PhysMem::charge_reads`]), performs
//!   the (peek-preverified) operand write for real, and applies the
//!   instruction's register effects via the *same* helpers the slow
//!   path uses ([`Machine::exec_read_op`] and friends).
//! * **Bail on anything that could fault.** Denials, bound overruns,
//!   missing pages, decode errors, indirect-limit overruns: the fast
//!   path never produces a fault itself; it steps aside and lets the
//!   slow path produce it, byte-for-byte.
//! * **Bail on anything rare.** CALL, RETURN, SPRI, DRL and the
//!   privileged instructions always take the slow path — they are
//!   exactly the paths whose full Figs. 8/9 sequencing is the point of
//!   the simulator.
//! * **Mirror the observability surface.** A committed fast instruction
//!   reports the same SDW-lookup, access-heatmap, instruction-mix and
//!   EA-depth events to `ring-metrics`, and the same [`TraceEvent`], as
//!   its slow twin.
//!
//! The instruction cache needs no invalidation protocol: each fetch
//! re-peeks the instruction word through the TLB translation and a hit
//! additionally requires the cached raw word to match, so self-modifying
//! code, DMA into code pages, and DBR switches all miss naturally.

use ring_core::access::AccessMode;
use ring_core::addr::{SegAddr, SegNo, WordNo, MAX_WORDNO};
use ring_core::effective;
use ring_core::registers::{IndWord, Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_metrics::EventSink;

use crate::isa::{AddrMode, Instr, Opcode, OperandUse};
use crate::machine::Machine;
use crate::trace::TraceEvent;

/// Number of direct-mapped predecoded-instruction slots.
const ICACHE_SLOTS: usize = 1024;

/// Key marking an empty slot (real keys fit in 33 bits).
const ICACHE_EMPTY: u64 = u64::MAX;

/// `(segno, wordno)` packed into one key.
#[inline]
fn icache_key(addr: SegAddr) -> u64 {
    (u64::from(addr.segno.value()) << 18) | u64::from(addr.wordno.value())
}

#[inline]
fn icache_slot(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & (ICACHE_SLOTS - 1)
}

#[derive(Clone, Copy)]
struct ICacheEntry {
    key: u64,
    /// Raw instruction word the decode was made from. A hit requires
    /// the word currently in memory to match, which is what makes the
    /// cache self-invalidating.
    raw: u64,
    instr: Instr,
    /// `instr.opcode.operand_use()`, precomputed at install.
    use_class: OperandUse,
    /// Fast-path eligible: not privileged and not DRL. Cached so a hit
    /// on an ineligible instruction bails without re-deriving it.
    eligible: bool,
}

impl ICacheEntry {
    fn new(key: u64, raw: u64, instr: Instr) -> ICacheEntry {
        ICacheEntry {
            key,
            raw,
            instr,
            use_class: instr.opcode.operand_use(),
            eligible: !instr.opcode.privileged() && !matches!(instr.opcode, Opcode::Drl),
        }
    }

    fn empty() -> ICacheEntry {
        ICacheEntry {
            key: ICACHE_EMPTY,
            ..ICacheEntry::new(0, 0, Instr::direct(Opcode::Nop, 0))
        }
    }
}

/// Direct-mapped cache of decoded instructions keyed by `(segno,
/// wordno)` and guarded by a raw-word comparison.
///
/// Slots are flat (a sentinel key marks empty ones, not an `Option`),
/// keeping each entry one 32-byte load and the hit test one fused
/// compare — this lookup sits on the critical path of every fast-path
/// instruction.
pub(crate) struct ICache {
    /// Fixed-size boxed array, masked indexing — no bounds check.
    slots: Box<[ICacheEntry; ICACHE_SLOTS]>,
    /// Fetches served from the cache (observability only).
    pub(crate) hits: u64,
    /// Fetches that had to decode (observability only).
    pub(crate) misses: u64,
}

impl ICache {
    fn new() -> ICache {
        ICache {
            slots: Box::new([ICacheEntry::empty(); ICACHE_SLOTS]),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the decoded instruction (and its precomputed operand
    /// class) for the word `raw` found at `addr`, from cache when the
    /// raw word still matches, decoding (and installing) otherwise.
    /// `None` on a decode error — those are faults and belong to the
    /// slow path — and on fast-path-ineligible instructions (the
    /// privileged group and DRL), which bail to their reference
    /// implementation.
    #[inline(always)]
    pub(crate) fn lookup_or_decode(
        &mut self,
        addr: SegAddr,
        raw: Word,
    ) -> Option<(Instr, OperandUse)> {
        let key = icache_key(addr);
        let slot = icache_slot(key);
        let e = &self.slots[slot];
        if ((e.key ^ key) | (e.raw ^ raw.raw())) == 0 {
            let hit = *e;
            self.hits += 1;
            if !hit.eligible {
                return None;
            }
            return Some((hit.instr, hit.use_class));
        }
        let instr = Instr::decode(raw).ok()?;
        self.misses += 1;
        let entry = ICacheEntry::new(key, raw.raw(), instr);
        let out = entry.eligible.then_some((instr, entry.use_class));
        self.slots[slot] = entry;
        out
    }

    /// Installs a decode performed by the slow path (warming).
    #[inline]
    pub(crate) fn install(&mut self, addr: SegAddr, raw: Word, instr: Instr) {
        let key = icache_key(addr);
        self.slots[icache_slot(key)] = ICacheEntry::new(key, raw.raw(), instr);
    }
}

/// Per-machine fast-path working state.
pub(crate) struct FastState {
    pub(crate) icache: ICache,
    /// Reusable buffer of heatmap events accumulated during an attempt
    /// and reported only on commit.
    access_buf: Vec<(u32, AccessMode)>,
    /// Whether the current attempt records observability events
    /// (latched from `Metrics::is_enabled` at attempt start, so the
    /// disabled-metrics hot path skips the buffer entirely).
    record: bool,
}

impl FastState {
    pub(crate) fn new() -> FastState {
        FastState {
            icache: ICache::new(),
            access_buf: Vec::with_capacity(8),
            record: false,
        }
    }
}

/// Fast-path effective address: the TPR equivalent plus the immediate
/// literal and the chain depth (for the Fig. 5 telemetry event).
struct FastEa {
    ring: Ring,
    addr: SegAddr,
    immediate: Option<Word>,
    depth: u32,
}

impl Machine {
    /// Attempts one whole instruction on the fast path. `Some(())`
    /// means the instruction committed (with all side effects, charges
    /// and telemetry applied); `None` means *nothing* was mutated and
    /// the caller must run the slow path.
    pub(crate) fn try_execute_fast(&mut self) -> Option<()> {
        let at0 = self.ipr;
        let iaddr = at0.addr;
        // Fig. 4 fetch verdict in one probe. A native-handled segment's
        // entry carries the slow-fetch bit and fails this probe, so the
        // intercept in `execute_one` is never bypassed.
        let fetch = self
            .tr
            .fast_probe(&self.phys, iaddr, at0.ring, AccessMode::Execute)?;
        // Peeks are poison-blind, so every word the fast path consumes
        // must be checked explicitly: a poisoned word bails to the slow
        // path, whose counted read raises the parity-error trap at the
        // identical instruction.
        if self.phys.is_poisoned(fetch.abs) {
            return None;
        }
        let iword = self.phys.peek(fetch.abs).ok()?;
        // The cache also answers eligibility: the privileged group and
        // DRL (and, below, CALL/RETURN/SPRI) keep their reference
        // implementation, so a lookup on one of those bails here.
        let (instr, use_class) = self.fast.icache.lookup_or_decode(iaddr, iword)?;

        // Counted reads and SDW lookups the slow path would have made.
        let mut reads = fetch.ptw_reads + 1;
        let mut lookups = 1u64;
        self.fast.record = self.metrics.is_enabled();
        if self.fast.record {
            self.fast.access_buf.clear();
            self.fast
                .access_buf
                .push((iaddr.segno.value(), AccessMode::Execute));
        }

        match use_class {
            OperandUse::None => {
                // Nop or Neg (Drl bailed above, Rett/Halt are
                // privileged); neither can fault.
                self.fast_commit(at0, instr, use_class, reads, lookups, None);
                self.exec_no_operand(instr).expect("NOP/NEG cannot fault");
                Some(())
            }
            OperandUse::Read => {
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                let value = match ea.immediate {
                    Some(lit) => lit,
                    None => {
                        let hit =
                            self.tr
                                .fast_probe(&self.phys, ea.addr, ea.ring, AccessMode::Read)?;
                        if self.phys.is_poisoned(hit.abs) {
                            return None;
                        }
                        let v = self.phys.peek(hit.abs).ok()?;
                        reads += hit.ptw_reads + 1;
                        lookups += 1;
                        if self.fast.record {
                            self.fast
                                .access_buf
                                .push((ea.addr.segno.value(), AccessMode::Read));
                        }
                        v
                    }
                };
                let ea_event = ea
                    .immediate
                    .is_none()
                    .then_some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                self.exec_read_op(instr, value)
                    .expect("read-group ops cannot fault");
                Some(())
            }
            OperandUse::Write => {
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                if ea.immediate.is_some() {
                    return None; // IllegalModifier on the slow path
                }
                let hit = self
                    .tr
                    .fast_probe(&self.phys, ea.addr, ea.ring, AccessMode::Write)?;
                // Preverify so the committed write cannot fault.
                self.phys.peek(hit.abs).ok()?;
                reads += hit.ptw_reads;
                lookups += 1;
                if self.fast.record {
                    self.fast
                        .access_buf
                        .push((ea.addr.segno.value(), AccessMode::Read));
                }
                let value = self.write_value(instr);
                let ea_event = Some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                self.phys
                    .write(hit.abs, value)
                    .expect("peek-verified address");
                Some(())
            }
            OperandUse::ReadWrite => {
                // AOS: both capabilities, one resolve with write intent.
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                if ea.immediate.is_some() {
                    return None;
                }
                let hw = self.tr.fast_probe_rw(&self.phys, ea.addr, ea.ring)?;
                if self.phys.is_poisoned(hw.abs) {
                    return None;
                }
                let v = self.phys.peek(hw.abs).ok()?.wrapping_add(Word::new(1));
                reads += hw.ptw_reads + 1;
                lookups += 1;
                if self.fast.record {
                    self.fast
                        .access_buf
                        .push((ea.addr.segno.value(), AccessMode::Read));
                }
                let ea_event = Some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                self.phys.write(hw.abs, v).expect("peek-verified address");
                self.set_indicators(v);
                Some(())
            }
            OperandUse::Pointer => {
                // EAP: no operand reference, no validation.
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                if ea.immediate.is_some() {
                    return None;
                }
                let ea_event = Some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                self.prs[instr.xreg as usize] = PtrReg::new(ea.ring, ea.addr);
                Some(())
            }
            OperandUse::Transfer => {
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                if ea.immediate.is_some() {
                    return None;
                }
                let taken = self.transfer_taken(instr.opcode);
                if taken {
                    // Fig. 7 advance check: one SDW lookup, no operand
                    // reference.
                    if !self.tr.fast_probe_transfer(ea.addr, ea.ring) {
                        return None;
                    }
                    lookups += 1;
                    if self.fast.record {
                        self.fast
                            .access_buf
                            .push((ea.addr.segno.value(), AccessMode::Read));
                    }
                }
                let ea_event = Some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                if taken {
                    self.ipr.addr = ea.addr;
                }
                Some(())
            }
            OperandUse::AddressOnly => {
                let ea = self.fast_form_ea(&instr, iaddr.segno, &mut reads, &mut lookups)?;
                let count = u64::from(ea.addr.wordno.value());
                let ea_event = ea
                    .immediate
                    .is_none()
                    .then_some((ea.depth, ea.ring.number() > at0.ring.number()));
                self.fast_commit(at0, instr, use_class, reads, lookups, ea_event);
                self.exec_address_only(instr, count);
                Some(())
            }
            // CALL/RETURN ring switching and the SPRI double store stay
            // on the reference path.
            OperandUse::Call | OperandUse::Return | OperandUse::WritePair => None,
        }
    }

    /// Fig. 5 effective-address formation on pure probes. Mirrors
    /// [`Machine::form_ea`] exactly; `None` bails (chain too long, a
    /// probe missed, or a word was unreachable).
    fn fast_form_ea(
        &mut self,
        instr: &Instr,
        iseg: SegNo,
        reads: &mut u64,
        lookups: &mut u64,
    ) -> Option<FastEa> {
        let mut offset = instr.offset;
        match instr.mode {
            AddrMode::Immediate => {
                return Some(FastEa {
                    ring: self.ipr.ring,
                    addr: SegAddr::new(iseg, WordNo::from_bits(u64::from(offset))),
                    immediate: Some(Word::new(u64::from(offset))),
                    depth: 0,
                });
            }
            AddrMode::Indexed => {
                offset = (offset + self.x[instr.xreg as usize]) & MAX_WORDNO;
            }
            AddrMode::None => {}
        }
        let (mut ring, mut addr) = match instr.pr {
            Some(n) => {
                let pr = self.prs[n as usize];
                (
                    effective::fold_pr(self.ipr.ring, pr.ring, self.config.ea_rules),
                    SegAddr::new(pr.addr.segno, pr.addr.wordno.wrapping_add(offset)),
                )
            }
            None => (
                self.ipr.ring,
                SegAddr::new(iseg, WordNo::from_bits(u64::from(offset))),
            ),
        };
        let mut indirect = instr.indirect;
        let mut depth = 0u32;
        while indirect {
            depth += 1;
            if depth > self.config.indirect_limit {
                return None; // IndirectLimit on the slow path
            }
            let hit0 = self
                .tr
                .fast_probe(&self.phys, addr, ring, AccessMode::Read)?;
            let second = SegAddr::new(addr.segno, addr.wordno.wrapping_add(1));
            // The probe's per-page bound test is exactly the SDW bound
            // check the slow path applies to the pair's second word.
            let hit1 = self
                .tr
                .fast_probe(&self.phys, second, ring, AccessMode::Read)?;
            if self.phys.is_poisoned(hit0.abs) || self.phys.is_poisoned(hit1.abs) {
                return None;
            }
            let w0 = self.phys.peek(hit0.abs).ok()?;
            let w1 = self.phys.peek(hit1.abs).ok()?;
            *reads += hit0.ptw_reads + hit1.ptw_reads + 2;
            *lookups += 1;
            if self.fast.record {
                self.fast
                    .access_buf
                    .push((addr.segno.value(), AccessMode::Read));
            }
            let iw = IndWord::unpack(w0, w1);
            ring = effective::fold_indirect_parts(ring, iw.ring, hit0.r1, self.config.ea_rules);
            addr = iw.addr;
            indirect = iw.indirect;
        }
        Some(FastEa {
            ring,
            addr,
            immediate: None,
            depth,
        })
    }

    /// Commits an attempt: charges the counted reads, credits the cache
    /// statistics, mirrors the slow path's trace and metrics events, and
    /// advances the instruction counter (transfers overwrite it after).
    fn fast_commit(
        &mut self,
        at0: Ipr,
        instr: Instr,
        use_class: OperandUse,
        reads: u64,
        lookups: u64,
        ea_event: Option<(u32, bool)>,
    ) {
        self.phys.charge_reads(reads);
        self.tr.fast_commit_hits(lookups);
        self.stats.fast_steps += 1;
        self.trace.push(|| TraceEvent::Instr { at: at0, instr });
        // `last_use` stays `None`: its only consumer attributes cycle
        // costs to the CALL/RETURN histograms, and those two classes
        // never commit here.
        if self.fast.record {
            self.metrics.instruction(at0.ring, use_class.metric_class());
            for _ in 0..lookups {
                self.metrics.sdw_lookup(true, 0);
            }
            let buf = std::mem::take(&mut self.fast.access_buf);
            for &(segno, mode) in &buf {
                self.metrics.access(segno, mode);
            }
            self.fast.access_buf = buf;
            if let Some((depth, maximised)) = ea_event {
                self.metrics.ea_formed(depth, maximised);
            }
        }
        self.ipr.addr = SegAddr::new(at0.addr.segno, at0.addr.wordno.wrapping_add(1));
    }
}
