//! Whole-machine image capture and restore.
//!
//! A [`MachineImage`] is every bit of state that can influence an
//! architectural outcome: registers, indicators, the DBR, cycle and
//! fault state, execution statistics, sparse physical memory with its
//! traffic counters, the I/O subsystem (device queues and in-flight
//! channel programs), and the SDW associative memory's replacement
//! state. The last one matters because the cache is visible through
//! cycle counts — a resident SDW absorbs the two-reference descriptor
//! fetch — so replay without it would drift from the recorded run.
//!
//! Deliberately *not* captured:
//!
//! - the machine configuration and native-procedure registry — a
//!   recording is replayed into a machine rebuilt from the same program
//!   and configuration (function pointers cannot be serialized);
//! - the fast-path TLB and instruction cache — pure acceleration,
//!   invisible to every architectural outcome including cycles, so a
//!   restored machine simply starts them cold;
//! - the observability layer (trace, metrics, spans) — observers are
//!   re-armed by the replay harness, not part of the machine's state.
//!
//! The encoding is a flat `Vec<u64>` so the recording container
//! (`ring-trace`) can treat images as opaque words. Capture uses only
//! uncounted reads (`peek`), so taking a checkpoint never perturbs the
//! run being recorded.

use ring_core::access::{AccessMode, Fault, Violation};
use ring_core::addr::{AbsAddr, SegAddr, SegNo, WordNo};
use ring_core::registers::{Dbr, Ipr, PtrReg, NUM_PR};
use ring_core::ring::Ring;
use ring_core::sdw::Sdw;
use ring_core::word::Word;
use ring_segmem::sdw_cache::SdwCacheState;

use crate::machine::{ExecStats, Machine};

/// Identifies the image encoding (bumped on layout changes).
const MAGIC: u64 = 0x52_49_4E_47_49_4D_47; // "RINGIMG"
const VERSION: u64 = 2; // v2 appends chaos state (engine, poison, vetoes)

/// An opaque, complete snapshot of a machine's architectural state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineImage {
    words: Vec<u64>,
}

impl MachineImage {
    /// The flat word encoding (for embedding in a recording).
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Wraps a flat word encoding read back from a recording.
    pub fn from_words(words: Vec<u64>) -> MachineImage {
        MachineImage { words }
    }

    /// The encoded words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Packs a two-part address into one image word.
fn pack_addr(addr: SegAddr) -> u64 {
    (u64::from(addr.segno.value()) << 20) | u64::from(addr.wordno.value())
}

fn unpack_addr(w: u64) -> SegAddr {
    SegAddr::new(SegNo::from_bits(w >> 20), WordNo::from_bits(w & 0xF_FFFF))
}

/// Encodes a fault as `[tag, f1, f2, f3]`.
fn pack_fault(fault: &Fault) -> [u64; 4] {
    match fault {
        Fault::AccessViolation {
            mode,
            violation,
            addr,
            ring,
        } => {
            let m = match mode {
                AccessMode::Read => 0,
                AccessMode::Write => 1,
                AccessMode::Execute => 2,
            };
            let v = match violation {
                Violation::FlagOff => 0,
                Violation::OutsideBracket => 1,
                Violation::NotAGate => 2,
                Violation::AboveGateExtension => 3,
                Violation::CallRingAnomaly => 4,
                Violation::OutOfBounds => 5,
                Violation::NoSuchSegment => 6,
            };
            [0, (m << 8) | v, pack_addr(*addr), u64::from(ring.number())]
        }
        Fault::UpwardCall { target, ring } => [1, pack_addr(*target), u64::from(ring.number()), 0],
        Fault::DownwardReturn { target, ring } => {
            [2, pack_addr(*target), u64::from(ring.number()), 0]
        }
        Fault::SegmentFault { addr, class } => [3, pack_addr(*addr), u64::from(*class), 0],
        Fault::PageFault { addr } => [4, pack_addr(*addr), 0, 0],
        Fault::PrivilegedViolation { ring } => [5, u64::from(ring.number()), 0, 0],
        Fault::IllegalOpcode { opcode } => [6, u64::from(*opcode), 0, 0],
        Fault::IllegalModifier => [7, 0, 0, 0],
        Fault::IndirectLimit => [8, 0, 0, 0],
        Fault::Derail { code } => [9, u64::from(*code), 0, 0],
        Fault::TimerRunout => [10, 0, 0, 0],
        Fault::IoCompletion { channel } => [11, u64::from(*channel), 0, 0],
        Fault::PhysicalBounds { abs } => [12, u64::from(*abs), 0, 0],
        Fault::Halt => [13, 0, 0, 0],
        Fault::ParityError { abs } => [14, u64::from(*abs), 0, 0],
        Fault::IoError { channel, code } => [15, u64::from(*channel), u64::from(*code), 0],
    }
}

fn unpack_fault(f: &[u64; 4]) -> Result<Fault, String> {
    Ok(match f[0] {
        0 => {
            let mode = match f[1] >> 8 {
                0 => AccessMode::Read,
                1 => AccessMode::Write,
                2 => AccessMode::Execute,
                m => return Err(format!("bad access mode {m}")),
            };
            let violation = match f[1] & 0xFF {
                0 => Violation::FlagOff,
                1 => Violation::OutsideBracket,
                2 => Violation::NotAGate,
                3 => Violation::AboveGateExtension,
                4 => Violation::CallRingAnomaly,
                5 => Violation::OutOfBounds,
                6 => Violation::NoSuchSegment,
                v => return Err(format!("bad violation {v}")),
            };
            Fault::AccessViolation {
                mode,
                violation,
                addr: unpack_addr(f[2]),
                ring: Ring::from_bits(f[3]),
            }
        }
        1 => Fault::UpwardCall {
            target: unpack_addr(f[1]),
            ring: Ring::from_bits(f[2]),
        },
        2 => Fault::DownwardReturn {
            target: unpack_addr(f[1]),
            ring: Ring::from_bits(f[2]),
        },
        3 => Fault::SegmentFault {
            addr: unpack_addr(f[1]),
            class: f[2] as u8,
        },
        4 => Fault::PageFault {
            addr: unpack_addr(f[1]),
        },
        5 => Fault::PrivilegedViolation {
            ring: Ring::from_bits(f[1]),
        },
        6 => Fault::IllegalOpcode {
            opcode: f[1] as u16,
        },
        7 => Fault::IllegalModifier,
        8 => Fault::IndirectLimit,
        9 => Fault::Derail { code: f[1] as u32 },
        10 => Fault::TimerRunout,
        11 => Fault::IoCompletion {
            channel: f[1] as u8,
        },
        12 => Fault::PhysicalBounds { abs: f[1] as u32 },
        13 => Fault::Halt,
        14 => Fault::ParityError { abs: f[1] as u32 },
        15 => Fault::IoError {
            channel: f[1] as u8,
            code: f[2] as u32,
        },
        t => return Err(format!("bad fault tag {t}")),
    })
}

/// A cursor over the flat encoding with bounds-checked reads.
struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self) -> Result<u64, String> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or("truncated machine image")?;
        self.pos += 1;
        Ok(w)
    }

    fn take_n(&mut self, n: usize) -> Result<&'a [u64], String> {
        let slice = self
            .words
            .get(self.pos..self.pos + n)
            .ok_or("truncated machine image")?;
        self.pos += n;
        Ok(slice)
    }
}

impl Machine {
    /// Captures the complete architectural state as an opaque image.
    ///
    /// Read-only and uncounted: taking an image never perturbs the
    /// machine (so a recorder can checkpoint mid-run without changing
    /// the run).
    pub fn capture_image(&self) -> MachineImage {
        let mut w: Vec<u64> = Vec::new();
        w.push(MAGIC);
        w.push(VERSION);
        // Registers and indicators.
        w.push(self.ipr.pack().raw());
        for pr in &self.prs {
            w.push(pr.pack().raw());
        }
        w.push(self.a.raw());
        w.push(self.q.raw());
        for x in &self.x {
            w.push(u64::from(*x));
        }
        let mut flags = 0u64;
        flags |= u64::from(self.ind_zero);
        flags |= u64::from(self.ind_neg) << 1;
        flags |= u64::from(self.in_trap) << 2;
        flags |= u64::from(self.halted) << 3;
        flags |= u64::from(self.timer.is_some()) << 4;
        flags |= u64::from(self.last_fault.is_some()) << 5;
        flags |= u64::from(self.double_fault.is_some()) << 6;
        w.push(flags);
        w.push(self.timer.unwrap_or(0));
        w.push(self.cycles);
        let (d0, d1) = self.dbr.pack();
        w.push(d0.raw());
        w.push(d1.raw());
        w.extend(pack_fault(&self.last_fault.unwrap_or(Fault::Halt)));
        w.extend(pack_fault(&self.double_fault.unwrap_or(Fault::Halt)));
        // Execution statistics (part of the observable snapshot/metrics
        // surface, so replay must resume them).
        let s = &self.stats;
        w.extend([
            s.instructions,
            s.calls_same_ring,
            s.calls_downward,
            s.returns_same_ring,
            s.returns_upward,
            s.traps,
            s.upward_call_traps,
            s.downward_return_traps,
            s.native_calls,
            s.fast_steps,
        ]);
        // Physical memory: traffic counters plus sparse nonzero words.
        w.push(self.phys.read_count());
        w.push(self.phys.write_count());
        w.push(self.phys.size() as u64);
        let nonzero = self.phys.nonzero_words();
        w.push(nonzero.len() as u64);
        for (abs, word) in nonzero {
            w.push(u64::from(abs));
            w.push(word.raw());
        }
        // I/O subsystem.
        let io = self.io.export_words();
        w.push(io.len() as u64);
        w.extend(io);
        // SDW associative memory.
        let cache = self.tr.export_cache_state();
        w.push(cache.entries.len() as u64);
        w.push(cache.next_victim as u64);
        w.extend([
            cache.stats.hits,
            cache.stats.misses,
            cache.stats.flushes,
            cache.stats.invalidations,
        ]);
        for entry in &cache.entries {
            match entry {
                None => w.push(0),
                Some((segno, sdw)) => {
                    w.push(1);
                    w.push(u64::from(segno.value()));
                    let (s0, s1) = sdw.pack();
                    w.push(s0.raw());
                    w.push(s1.raw());
                }
            }
        }
        // Chaos state (v2): the injection engine, poisoned physical
        // words, and fast-path degradation vetoes. All deterministic
        // simulated state, so replay must resume them exactly.
        let engine = self.chaos.export_words();
        w.push(engine.len() as u64);
        w.extend(engine);
        let poison = self.phys.poison_export();
        w.push(poison.len() as u64);
        w.extend(poison.iter().map(|&a| u64::from(a)));
        w.push(self.phys.repaired_count());
        w.push(u64::from(self.phys.high_water()));
        let (veto_segs, veto_global) = self.tr.fast_veto_export();
        w.push(veto_segs.len() as u64);
        w.extend(veto_segs.iter().map(|&s| u64::from(s)));
        w.push(u64::from(veto_global));
        w.push(self.chaos_protect.len() as u64);
        for &(lo, hi) in &self.chaos_protect {
            w.push(u64::from(lo));
            w.push(u64::from(hi));
        }
        MachineImage { words: w }
    }

    /// Restores an image captured by [`Machine::capture_image`].
    ///
    /// The machine must have been built with the same configuration
    /// (physical memory size, SDW-cache capacity, cost model) as the
    /// one that produced the image; mismatches are reported as errors.
    /// The fast-path TLB and instruction cache restart cold, which is
    /// architecturally invisible.
    pub fn restore_image(&mut self, image: &MachineImage) -> Result<(), String> {
        let mut r = Reader {
            words: &image.words,
            pos: 0,
        };
        if r.take()? != MAGIC {
            return Err("not a machine image".to_string());
        }
        if r.take()? != VERSION {
            return Err("unsupported machine-image version".to_string());
        }
        let ipr = Ipr::unpack(Word::new(r.take()?));
        let mut prs = [PtrReg::NULL; NUM_PR];
        for pr in prs.iter_mut() {
            *pr = PtrReg::unpack(Word::new(r.take()?));
        }
        let a = Word::new(r.take()?);
        let q = Word::new(r.take()?);
        let mut x = [0u32; 8];
        for xi in x.iter_mut() {
            *xi = r.take()? as u32;
        }
        let flags = r.take()?;
        let timer_value = r.take()?;
        let cycles = r.take()?;
        let d0 = Word::new(r.take()?);
        let d1 = Word::new(r.take()?);
        let last_fault_words: [u64; 4] = r.take_n(4)?.try_into().expect("4 words");
        let double_fault_words: [u64; 4] = r.take_n(4)?.try_into().expect("4 words");
        let stats_words = r.take_n(10)?.to_vec();
        let reads = r.take()?;
        let writes = r.take()?;
        let size = r.take()? as usize;
        if size != self.phys.size() {
            return Err(format!(
                "image has {size} physical words, machine has {}",
                self.phys.size()
            ));
        }
        let nonzero = r.take()? as usize;
        let mut mem: Vec<(u32, Word)> = Vec::with_capacity(nonzero);
        for _ in 0..nonzero {
            let abs = r.take()? as u32;
            let word = Word::new(r.take()?);
            mem.push((abs, word));
        }
        let io_len = r.take()? as usize;
        let io_words = r.take_n(io_len)?.to_vec();
        let cache_capacity = r.take()? as usize;
        if cache_capacity != self.tr.export_cache_state().entries.len() {
            return Err("image SDW-cache capacity mismatch".to_string());
        }
        let next_victim = r.take()? as usize;
        let cache_stats = ring_segmem::sdw_cache::CacheStats {
            hits: r.take()?,
            misses: r.take()?,
            flushes: r.take()?,
            invalidations: r.take()?,
        };
        let mut entries: Vec<Option<(SegNo, Sdw)>> = Vec::with_capacity(cache_capacity);
        for _ in 0..cache_capacity {
            if r.take()? == 0 {
                entries.push(None);
            } else {
                let segno = SegNo::from_bits(r.take()?);
                let s0 = Word::new(r.take()?);
                let s1 = Word::new(r.take()?);
                entries.push(Some((segno, Sdw::unpack(s0, s1))));
            }
        }
        let engine_len = r.take()? as usize;
        let engine_words = r.take_n(engine_len)?;
        let mut engine_it = engine_words.iter().copied();
        let chaos = ring_chaos::ChaosEngine::restore_words(&mut || engine_it.next())
            .ok_or("malformed chaos-engine state in machine image")?;
        if engine_it.next().is_some() {
            return Err("trailing chaos-engine words in machine image".to_string());
        }
        let poison_len = r.take()? as usize;
        let poison: Vec<u32> = r.take_n(poison_len)?.iter().map(|&a| a as u32).collect();
        let repaired = r.take()?;
        let high_water = r.take()? as u32;
        let veto_len = r.take()? as usize;
        let veto_segs: Vec<u32> = r.take_n(veto_len)?.iter().map(|&s| s as u32).collect();
        let veto_global = r.take()? != 0;
        let protect_len = r.take()? as usize;
        let mut chaos_protect = Vec::with_capacity(protect_len);
        for _ in 0..protect_len {
            let lo = r.take()? as u32;
            let hi = r.take()? as u32;
            chaos_protect.push((lo, hi));
        }
        if r.pos != image.words.len() {
            return Err("trailing data in machine image".to_string());
        }
        let last_fault = if flags & 32 != 0 {
            Some(unpack_fault(&last_fault_words)?)
        } else {
            None
        };
        let double_fault = if flags & 64 != 0 {
            Some(unpack_fault(&double_fault_words)?)
        } else {
            None
        };
        if mem.iter().any(|(abs, _)| *abs as usize >= size) {
            return Err("image word beyond physical memory".to_string());
        }

        // All fields decoded — apply (nothing below can fail, so a bad
        // image never leaves the machine half-restored).
        self.ipr = ipr;
        self.prs = prs;
        self.a = a;
        self.q = q;
        self.x = x;
        self.ind_zero = flags & 1 != 0;
        self.ind_neg = flags & 2 != 0;
        self.in_trap = flags & 4 != 0;
        self.halted = flags & 8 != 0;
        self.timer = (flags & 16 != 0).then_some(timer_value);
        self.last_fault = last_fault;
        self.double_fault = double_fault;
        self.cycles = cycles;
        self.dbr = Dbr::unpack(d0, d1);
        self.stats = ExecStats {
            instructions: stats_words[0],
            calls_same_ring: stats_words[1],
            calls_downward: stats_words[2],
            returns_same_ring: stats_words[3],
            returns_upward: stats_words[4],
            traps: stats_words[5],
            upward_call_traps: stats_words[6],
            downward_return_traps: stats_words[7],
            native_calls: stats_words[8],
            fast_steps: stats_words[9],
        };
        self.phys.zero_all();
        for (abs, word) in mem {
            self.phys
                .poke(AbsAddr::from_bits(u64::from(abs)), word)
                .expect("bounds pre-checked");
        }
        self.phys.restore_counters(reads, writes);
        self.phys.restore_chaos_state(&poison, repaired, high_water);
        self.chaos_protect = chaos_protect;
        self.io.restore_words(&io_words)?;
        self.chaos = chaos;
        self.tr.fast_veto_restore(&veto_segs, veto_global);
        self.tr.restore_cache_state(&SdwCacheState {
            entries,
            next_victim,
            stats: cache_stats,
        });
        self.fast = crate::fastpath::FastState::new();
        self.last_use = None;
        self.extra_cycles = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_codec_round_trips_every_variant() {
        let addr = SegAddr::from_parts(100, 0o1234).unwrap();
        let faults = [
            Fault::AccessViolation {
                mode: AccessMode::Write,
                violation: Violation::OutsideBracket,
                addr,
                ring: Ring::R5,
            },
            Fault::UpwardCall {
                target: addr,
                ring: Ring::R2,
            },
            Fault::DownwardReturn {
                target: addr,
                ring: Ring::R6,
            },
            Fault::SegmentFault { addr, class: 3 },
            Fault::PageFault { addr },
            Fault::PrivilegedViolation { ring: Ring::R4 },
            Fault::IllegalOpcode { opcode: 0o777 },
            Fault::IllegalModifier,
            Fault::IndirectLimit,
            Fault::Derail { code: 0o777 },
            Fault::TimerRunout,
            Fault::IoCompletion { channel: 7 },
            Fault::PhysicalBounds { abs: 0xFF_FFFF },
            Fault::Halt,
            Fault::ParityError { abs: 0o1234 },
            Fault::IoError {
                channel: 2,
                code: 0o1,
            },
        ];
        for f in faults {
            assert_eq!(unpack_fault(&pack_fault(&f)).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn addr_codec_covers_extremes() {
        for (s, w) in [(0, 0), (100, 0o1234), (0x7FFF, 0x3FFFF)] {
            let addr = SegAddr::from_parts(s, w).unwrap();
            assert_eq!(unpack_addr(pack_addr(addr)), addr);
        }
    }
}
