//! I/O channels and devices.
//!
//! The privileged SIO instruction connects a channel to a two-word
//! channel program: word 0 carries the absolute buffer address, the
//! direction, and the channel number; word 1 the word count. The
//! channel then transfers data between physical memory and its device
//! asynchronously — by absolute address, bypassing segmentation, which
//! is exactly why SIO must be privileged — and raises an I/O-completion
//! trap when done.
//!
//! One device type is modelled: a typewriter (terminal) holding a word
//! queue in each direction, enough to reproduce the paper's typewriter
//! I/O package example (experiment T4).
//!
//! # Channel program layout
//!
//! ```text
//! word 0: ABS[0..24]  DIR[24] (0 = memory→device, 1 = device→memory)
//!         CHANNEL[25..28]
//! word 1: COUNT[0..18]
//! ```

use std::collections::VecDeque;

use ring_core::access::Fault;
use ring_core::addr::AbsAddr;
use ring_core::word::Word;
use ring_segmem::phys::PhysMem;

/// Number of I/O channels.
pub const NUM_CHANNELS: usize = 8;

/// Simulated channel word-transfer time, in cycles per word.
pub const CYCLES_PER_WORD: u64 = 2;

/// Fixed channel start-up latency in cycles.
pub const CHANNEL_LATENCY: u64 = 8;

/// Cycles past a transfer's completion time before the channel watchdog
/// concludes the completion interrupt was lost and raises an I/O-error
/// trap instead. Generous relative to [`CYCLES_PER_WORD`] so a watchdog
/// can never fire while its completion is still legitimately pending.
pub const WATCHDOG_MARGIN: u64 = 64;

/// I/O-error code reported when a channel watchdog expires (the
/// completion interrupt was lost).
pub const IO_ERROR_WATCHDOG: u32 = 0o1;

/// Direction of a channel transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Memory to device (output).
    Output,
    /// Device to memory (input).
    Input,
}

#[derive(Clone, Debug)]
struct Operation {
    abs: AbsAddr,
    count: u32,
    direction: Direction,
    done_at: u64,
}

/// A typewriter-like device: word queues in both directions.
#[derive(Clone, Debug, Default)]
pub struct TtyDevice {
    /// Words the channel has delivered to the device (printed output).
    pub output: Vec<Word>,
    /// Words queued for the program to read (keyboard input).
    pub input: VecDeque<Word>,
}

impl TtyDevice {
    /// Queues the bytes of `s` as one word per character (low 9 bits).
    pub fn type_line(&mut self, s: &str) {
        for b in s.bytes() {
            self.input.push_back(Word::new(u64::from(b)));
        }
    }

    /// Renders the printed output as a string (low 8 bits per word).
    pub fn printed(&self) -> String {
        self.output
            .iter()
            .map(|w| (w.raw() & 0xff) as u8 as char)
            .collect()
    }
}

/// The I/O subsystem: channels plus their devices.
#[derive(Clone, Debug)]
pub struct IoSystem {
    devices: Vec<TtyDevice>,
    inflight: Vec<Option<Operation>>,
    /// Number of occupied `inflight` slots, so the between-instructions
    /// completion poll is O(1) on the (overwhelmingly common) idle case.
    busy_count: u32,
    /// Chaos arm: the next completion performs its transfer but drops
    /// the interrupt, leaving a watchdog in its place.
    lose_next: bool,
    /// Per-channel watchdog deadlines, set when a completion interrupt
    /// was lost. Expiry surfaces as an I/O-error trap so a waiter is
    /// never stranded forever.
    watchdogs: Vec<Option<u64>>,
}

impl IoSystem {
    /// A system with [`NUM_CHANNELS`] idle channels.
    pub fn new() -> IoSystem {
        IoSystem {
            devices: (0..NUM_CHANNELS).map(|_| TtyDevice::default()).collect(),
            inflight: vec![None; NUM_CHANNELS],
            busy_count: 0,
            lose_next: false,
            watchdogs: vec![None; NUM_CHANNELS],
        }
    }

    /// The device on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= NUM_CHANNELS`.
    pub fn device(&self, channel: usize) -> &TtyDevice {
        &self.devices[channel]
    }

    /// Mutable access to the device on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= NUM_CHANNELS`.
    pub fn device_mut(&mut self, channel: usize) -> &mut TtyDevice {
        &mut self.devices[channel]
    }

    /// True if `channel` has a transfer in flight.
    pub fn busy(&self, channel: usize) -> bool {
        self.inflight[channel].is_some()
    }

    /// The earliest completion time among in-flight transfers, if any.
    /// The kernel's idler uses this to advance simulated time straight
    /// to the next I/O interrupt when every process is blocked.
    pub fn next_done_at(&self) -> Option<u64> {
        self.inflight
            .iter()
            .filter_map(|op| op.as_ref().map(|o| o.done_at))
            .chain(self.watchdogs.iter().flatten().copied())
            .min()
    }

    /// The completion time of the transfer in flight on `channel`, if
    /// one is pending. Lets the kernel's idler wake exactly the
    /// processes whose channel finishes by the time it advances to.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= NUM_CHANNELS`.
    pub fn channel_done_at(&self, channel: usize) -> Option<u64> {
        match (
            self.inflight[channel].as_ref().map(|o| o.done_at),
            self.watchdogs[channel],
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Chaos arm: the next matured completion performs its data
    /// transfer but drops the completion interrupt, leaving only the
    /// channel watchdog to report the loss.
    pub fn lose_next_completion(&mut self) {
        self.lose_next = true;
    }

    /// True while a loss is armed but has not yet claimed a completion.
    pub fn completion_loss_armed(&self) -> bool {
        self.lose_next
    }

    /// Number of channels with an expired-or-pending watchdog.
    pub fn pending_watchdogs(&self) -> u32 {
        self.watchdogs.iter().flatten().count() as u32
    }

    /// If a channel's watchdog has expired by `now`, clears it and
    /// returns the channel (the machine then raises an I/O-error trap
    /// with the watchdog code). At most one expiry per call.
    pub fn take_watchdog_expiry(&mut self, now: u64) -> Option<u8> {
        let idx = self
            .watchdogs
            .iter()
            .position(|d| matches!(d, Some(t) if *t <= now))?;
        self.watchdogs[idx] = None;
        Some(idx as u8)
    }

    /// Starts a channel from the two SIO operand words at simulated
    /// time `now`. A connect to a busy channel is refused with a derail
    /// fault (code 0o77), standing in for the hardware's channel-busy
    /// indicator.
    pub(crate) fn start(&mut self, w0: Word, w1: Word, now: u64) -> Result<(), Fault> {
        let abs = AbsAddr::from_bits(w0.field(0, 24));
        let direction = if w0.bit(24) {
            Direction::Input
        } else {
            Direction::Output
        };
        let channel = w0.field(25, 3) as usize;
        let count = w1.field(0, 18) as u32;
        if self.inflight[channel].is_some() {
            return Err(Fault::Derail { code: 0o77 });
        }
        let done_at = now + CHANNEL_LATENCY + u64::from(count) * CYCLES_PER_WORD;
        self.inflight[channel] = Some(Operation {
            abs,
            count,
            direction,
            done_at,
        });
        self.busy_count += 1;
        Ok(())
    }

    /// If a channel has completed by time `now`, performs its transfer
    /// against `phys` and returns the channel number (the machine then
    /// raises the I/O-completion trap). At most one completion is
    /// delivered per call.
    #[inline]
    pub(crate) fn take_completion(&mut self, now: u64, phys: &mut PhysMem) -> Option<u8> {
        if self.busy_count == 0 {
            return None;
        }
        self.take_completion_slow(now, phys)
    }

    fn take_completion_slow(&mut self, now: u64, phys: &mut PhysMem) -> Option<u8> {
        loop {
            let idx = self
                .inflight
                .iter()
                .position(|op| matches!(op, Some(o) if o.done_at <= now))?;
            let op = self.inflight[idx].take()?;
            self.busy_count -= 1;
            let dev = &mut self.devices[idx];
            match op.direction {
                Direction::Output => {
                    for i in 0..op.count {
                        let w = phys.read(op.abs.wrapping_add(i)).unwrap_or(Word::ZERO);
                        dev.output.push(w);
                    }
                }
                Direction::Input => {
                    for i in 0..op.count {
                        let w = dev.input.pop_front().unwrap_or(Word::ZERO);
                        let _ = phys.write(op.abs.wrapping_add(i), w);
                    }
                }
            }
            if self.lose_next {
                // The data moved; only the interrupt vanishes. Arm the
                // watchdog and keep looking — another matured channel
                // may still deliver normally this cycle.
                self.lose_next = false;
                self.watchdogs[idx] = Some(op.done_at + WATCHDOG_MARGIN);
                continue;
            }
            return Some(idx as u8);
        }
    }

    /// Serializes the complete I/O state — device queues and in-flight
    /// channel programs — as flat words, for machine-image capture.
    pub fn export_words(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (dev, op) in self.devices.iter().zip(self.inflight.iter()) {
            out.push(dev.output.len() as u64);
            out.extend(dev.output.iter().map(|w| w.raw()));
            out.push(dev.input.len() as u64);
            out.extend(dev.input.iter().map(|w| w.raw()));
            match op {
                None => out.push(0),
                Some(o) => {
                    out.push(1);
                    out.push(u64::from(o.abs.value()));
                    out.push(u64::from(o.count));
                    out.push(match o.direction {
                        Direction::Output => 0,
                        Direction::Input => 1,
                    });
                    out.push(o.done_at);
                }
            }
        }
        out.push(u64::from(self.lose_next));
        for dog in &self.watchdogs {
            match dog {
                None => out.push(0),
                Some(t) => {
                    out.push(1);
                    out.push(*t);
                }
            }
        }
        out
    }

    /// Restores state captured by [`IoSystem::export_words`].
    pub fn restore_words(&mut self, words: &[u64]) -> Result<(), String> {
        let mut pos = 0usize;
        let mut next = |n: usize| -> Result<&[u64], String> {
            let slice = words
                .get(pos..pos + n)
                .ok_or_else(|| "truncated I/O image".to_string())?;
            pos += n;
            Ok(slice)
        };
        let mut devices = Vec::with_capacity(NUM_CHANNELS);
        let mut inflight = Vec::with_capacity(NUM_CHANNELS);
        let mut busy_count = 0u32;
        for _ in 0..NUM_CHANNELS {
            let out_len = next(1)?[0] as usize;
            let output = next(out_len)?.iter().map(|&w| Word::new(w)).collect();
            let in_len = next(1)?[0] as usize;
            let input = next(in_len)?.iter().map(|&w| Word::new(w)).collect();
            devices.push(TtyDevice { output, input });
            if next(1)?[0] == 0 {
                inflight.push(None);
            } else {
                let fields = next(4)?;
                inflight.push(Some(Operation {
                    abs: AbsAddr::from_bits(fields[0]),
                    count: fields[1] as u32,
                    direction: if fields[2] == 0 {
                        Direction::Output
                    } else {
                        Direction::Input
                    },
                    done_at: fields[3],
                }));
                busy_count += 1;
            }
        }
        let lose_next = next(1)?[0] != 0;
        let mut watchdogs = Vec::with_capacity(NUM_CHANNELS);
        for _ in 0..NUM_CHANNELS {
            if next(1)?[0] == 0 {
                watchdogs.push(None);
            } else {
                watchdogs.push(Some(next(1)?[0]));
            }
        }
        if pos != words.len() {
            return Err("trailing data in I/O image".to_string());
        }
        self.devices = devices;
        self.inflight = inflight;
        self.busy_count = busy_count;
        self.lose_next = lose_next;
        self.watchdogs = watchdogs;
        Ok(())
    }

    /// Builds the SIO operand pair for a transfer.
    pub fn channel_program(
        channel: u8,
        direction: Direction,
        abs: AbsAddr,
        count: u32,
    ) -> (Word, Word) {
        let w0 = Word::ZERO
            .with_field(0, 24, u64::from(abs.value()))
            .with_bit(24, direction == Direction::Input)
            .with_field(25, 3, u64::from(channel));
        let w1 = Word::ZERO.with_field(0, 18, u64::from(count));
        (w0, w1)
    }
}

impl Default for IoSystem {
    fn default() -> Self {
        IoSystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_program_round_trip_fields() {
        let (w0, w1) =
            IoSystem::channel_program(3, Direction::Input, AbsAddr::new(0o1234).unwrap(), 17);
        assert_eq!(w0.field(0, 24), 0o1234);
        assert!(w0.bit(24));
        assert_eq!(w0.field(25, 3), 3);
        assert_eq!(w1.field(0, 18), 17);
    }

    #[test]
    fn output_transfer_moves_memory_to_device() {
        let mut io = IoSystem::new();
        let mut phys = PhysMem::new(64);
        for i in 0..4 {
            phys.poke(
                AbsAddr::new(i).unwrap(),
                Word::new(u64::from(b'a' + i as u8)),
            )
            .unwrap();
        }
        let (w0, w1) = IoSystem::channel_program(1, Direction::Output, AbsAddr::new(0).unwrap(), 4);
        io.start(w0, w1, 0).unwrap();
        assert!(io.busy(1));
        // Not yet complete.
        assert_eq!(io.take_completion(0, &mut phys), None);
        let done = CHANNEL_LATENCY + 4 * CYCLES_PER_WORD;
        assert_eq!(io.take_completion(done, &mut phys), Some(1));
        assert!(!io.busy(1));
        assert_eq!(io.device(1).printed(), "abcd");
    }

    #[test]
    fn input_transfer_moves_device_to_memory() {
        let mut io = IoSystem::new();
        let mut phys = PhysMem::new(64);
        io.device_mut(2).type_line("hi");
        let (w0, w1) = IoSystem::channel_program(2, Direction::Input, AbsAddr::new(8).unwrap(), 2);
        io.start(w0, w1, 100).unwrap();
        let done = 100 + CHANNEL_LATENCY + 2 * CYCLES_PER_WORD;
        assert_eq!(io.take_completion(done, &mut phys), Some(2));
        assert_eq!(
            phys.peek(AbsAddr::new(8).unwrap()).unwrap().raw(),
            u64::from(b'h')
        );
        assert_eq!(
            phys.peek(AbsAddr::new(9).unwrap()).unwrap().raw(),
            u64::from(b'i')
        );
    }

    #[test]
    fn busy_channel_refuses_connect() {
        let mut io = IoSystem::new();
        let (w0, w1) = IoSystem::channel_program(0, Direction::Output, AbsAddr::new(0).unwrap(), 1);
        io.start(w0, w1, 0).unwrap();
        assert!(matches!(
            io.start(w0, w1, 0),
            Err(Fault::Derail { code: 0o77 })
        ));
    }

    #[test]
    fn export_restore_round_trips_io_state() {
        let mut io = IoSystem::new();
        io.device_mut(2).type_line("queued");
        io.device_mut(5).output.push(Word::new(0o123));
        let (w0, w1) = IoSystem::channel_program(3, Direction::Input, AbsAddr::new(64).unwrap(), 9);
        io.start(w0, w1, 1000).unwrap();

        let words = io.export_words();
        let mut fresh = IoSystem::new();
        fresh.restore_words(&words).unwrap();
        assert!(fresh.busy(3));
        assert!(!fresh.busy(0));
        assert_eq!(fresh.device(5).output, io.device(5).output);
        assert_eq!(fresh.device(2).input, io.device(2).input);
        // The restored in-flight operation completes identically.
        let mut p1 = PhysMem::new(128);
        let mut p2 = PhysMem::new(128);
        let done = 1000 + CHANNEL_LATENCY + 9 * CYCLES_PER_WORD;
        assert_eq!(
            io.take_completion(done, &mut p1),
            fresh.take_completion(done, &mut p2)
        );
        for i in 0..128 {
            let a = AbsAddr::new(i).unwrap();
            assert_eq!(p1.peek(a).unwrap(), p2.peek(a).unwrap());
        }
        assert!(fresh.restore_words(&words[..words.len() - 1]).is_err());
    }

    #[test]
    fn lost_completion_transfers_data_but_trips_watchdog() {
        let mut io = IoSystem::new();
        let mut phys = PhysMem::new(64);
        io.device_mut(2).type_line("x");
        let (w0, w1) = IoSystem::channel_program(2, Direction::Input, AbsAddr::new(0).unwrap(), 1);
        io.start(w0, w1, 0).unwrap();
        io.lose_next_completion();
        let done = CHANNEL_LATENCY + CYCLES_PER_WORD;
        // The completion interrupt is swallowed...
        assert_eq!(io.take_completion(done, &mut phys), None);
        assert!(!io.busy(2));
        // ...but the data still moved,
        assert_eq!(
            phys.peek(AbsAddr::new(0).unwrap()).unwrap().raw(),
            u64::from(b'x')
        );
        // and the watchdog stands in for the missing interrupt.
        assert_eq!(io.pending_watchdogs(), 1);
        assert_eq!(io.channel_done_at(2), Some(done + WATCHDOG_MARGIN));
        assert_eq!(io.next_done_at(), Some(done + WATCHDOG_MARGIN));
        assert_eq!(io.take_watchdog_expiry(done + WATCHDOG_MARGIN - 1), None);
        assert_eq!(io.take_watchdog_expiry(done + WATCHDOG_MARGIN), Some(2));
        assert_eq!(io.pending_watchdogs(), 0);
        assert_eq!(io.take_watchdog_expiry(u64::MAX), None);
    }

    #[test]
    fn watchdog_state_round_trips_through_export() {
        let mut io = IoSystem::new();
        let mut phys = PhysMem::new(64);
        let (w0, w1) = IoSystem::channel_program(1, Direction::Output, AbsAddr::new(0).unwrap(), 1);
        io.start(w0, w1, 0).unwrap();
        io.lose_next_completion();
        assert_eq!(io.take_completion(u64::MAX >> 1, &mut phys), None);
        io.lose_next_completion(); // still armed, nothing in flight

        let words = io.export_words();
        let mut fresh = IoSystem::new();
        fresh.restore_words(&words).unwrap();
        assert!(fresh.completion_loss_armed());
        assert_eq!(fresh.pending_watchdogs(), 1);
        assert_eq!(fresh.channel_done_at(1), io.channel_done_at(1));
    }

    #[test]
    fn input_underrun_pads_with_zeros() {
        let mut io = IoSystem::new();
        let mut phys = PhysMem::new(16);
        phys.poke(AbsAddr::new(0).unwrap(), Word::new(0o777))
            .unwrap();
        let (w0, w1) = IoSystem::channel_program(0, Direction::Input, AbsAddr::new(0).unwrap(), 1);
        io.start(w0, w1, 0).unwrap();
        let done = CHANNEL_LATENCY + CYCLES_PER_WORD;
        io.take_completion(done, &mut phys).unwrap();
        assert_eq!(phys.peek(AbsAddr::new(0).unwrap()).unwrap(), Word::ZERO);
    }
}
