//! Machine-side execution of CALL and RETURN (Figs. 8 and 9).
//!
//! The pure decisions live in `ring_core::callret`; this module applies
//! them: descriptor retrieval, stack-base generation in `PR0`, the
//! `IPR` reload, and — on upward returns — raising every pointer
//! register's ring number to the new ring of execution.

use ring_core::access::{AccessMode, Fault};
use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::callret::{call_stack_segno, check_call, check_return};
use ring_core::registers::{PtrReg, Tpr};
use ring_metrics::{Crossing, EventSink};

use crate::machine::Machine;
use crate::trace::TraceEvent;

impl Machine {
    /// Performs a CALL whose effective address (and effective ring) is
    /// `tpr`; `iseg` is the segment the CALL instruction came from (for
    /// the same-segment gate exemption).
    pub(crate) fn exec_call(&mut self, tpr: Tpr, iseg: SegNo) -> Result<(), Fault> {
        let sdw = self.sdw_for(tpr.addr, AccessMode::Execute)?;
        let same_segment = tpr.addr.segno == iseg;
        let decision = check_call(&sdw, tpr.addr, tpr.ring, self.ipr.ring, same_segment)?;

        let ring_changed = decision.new_ring != self.ipr.ring;
        let sp = self.prs[self.config.sp_pr as usize];
        let stack_segno = call_stack_segno(
            self.config.stack_rule,
            &self.dbr,
            sp.addr.segno,
            ring_changed,
            decision.new_ring,
        );
        // "CALL generates in PR0 a pointer to word 0 of the stack
        // segment for the new ring of execution."
        self.prs[0] = PtrReg::new(decision.new_ring, SegAddr::new(stack_segno, WordNo::ZERO));

        self.trace.push(|| TraceEvent::Call {
            from: self.ipr,
            to: tpr.addr,
            new_ring: decision.new_ring,
        });
        if decision.downward {
            self.stats.calls_downward += 1;
        } else {
            self.stats.calls_same_ring += 1;
        }
        let kind = if decision.downward {
            Crossing::CallDown
        } else {
            Crossing::CallSameRing
        };
        self.metrics
            .crossing(kind, self.ipr.ring, decision.new_ring);
        self.spans.open(
            ring_trace::SpanKind::Call,
            ring_trace::SpanKey {
                ring: decision.new_ring.number(),
                segno: tpr.addr.segno.value(),
                entry: tpr.addr.wordno.value(),
            },
            self.ipr.ring.number(),
            self.cycles,
        );

        self.ipr.ring = decision.new_ring;
        self.ipr.addr = tpr.addr;
        Ok(())
    }

    /// Performs a RETURN whose effective address is `tpr`.
    pub(crate) fn exec_return(&mut self, tpr: Tpr) -> Result<(), Fault> {
        let sdw = self.sdw_for(tpr.addr, AccessMode::Execute)?;
        let decision = check_return(&sdw, tpr.addr, tpr.ring, self.ipr.ring)?;

        self.trace.push(|| TraceEvent::Return {
            from: self.ipr,
            to: tpr.addr,
            new_ring: decision.new_ring,
        });
        if decision.upward {
            // "The ring number fields in all pointer registers are
            // replaced with the larger of their current values and the
            // new ring of execution."
            for pr in self.prs.iter_mut() {
                *pr = pr.with_ring_floor(decision.new_ring);
            }
            self.stats.returns_upward += 1;
        } else {
            self.stats.returns_same_ring += 1;
        }
        let kind = if decision.upward {
            Crossing::ReturnUp
        } else {
            Crossing::ReturnSameRing
        };
        self.metrics
            .crossing(kind, self.ipr.ring, decision.new_ring);
        self.spans.close(decision.new_ring.number(), self.cycles);

        self.ipr.ring = decision.new_ring;
        self.ipr.addr = tpr.addr;
        Ok(())
    }

    /// Performs a RETURN through pointer `via` — the path a native
    /// procedure takes to return to its caller. Equivalent to executing
    /// `RETURN via|0` (no indirection): the effective ring is
    /// `max(IPR.RING, via.RING)`.
    pub(crate) fn exec_return_via(&mut self, via: PtrReg) -> Result<(), Fault> {
        let tpr = Tpr {
            ring: self.ipr.ring.least_privileged(via.ring),
            addr: via.addr,
        };
        self.exec_return(tpr)
    }
}
