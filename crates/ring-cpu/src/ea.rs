//! Effective-address formation — Fig. 5 of the paper.
//!
//! Produces the TPR contents (effective two-part address plus effective
//! ring) for an instruction's operand. The effective ring starts at the
//! current ring of execution, is raised by the ring number of the base
//! pointer register if one is used, and is raised again at every
//! indirect word by both the indirect word's own ring number and the top
//! of the write bracket of the segment containing it. The capability to
//! *read* each indirect word is validated before it is retrieved, at the
//! effective ring as of that moment.

use ring_core::access::{AccessMode, Fault, Violation};
use ring_core::addr::{SegAddr, SegNo, WordNo, MAX_WORDNO};
use ring_core::effective;
use ring_core::registers::{IndWord, Tpr};
use ring_core::validate;
use ring_core::word::Word;
use ring_metrics::EventSink;

use crate::isa::{AddrMode, Instr};
use crate::machine::Machine;

/// The result of effective-address formation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EffAddr {
    /// The TPR at the end of the calculation.
    pub tpr: Tpr,
    /// For immediate-mode instructions, the literal operand; the TPR
    /// address is not meaningful for a memory reference in that case.
    pub immediate: Option<Word>,
}

impl Machine {
    /// Forms the effective address for `instr`, whose instruction word
    /// came from segment `iseg`.
    pub(crate) fn form_ea(&mut self, instr: &Instr, iseg: SegNo) -> Result<EffAddr, Fault> {
        let mut offset = instr.offset;
        match instr.mode {
            AddrMode::Immediate => {
                // The offset is the operand. The TPR still carries the
                // literal in its word-number field (used by the
                // address-only instructions) and the current ring.
                let tpr = Tpr {
                    ring: self.ipr.ring,
                    addr: SegAddr::new(iseg, WordNo::from_bits(u64::from(offset))),
                };
                return Ok(EffAddr {
                    tpr,
                    immediate: Some(Word::new(u64::from(offset))),
                });
            }
            AddrMode::Indexed => {
                offset = (offset + self.x[instr.xreg as usize]) & MAX_WORDNO;
            }
            AddrMode::None => {}
        }

        // Base: PR-relative or instruction-segment-relative.
        let mut tpr = match instr.pr {
            Some(n) => {
                let pr = self.prs[n as usize];
                Tpr {
                    ring: effective::fold_pr(self.ipr.ring, pr.ring, self.config.ea_rules),
                    addr: SegAddr::new(pr.addr.segno, pr.addr.wordno.wrapping_add(offset)),
                }
            }
            None => Tpr {
                ring: self.ipr.ring,
                addr: SegAddr::new(iseg, WordNo::from_bits(u64::from(offset))),
            },
        };

        // Indirection chain.
        let mut indirect = instr.indirect;
        let mut depth = 0u32;
        while indirect {
            depth += 1;
            if depth > self.config.indirect_limit {
                return Err(Fault::IndirectLimit);
            }
            let sdw = self.sdw_for(tpr.addr, AccessMode::Read)?;
            validate::check_read(&sdw, tpr.addr, tpr.ring)?;
            let second = SegAddr::new(tpr.addr.segno, tpr.addr.wordno.wrapping_add(1));
            if !sdw.in_bounds(second.wordno) {
                return Err(Fault::AccessViolation {
                    mode: AccessMode::Read,
                    violation: Violation::OutOfBounds,
                    addr: second,
                    ring: tpr.ring,
                });
            }
            let abs0 = self.tr.resolve(&mut self.phys, &sdw, tpr.addr, false)?;
            let abs1 = self.tr.resolve(&mut self.phys, &sdw, second, false)?;
            let w0 = self.phys.read(abs0)?;
            let w1 = self.phys.read(abs1)?;
            if self.config.fastpath {
                let slow_fetch = self.natives.is_native(tpr.addr.segno);
                self.tr
                    .fast_install(&self.phys, tpr.addr, tpr.ring, &sdw, slow_fetch);
            }
            let iw = IndWord::unpack(w0, w1);
            let ring = effective::fold_indirect(tpr.ring, iw.ring, &sdw, self.config.ea_rules);
            tpr = Tpr {
                ring,
                addr: iw.addr,
            };
            indirect = iw.indirect;
        }

        // Fig. 5 telemetry: chain depth, and whether folding raised the
        // effective ring above the ring of execution (a TPR
        // ring-maximisation event).
        self.metrics
            .ea_formed(depth, tpr.ring.number() > self.ipr.ring.number());

        Ok(EffAddr {
            tpr,
            immediate: None,
        })
    }
}

impl Machine {
    /// Forms the effective address of `instr` as if it had been fetched
    /// from segment `iseg`, returning the final TPR (effective address
    /// plus effective ring). Public wrapper for experiments and tools;
    /// the instruction cycle uses the internal equivalent.
    pub fn effective_address(&mut self, instr: &Instr, iseg: SegNo) -> Result<Tpr, Fault> {
        self.form_ea(instr, iseg).map(|ea| ea.tpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;
    use crate::testkit::{addr, World};
    use ring_core::registers::PtrReg;
    use ring_core::ring::Ring;
    use ring_core::sdw::SdwBuilder;

    /// EA with no base, no indirection: segment of the instruction,
    /// ring of execution.
    #[test]
    fn plain_ea_uses_instruction_segment_and_current_ring() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        w.start(Ring::R4, code, 0);
        let m = &mut w.machine;
        let instr = Instr::direct(Opcode::Lda, 7);
        let ea = m.form_ea(&instr, SegNo::new(10).unwrap()).unwrap();
        assert_eq!(ea.tpr.ring, Ring::R4);
        assert_eq!(ea.tpr.addr, addr(10, 7));
        assert!(ea.immediate.is_none());
    }

    /// PR-relative EA folds the PR ring (Fig. 5 step 2).
    #[test]
    fn pr_relative_ea_folds_pr_ring() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R2, Ring::R2, Ring::R2).bound_words(64),
        );
        let data = w.add_segment(11, SdwBuilder::data(Ring::R7, Ring::R7).bound_words(64));
        w.start(Ring::R2, code, 0);
        let m = &mut w.machine;
        m.prs[3] = PtrReg::new(Ring::R6, addr(data.value(), 4));
        let instr = Instr::pr_relative(Opcode::Lda, 3, 2);
        let ea = m.form_ea(&instr, code).unwrap();
        assert_eq!(ea.tpr.ring, Ring::R6, "PR ring dominates current ring 2");
        assert_eq!(ea.tpr.addr, addr(11, 6));
    }

    /// Indexed mode adds the index register, wrapping at 18 bits.
    #[test]
    fn indexed_ea_adds_xreg() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        w.start(Ring::R4, code, 0);
        let m = &mut w.machine;
        m.set_xreg(2, 5);
        let instr = Instr::direct(Opcode::Lda, 10).with_index(2);
        let ea = m.form_ea(&instr, code).unwrap();
        assert_eq!(ea.tpr.addr.wordno.value(), 15);
    }

    /// Immediate mode produces a literal and no memory reference.
    #[test]
    fn immediate_ea_is_literal() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        w.start(Ring::R4, code, 0);
        let m = &mut w.machine;
        let refs = m.phys().ref_count();
        let instr = Instr::direct(Opcode::Lda, 42).immediate();
        let ea = m.form_ea(&instr, code).unwrap();
        assert_eq!(ea.immediate, Some(Word::new(42)));
        assert_eq!(m.phys().ref_count(), refs, "no memory traffic");
    }

    /// One level of indirection folds the indirect word's ring and the
    /// containing segment's write-bracket top (Fig. 5 step 3).
    #[test]
    fn indirection_folds_ind_ring_and_write_bracket() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1).bound_words(64),
        );
        // Indirect word lives in a segment writable up to ring 5.
        let table = w.add_segment(11, SdwBuilder::data(Ring::R5, Ring::R5).bound_words(64));
        let target = w.add_segment(12, SdwBuilder::data(Ring::R7, Ring::R7).bound_words(64));
        w.start(Ring::R1, code, 0);
        w.write_ind_word(
            table,
            8,
            IndWord::new(Ring::R2, addr(target.value(), 3), false),
        );
        let m = &mut w.machine;
        m.prs[1] = PtrReg::new(Ring::R1, addr(table.value(), 8));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        let ea = m.form_ea(&instr, code).unwrap();
        // max(current=1, pr=1, ind=2, write-bracket top=5) = 5.
        assert_eq!(ea.tpr.ring, Ring::R5);
        assert_eq!(ea.tpr.addr, addr(12, 3));
    }

    /// Chained indirection keeps folding; the running max never drops.
    #[test]
    fn chained_indirection_is_monotone() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(64),
        );
        let t1 = w.add_segment(11, SdwBuilder::data(Ring::R3, Ring::R3).bound_words(64));
        // Readable up to ring 5 (so the effective ring of 3 may read
        // it), but writable only through ring 1.
        let t2 = w.add_segment(12, SdwBuilder::data(Ring::R1, Ring::R5).bound_words(64));
        let target = w.add_segment(13, SdwBuilder::data(Ring::R7, Ring::R7).bound_words(64));
        w.start(Ring::R0, code, 0);
        w.write_ind_word(t1, 0, IndWord::new(Ring::R0, addr(t2.value(), 4), true));
        w.write_ind_word(
            t2,
            4,
            IndWord::new(Ring::R0, addr(target.value(), 9), false),
        );
        let m = &mut w.machine;
        m.prs[1] = PtrReg::new(Ring::R0, addr(t1.value(), 0));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        let ea = m.form_ea(&instr, code).unwrap();
        // Chain passes through a ring-3-writable then ring-1-writable
        // segment: the max is 3 even though the last hop contributes 1.
        assert_eq!(ea.tpr.ring, Ring::R3);
        assert_eq!(ea.tpr.addr, addr(13, 9));
    }

    /// The read of each indirect word is validated *before* retrieval.
    #[test]
    fn indirect_word_read_is_validated() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        // Table readable only up to ring 2; we execute in ring 4.
        let table = w.add_segment(11, SdwBuilder::data(Ring::R2, Ring::R2).bound_words(64));
        w.start(Ring::R4, code, 0);
        let m = &mut w.machine;
        m.prs[1] = PtrReg::new(Ring::R4, addr(table.value(), 0));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        match m.form_ea(&instr, code) {
            Err(Fault::AccessViolation {
                mode: AccessMode::Read,
                ..
            }) => {}
            other => panic!("expected read violation, got {other:?}"),
        }
    }

    /// An indirection loop hits the chain limit instead of hanging.
    #[test]
    fn indirection_loop_faults_at_limit() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        let table = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(64));
        w.start(Ring::R4, code, 0);
        // Indirect word pointing at itself, indirect flag on.
        w.write_ind_word(
            table,
            0,
            IndWord::new(Ring::R4, addr(table.value(), 0), true),
        );
        let m = &mut w.machine;
        m.prs[1] = PtrReg::new(Ring::R4, addr(table.value(), 0));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        assert!(matches!(m.form_ea(&instr, code), Err(Fault::IndirectLimit)));
    }

    /// An indirect pair straddling the segment bound faults.
    #[test]
    fn indirect_pair_respects_bounds() {
        let mut w = World::new();
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
        );
        let table = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
        w.start(Ring::R4, code, 0);
        let m = &mut w.machine;
        // Word 15 is the last in-bounds word; the pair needs 15 and 16.
        m.prs[1] = PtrReg::new(Ring::R4, addr(table.value(), 15));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        assert!(matches!(
            m.form_ea(&instr, code),
            Err(Fault::AccessViolation {
                violation: Violation::OutOfBounds,
                ..
            })
        ));
    }

    /// Ablation: with the weakened rules the tampered ring is ignored.
    #[test]
    fn ablated_rules_ignore_indirect_provenance() {
        let mut w = World::with_config(crate::machine::MachineConfig {
            ea_rules: ring_core::effective::EffectiveRingRules::NO_IND_TRACKING,
            ..Default::default()
        });
        let code = w.add_segment(
            10,
            SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1).bound_words(64),
        );
        let table = w.add_segment(11, SdwBuilder::data(Ring::R5, Ring::R5).bound_words(64));
        let target = w.add_segment(12, SdwBuilder::data(Ring::R7, Ring::R7).bound_words(64));
        w.start(Ring::R1, code, 0);
        w.write_ind_word(
            table,
            0,
            IndWord::new(Ring::R6, addr(target.value(), 0), false),
        );
        let m = &mut w.machine;
        m.prs[1] = PtrReg::new(Ring::R1, addr(table.value(), 0));
        let instr = Instr::pr_relative(Opcode::Lda, 1, 0).with_indirect();
        let ea = m.form_ea(&instr, code).unwrap();
        assert_eq!(
            ea.tpr.ring,
            Ring::R1,
            "weakened design keeps the privileged ring — the hole T6 measures"
        );
    }
}
