//! Native procedure segments.
//!
//! The Multics supervisor was written in a high-level language and
//! compiled to machine code; simulating it instruction-by-instruction
//! would add nothing to the reproduction of the *protection* hardware.
//! Instead, a segment may be registered as **native**: when instruction
//! fetch lands in it — and only after the ordinary Fig. 4/Fig. 8
//! validation has allowed the transfer, so gates, brackets and the
//! CALL/RETURN ring switching all apply unchanged — the simulator
//! invokes a Rust handler with the entry word number.
//!
//! Handlers are required (by convention, enforced in review and by the
//! argument-validation tests) to make every reference on behalf of
//! their caller through the machine's validated accessors
//! ([`crate::machine::Machine::read_validated`] and friends), which
//! apply exactly the per-reference hardware checks compiled code would
//! incur; and to account for their work with
//! [`crate::machine::Machine::charge`].

use std::collections::HashMap;
use std::rc::Rc;

use ring_core::access::Fault;
use ring_core::addr::{SegNo, WordNo};
use ring_core::registers::PtrReg;

use crate::machine::Machine;

/// What a native procedure asks the processor to do when it finishes.
#[derive(Clone, Copy, Debug)]
pub enum NativeAction {
    /// Perform a hardware RETURN through `via` (normally the return
    /// pointer the caller left in PR2): effective ring
    /// `max(IPR.RING, via.RING)`, with all Fig. 9 consequences.
    Return {
        /// The return pointer.
        via: PtrReg,
    },
    /// Restore the trap-time processor state and resume the disrupted
    /// instruction (what a RETT instruction does); used by trap
    /// handlers.
    Resume,
    /// Stop the processor.
    Halt,
}

/// Signature of a native procedure body.
pub type NativeFn = dyn Fn(&mut Machine, WordNo) -> Result<NativeAction, Fault>;

/// Registry mapping segment numbers to native procedure bodies.
pub struct NativeRegistry {
    handlers: HashMap<SegNo, Rc<NativeFn>>,
}

impl NativeRegistry {
    /// An empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry {
            handlers: HashMap::new(),
        }
    }

    /// Registers `handler` as the body of segment `segno`.
    pub fn register(&mut self, segno: SegNo, handler: Rc<NativeFn>) {
        self.handlers.insert(segno, handler);
    }

    /// Looks up the handler for `segno`.
    pub fn handler(&self, segno: SegNo) -> Option<Rc<NativeFn>> {
        self.handlers.get(&segno).cloned()
    }

    /// True if `segno` is a native segment.
    pub fn is_native(&self, segno: SegNo) -> bool {
        self.handlers.contains_key(&segno)
    }
}

impl Default for NativeRegistry {
    fn default() -> Self {
        NativeRegistry::new()
    }
}

impl Machine {
    /// Registers a native procedure body for segment `segno`. The
    /// segment must still be given an ordinary SDW (brackets, gates,
    /// flags): all validation happens against that SDW before the body
    /// is ever invoked.
    pub fn register_native<F>(&mut self, segno: SegNo, handler: F)
    where
        F: Fn(&mut Machine, WordNo) -> Result<NativeAction, Fault> + 'static,
    {
        self.natives.register(segno, Rc::new(handler));
        // Fetches from this segment must now reach the slow path's
        // intercept; drop any fast-path translations that predate the
        // registration (new installs will carry the slow-fetch mark).
        self.tr.invalidate_tlb_segment(segno);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut r = NativeRegistry::new();
        let seg = SegNo::new(7).unwrap();
        assert!(!r.is_native(seg));
        r.register(seg, Rc::new(|_, _| Ok(NativeAction::Halt)));
        assert!(r.is_native(seg));
        assert!(r.handler(seg).is_some());
        assert!(r.handler(SegNo::new(8).unwrap()).is_none());
    }
}
