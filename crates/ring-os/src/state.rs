//! Shared operating-system state.
//!
//! Native supervisor procedures are closures registered with the
//! machine; they share this state through `Rc<RefCell<OsState>>`.

use std::collections::HashMap;

use ring_core::registers::Ipr;
use ring_core::ring::Ring;
use ring_sched::Scheduler;
use ring_segmem::{BackingStore, FramePool};

use crate::fs::FileSystem;
use crate::process::ProcessState;

/// A record written by the audit protected subsystem (rings 2–3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// User whose process made the audited reference.
    pub user: String,
    /// Ring the caller was executing in.
    pub caller_ring: Ring,
    /// Description of the audited operation.
    pub operation: String,
}

/// Counters kept by the supervisor.
#[derive(Clone, Copy, Debug, Default)]
pub struct SupervisorStats {
    /// Segment faults serviced (demand segment loading).
    pub segment_faults: u64,
    /// Page faults serviced (demand paging).
    pub page_faults: u64,
    /// Software-mediated upward calls.
    pub upward_calls: u64,
    /// Software-mediated downward returns.
    pub downward_returns: u64,
    /// Downward returns refused (no matching return gate).
    pub forged_returns_refused: u64,
    /// Scheduler switches (timer runouts serviced).
    pub schedules: u64,
    /// I/O completions serviced.
    pub io_completions: u64,
    /// Gate invocations, by segment: (hcs, ring1).
    pub gate_calls_hcs: u64,
    /// Ring-1 gate invocations.
    pub gate_calls_ring1: u64,
    /// Processes aborted on unhandled faults.
    pub aborts: u64,
    /// Requests refused by ACL lookup (no entry, or no modes granted).
    pub acl_denials: u64,
}

impl SupervisorStats {
    /// Flattens the counters into namespaced `os.*` pairs for a metrics
    /// snapshot's `extra` section.
    pub fn export_pairs(&self) -> Vec<(String, u64)> {
        vec![
            ("os.segment_faults".into(), self.segment_faults),
            ("os.page_faults".into(), self.page_faults),
            ("os.upward_calls".into(), self.upward_calls),
            ("os.downward_returns".into(), self.downward_returns),
            (
                "os.forged_returns_refused".into(),
                self.forged_returns_refused,
            ),
            ("os.schedules".into(), self.schedules),
            ("os.io_completions".into(), self.io_completions),
            ("os.gate_calls_hcs".into(), self.gate_calls_hcs),
            ("os.gate_calls_ring1".into(), self.gate_calls_ring1),
            ("os.aborts".into(), self.aborts),
            ("os.acl_denials".into(), self.acl_denials),
        ]
    }
}

/// Counters kept by the supervisor's fault-recovery paths (parity
/// recovery, drum retry, I/O watchdog service). Only meaningful — and
/// only exported — when the chaos engine is armed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosRecoveryStats {
    /// Faults fully recovered (the damaged state was repaired or
    /// rebuilt and the system continued).
    pub recovered: u64,
    /// Processes killed to confine damage that could not be repaired.
    pub killed: u64,
    /// Pages or segment words re-fetched from their home image after a
    /// parity error destroyed the in-core copy.
    pub refetched: u64,
    /// Descriptor or page-table words the salvager rewrote as missing
    /// (forcing a clean re-fault instead of trusting damaged state).
    pub salvaged: u64,
    /// Drum transfers retried after an injected read or write error.
    pub drum_retries: u64,
    /// I/O watchdog expiries serviced (lost completion converted into a
    /// wake-up of the stranded waiter).
    pub io_timeouts: u64,
    /// Post-recovery invariant checks that failed (damage escaped the
    /// recovery path; should stay zero).
    pub invariant_failures: u64,
}

impl ChaosRecoveryStats {
    /// Flattens the counters into namespaced `chaos.*` pairs for a
    /// metrics snapshot's `extra` section (alongside the engine's own
    /// injection ledger).
    pub fn export_pairs(&self) -> Vec<(String, u64)> {
        vec![
            ("chaos.recovered".into(), self.recovered),
            ("chaos.killed".into(), self.killed),
            ("chaos.refetched".into(), self.refetched),
            ("chaos.salvaged".into(), self.salvaged),
            ("chaos.drum_retries".into(), self.drum_retries),
            ("chaos.io_timeouts".into(), self.io_timeouts),
            ("chaos.invariant_failures".into(), self.invariant_failures),
        ]
    }
}

/// The supervisor's in-memory state.
///
/// `Clone` exists for checkpointing: the fleet supervisor snapshots
/// the whole supervisor state alongside a machine image so a failed
/// machine can be restarted from the checkpoint
/// ([`crate::boot::System::checkpoint`]).
#[derive(Clone)]
pub struct OsState {
    /// Registered user names.
    pub users: Vec<String>,
    /// On-line storage.
    pub fs: FileSystem,
    /// All processes, indexed by process id.
    pub processes: Vec<ProcessState>,
    /// Currently executing process.
    pub current: usize,
    /// The audit subsystem's log.
    pub audit_log: Vec<AuditRecord>,
    /// Per-user account balances (ring-1 accounting layer).
    pub accounts: HashMap<String, i64>,
    /// Supervisor counters.
    pub stats: SupervisorStats,
    /// Scheduler quantum in cycles (timer reload value).
    pub quantum: u64,
    /// Trace of scheduler decisions (process ids), for tests.
    pub schedule_trace: Vec<usize>,
    /// Run and blocked queues plus scheduling counters.
    pub sched: Scheduler,
    /// Physical-frame budget for demand paging, when one is configured;
    /// `None` means frames are never reclaimed (the legacy behaviour).
    pub frames: Option<FramePool>,
    /// The simulated drum holding evicted pages.
    pub backing: BackingStore,
    /// Simulated cycles a drum transfer takes; a major page fault
    /// blocks the faulting process for this long.
    pub page_in_latency: u64,
    /// Fault-recovery counters (chaos runs).
    pub chaos: ChaosRecoveryStats,
    /// Consecutive failed drum reads per `(pid, segno, page)`, for the
    /// bounded-retry-with-backoff policy. An entry disappears when the
    /// read finally succeeds or the process is killed.
    pub drum_attempts: HashMap<(usize, u32, u32), u32>,
}

impl OsState {
    /// Fresh state with no users or processes.
    pub fn new() -> OsState {
        OsState {
            users: Vec::new(),
            fs: FileSystem::new(),
            processes: Vec::new(),
            current: 0,
            audit_log: Vec::new(),
            accounts: HashMap::new(),
            stats: SupervisorStats::default(),
            quantum: 5_000,
            schedule_trace: Vec::new(),
            sched: Scheduler::new(),
            frames: None,
            backing: BackingStore::new(),
            page_in_latency: 1_000,
            chaos: ChaosRecoveryStats::default(),
            drum_attempts: HashMap::new(),
        }
    }

    /// Registers a user name (idempotent) and opens an account.
    pub fn add_user(&mut self, name: &str) {
        if !self.users.iter().any(|u| u == name) {
            self.users.push(name.to_string());
            self.accounts.insert(name.to_string(), 0);
        }
    }

    /// True if `name` is a registered user.
    pub fn has_user(&self, name: &str) -> bool {
        self.users.iter().any(|u| u == name)
    }

    /// The currently executing process.
    ///
    /// # Panics
    ///
    /// Panics if no process exists yet.
    pub fn current_process(&self) -> &ProcessState {
        &self.processes[self.current]
    }

    /// Mutable access to the currently executing process.
    ///
    /// # Panics
    ///
    /// Panics if no process exists yet.
    pub fn current_process_mut(&mut self) -> &mut ProcessState {
        let i = self.current;
        &mut self.processes[i]
    }

    /// Pushes a dynamic return gate for the current process (software
    /// upward-call bookkeeping).
    pub fn push_return_gate(&mut self, caller_ring: Ring, continuation: Ipr) {
        self.current_process_mut()
            .return_gates
            .push((caller_ring, continuation));
    }

    /// Pops the top return gate for the current process.
    pub fn pop_return_gate(&mut self) -> Option<(Ring, Ipr)> {
        self.current_process_mut().return_gates.pop()
    }

    /// The next runnable (non-aborted) process after `from`, if any.
    pub fn next_runnable(&self, from: usize) -> Option<usize> {
        let n = self.processes.len();
        (1..=n)
            .map(|k| (from + k) % n)
            .find(|&i| self.processes[i].aborted.is_none())
    }
}

impl Default for OsState {
    fn default() -> Self {
        OsState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_are_deduplicated_with_accounts() {
        let mut s = OsState::new();
        s.add_user("alice");
        s.add_user("alice");
        assert_eq!(s.users.len(), 1);
        assert!(s.has_user("alice"));
        assert!(!s.has_user("bob"));
        assert_eq!(s.accounts["alice"], 0);
    }

    #[test]
    fn next_runnable_skips_aborted() {
        let mut s = OsState::new();
        for i in 0..3 {
            s.processes
                .push(ProcessState::new_for_test(&format!("u{i}")));
        }
        assert_eq!(s.next_runnable(0), Some(1));
        s.processes[1].aborted = Some("boom".into());
        assert_eq!(s.next_runnable(0), Some(2));
        assert_eq!(s.next_runnable(2), Some(0));
        s.processes[0].aborted = Some("x".into());
        s.processes[2].aborted = Some("y".into());
        assert_eq!(s.next_runnable(0), None);
    }
}
