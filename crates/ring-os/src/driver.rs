//! Driving user programs: installing assembled code and data segments
//! and running them, plus generation of common calling sequences.
//!
//! User programs are real machine code assembled by `ring-asm` and
//! executed by the simulated processor through every hardware check;
//! the helpers here only *stage* them (the role a loader plays).

use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::registers::{Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::RunExit;

use crate::boot::System;
use crate::conventions::{frame, segs, PR_AP, PR_RP, PR_SB, PR_SP};

/// Where a staged segment ended up.
#[derive(Clone, Debug)]
pub struct Staged {
    /// Segment number in the process's virtual memory.
    pub segno: u32,
    /// Symbol table of the assembled source (empty for data segments).
    pub symbols: std::collections::HashMap<String, u32>,
}

impl System {
    /// Assembles `source` and installs it as a procedure segment for
    /// process `pid` with execute bracket `[ring, ring]`, gate
    /// extension to `r3`, and `gates` gate words.
    ///
    /// # Panics
    ///
    /// Panics on assembly errors or exhausted memory — test and bench
    /// programs are expected to be valid.
    pub fn install_code(
        &mut self,
        pid: usize,
        ring: Ring,
        r3: Ring,
        gates: u32,
        source: &str,
    ) -> Staged {
        let out = ring_asm::assemble(source).expect("assembly");
        let words = out.len().max(1);
        let base = self.alloc.borrow_mut().alloc(words).expect("code storage");
        for (i, w) in out.words.iter().enumerate() {
            self.machine
                .phys_mut()
                .poke(base.wrapping_add(i as u32), *w)
                .expect("code poke");
        }
        let sdw = SdwBuilder::procedure(ring, ring, r3)
            .gates(gates)
            .addr(base)
            .bound_words(words)
            .build();
        let segno = self.state.borrow_mut().processes[pid]
            .alloc_segno()
            .expect("segment number");
        self.install_sdw(pid, segno, &sdw);
        Staged {
            segno,
            symbols: out.symbols,
        }
    }

    /// Installs a data segment for process `pid` with write bracket top
    /// `r1` and read bracket top `r2`, initialised to `data`, sized at
    /// least `min_words`.
    ///
    /// # Panics
    ///
    /// Panics on exhausted memory.
    pub fn install_data(
        &mut self,
        pid: usize,
        r1: Ring,
        r2: Ring,
        data: &[Word],
        min_words: u32,
    ) -> Staged {
        let words = (data.len() as u32).max(min_words).max(1);
        let base = self.alloc.borrow_mut().alloc(words).expect("data storage");
        for (i, w) in data.iter().enumerate() {
            self.machine
                .phys_mut()
                .poke(base.wrapping_add(i as u32), *w)
                .expect("data poke");
        }
        let sdw = SdwBuilder::data(r1, r2)
            .addr(base)
            .bound_words(words)
            .build();
        let segno = self.state.borrow_mut().processes[pid]
            .alloc_segno()
            .expect("segment number");
        self.install_sdw(pid, segno, &sdw);
        Staged {
            segno,
            symbols: Default::default(),
        }
    }

    /// Installs a *native* procedure segment for process `pid`: an SDW
    /// with execute bracket `[ring, ring]`, gate extension to `r3` and
    /// `gates` gate words, whose body is the Rust closure `handler`
    /// (entered only through the hardware CALL path). Used for
    /// user-ring library code in the benchmarks.
    ///
    /// # Panics
    ///
    /// Panics on exhausted memory.
    pub fn install_native<F>(
        &mut self,
        pid: usize,
        ring: Ring,
        r3: Ring,
        gates: u32,
        handler: F,
    ) -> u32
    where
        F: Fn(
                &mut ring_cpu::machine::Machine,
                ring_core::addr::WordNo,
            ) -> Result<ring_cpu::native::NativeAction, ring_core::access::Fault>
            + 'static,
    {
        let base = self
            .alloc
            .borrow_mut()
            .alloc(16)
            .expect("native segment storage");
        let sdw = SdwBuilder::procedure(ring, ring, r3)
            .gates(gates)
            .addr(base)
            .bound_words(16)
            .build();
        let segno = self.state.borrow_mut().processes[pid]
            .alloc_segno()
            .expect("segment number");
        self.install_sdw(pid, segno, &sdw);
        self.machine
            .register_native(SegNo::new(segno).expect("segno"), handler);
        segno
    }

    /// Points the processor at `(segno, entry)` in `ring` for process
    /// `pid`, with the standard register setup: `PR6` (SP) and `PR0`
    /// (SB) at the ring's stack frame base, `PR1`/`PR2` nulled to the
    /// code base.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn prepare(&mut self, pid: usize, segno: u32, entry: u32, ring: Ring) {
        self.machine.clear_halt();
        self.activate(pid);
        let code = SegAddr::new(
            SegNo::new(segno).expect("segno"),
            WordNo::new(entry).expect("entry"),
        );
        self.machine.set_ipr(Ipr::new(ring, code));
        let stack = segs::STACK_BASE + u32::from(ring.number());
        let sp = PtrReg::new(
            ring,
            SegAddr::from_parts(stack, frame::FIRST_FRAME).expect("stack"),
        );
        let sb = PtrReg::new(ring, SegAddr::from_parts(stack, 0).expect("stack"));
        self.machine.set_pr(PR_SP, sp);
        self.machine.set_pr(PR_SB, sb);
        self.machine.set_pr(PR_AP, PtrReg::new(ring, code));
        self.machine.set_pr(PR_RP, PtrReg::new(ring, code));
    }

    /// Prepares and runs process `pid` from `(segno, entry)` in `ring`
    /// for at most `budget` instructions.
    pub fn run_user(
        &mut self,
        pid: usize,
        segno: u32,
        entry: u32,
        ring: Ring,
        budget: u64,
    ) -> RunExit {
        self.prepare(pid, segno, entry, ring);
        self.machine.run(budget)
    }

    /// Stores `pid`'s current machine state as its schedulable saved
    /// state and puts it on the ready queue (so the round-robin
    /// scheduler can later resume it). Call after [`System::prepare`].
    pub fn park(&mut self, pid: usize) {
        let snap = ring_cpu::trap::SavedState {
            ipr: self.machine.ipr(),
            prs: core::array::from_fn(|i| self.machine.pr(i)),
            a: self.machine.a(),
            q: self.machine.q(),
            x: core::array::from_fn(|i| self.machine.xreg(i)),
            ind_zero: true,
            ind_neg: false,
        };
        let mut st = self.state.borrow_mut();
        st.processes[pid].saved = Some(snap);
        st.sched.make_ready(pid);
    }
}

/// Generates the assembly for a sequence of gate calls.
///
/// Each call in `calls` names a gate target `(segno, entry)` and a list
/// of argument addresses `(segno, wordno)`; the generated program sets
/// up the argument list (indirect-word pairs assembled into the code
/// segment), loads `PR1`/`PR2`/`PR3` with EAP, performs the CALL, and
/// finally exits with the derail convention. The caller ring is `ring`
/// (used in the assembled ITS ring fields; the hardware will fold it
/// with the executing ring anyway).
pub fn gen_call_sequence(ring: Ring, calls: &[(SegAddr, Vec<SegAddr>)]) -> String {
    let r = ring.number();
    let mut text = String::new();
    let mut data = String::new();
    for (i, (gate, args)) in calls.iter().enumerate() {
        text.push_str(&format!(
            "        eap pr1, args{i}\n        eap pr2, ret{i}\n        eap pr3, gate{i},*\n        call pr3|0\nret{i}:  nop\n"
        ));
        data.push_str(&format!(
            "gate{i}: its {r}, {}, {}\n",
            gate.segno.value(),
            gate.wordno.value()
        ));
        data.push_str(&format!("args{i}:\n"));
        for a in args {
            data.push_str(&format!(
                "        its {r}, {}, {}\n",
                a.segno.value(),
                a.wordno.value()
            ));
        }
        if args.is_empty() {
            data.push_str("        dw 0, 0\n");
        }
    }
    text.push_str(&format!("        drl 0o{:o}\n", crate::traps::EXIT_CODE));
    text.push_str(&data);
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventions::gate_addr;

    #[test]
    fn generated_sequence_assembles() {
        let seq = gen_call_sequence(
            Ring::R4,
            &[
                (
                    gate_addr(segs::HCS, 0),
                    vec![
                        SegAddr::from_parts(65, 0).unwrap(),
                        SegAddr::from_parts(65, 100).unwrap(),
                    ],
                ),
                (gate_addr(segs::RING1, 1), vec![]),
            ],
        );
        let out = ring_asm::assemble(&seq).expect("generated source assembles");
        assert!(out.symbol("gate0").is_some());
        assert!(out.symbol("args1").is_some());
        assert!(out.len() > 10);
    }
}
