//! On-line storage: a hierarchy of directories and segments.
//!
//! "On-line storage is organized as a collection of segments of
//! information." The hierarchy exists for the paper's file-search
//! example (experiment T3): resolving `a>b>c` takes one directory-search
//! step per component, and the question the paper raises is whether
//! those steps run as protected supervisor code (one gate crossing for
//! the whole search) or as an unprotected library calling a small
//! protected primitive per step.

use std::collections::BTreeMap;

use ring_core::addr::AbsAddr;
use ring_core::word::Word;

use crate::acl::Acl;

/// Identifier of a stored segment (index into the segment table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentId(pub u32);

/// Identifier of a directory (index into the directory table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DirId(pub u32);

/// A directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A sub-directory.
    Dir(DirId),
    /// A stored segment.
    Segment(SegmentId),
}

/// Where a stored segment's contents live once brought into memory.
///
/// "A single segment may be part of several virtual memories at the
/// same time, allowing straightforward sharing of segments among
/// users": the first demand load places the segment (or its page
/// table); every later initiation maps the *same* storage, so writes
/// by one process are visible to every other process sharing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadedImage {
    /// Absolute address of the segment base (unpaged) or page table.
    pub addr: AbsAddr,
    /// Whether the image is unpaged.
    pub unpaged: bool,
}

/// A stored segment: its contents and access control list.
#[derive(Clone, Debug)]
pub struct StoredSegment {
    /// Full path, for diagnostics.
    pub path: String,
    /// The access control list.
    pub acl: Acl,
    /// Initial contents (copied into memory at the first demand load;
    /// write-back on termination is out of scope for the reproduction).
    pub data: Vec<Word>,
    /// The shared in-memory image, set by the first demand load.
    pub image: Option<LoadedImage>,
}

#[derive(Clone, Debug, Default)]
struct Dir {
    // Ordered so that the modelled linear scan (and hence the charged
    // search cost) is deterministic run to run.
    entries: BTreeMap<String, Entry>,
}

/// The path component separator (Multics used `>`).
pub const SEP: char = '>';

/// The storage hierarchy.
#[derive(Clone, Debug)]
pub struct FileSystem {
    dirs: Vec<Dir>,
    segments: Vec<StoredSegment>,
    /// Directory-entry comparisons performed by searches (the cost the
    /// T3 experiment accounts).
    pub search_steps: u64,
}

/// Errors from storage operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// A path component did not name an entry.
    NotFound(String),
    /// A non-final path component named a segment.
    NotADirectory(String),
    /// The final component named a directory where a segment was
    /// expected (or vice versa).
    WrongKind(String),
    /// An entry with that name already exists.
    Exists(String),
    /// The path was empty or malformed.
    BadPath(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::WrongKind(p) => write!(f, "wrong entry kind: {p}"),
            FsError::Exists(p) => write!(f, "already exists: {p}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

impl FileSystem {
    /// A file system with an empty root.
    pub fn new() -> FileSystem {
        FileSystem {
            dirs: vec![Dir::default()],
            segments: Vec::new(),
            search_steps: 0,
        }
    }

    /// The root directory.
    pub fn root(&self) -> DirId {
        DirId(0)
    }

    fn split(path: &str) -> Result<Vec<&str>, FsError> {
        let parts: Vec<&str> = path.split(SEP).collect();
        if parts.iter().any(|p| p.is_empty()) {
            return Err(FsError::BadPath(path.to_string()));
        }
        Ok(parts)
    }

    /// Creates intermediate directories for `path` and returns the
    /// directory that will hold its final component plus that name.
    fn make_parents<'p>(&mut self, path: &'p str) -> Result<(DirId, &'p str), FsError> {
        let parts = Self::split(path)?;
        let (last, parents) = parts
            .split_last()
            .ok_or_else(|| FsError::BadPath(path.to_string()))?;
        let mut cur = self.root();
        for p in parents {
            let next = match self.dirs[cur.0 as usize].entries.get(*p) {
                Some(Entry::Dir(d)) => *d,
                Some(Entry::Segment(_)) => return Err(FsError::NotADirectory(p.to_string())),
                None => {
                    let id = DirId(self.dirs.len() as u32);
                    self.dirs.push(Dir::default());
                    self.dirs[cur.0 as usize]
                        .entries
                        .insert(p.to_string(), Entry::Dir(id));
                    id
                }
            };
            cur = next;
        }
        Ok((cur, last))
    }

    /// Creates a segment at `path` (creating directories as needed).
    pub fn create_segment(
        &mut self,
        path: &str,
        acl: Acl,
        data: Vec<Word>,
    ) -> Result<SegmentId, FsError> {
        let (dir, name) = self.make_parents(path)?;
        if self.dirs[dir.0 as usize].entries.contains_key(name) {
            return Err(FsError::Exists(path.to_string()));
        }
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(StoredSegment {
            path: path.to_string(),
            acl,
            data,
            image: None,
        });
        self.dirs[dir.0 as usize]
            .entries
            .insert(name.to_string(), Entry::Segment(id));
        Ok(id)
    }

    /// One directory-search step: looks up `component` in `dir`.
    ///
    /// Charges `search_steps` proportionally to the number of entries
    /// scanned (a linear directory scan, as contemporary systems did).
    pub fn step(&mut self, dir: DirId, component: &str) -> Result<Entry, FsError> {
        let d = self
            .dirs
            .get(dir.0 as usize)
            .ok_or_else(|| FsError::NotFound(component.to_string()))?;
        // Model a linear scan: cost = position of the hit (or full
        // length on miss).
        let mut scanned = 0;
        let mut hit = None;
        for (name, entry) in &d.entries {
            scanned += 1;
            if name == component {
                hit = Some(entry.clone());
                break;
            }
        }
        self.search_steps += scanned;
        hit.ok_or_else(|| FsError::NotFound(component.to_string()))
    }

    /// Full path resolution to a segment.
    pub fn resolve(&mut self, path: &str) -> Result<SegmentId, FsError> {
        let parts = Self::split(path)?;
        let mut cur = self.root();
        for (i, p) in parts.iter().enumerate() {
            match self.step(cur, p)? {
                Entry::Dir(d) if i + 1 < parts.len() => cur = d,
                Entry::Segment(s) if i + 1 == parts.len() => return Ok(s),
                Entry::Dir(_) => return Err(FsError::WrongKind(path.to_string())),
                Entry::Segment(_) => return Err(FsError::NotADirectory(p.to_string())),
            }
        }
        Err(FsError::BadPath(path.to_string()))
    }

    /// The stored segment for `id`.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id (ids are never deleted).
    pub fn segment(&self, id: SegmentId) -> &StoredSegment {
        &self.segments[id.0 as usize]
    }

    /// Mutable access to the stored segment for `id`.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn segment_mut(&mut self, id: SegmentId) -> &mut StoredSegment {
        &mut self.segments[id.0 as usize]
    }

    /// Number of stored segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl Default for FileSystem {
    fn default() -> Self {
        FileSystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AclEntry, Modes};
    use ring_core::ring::Ring;

    fn acl() -> Acl {
        Acl::single(AclEntry::new("*", Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap())
    }

    #[test]
    fn create_and_resolve_nested_path() {
        let mut fs = FileSystem::new();
        let id = fs.create_segment("udd>alice>prog", acl(), vec![]).unwrap();
        assert_eq!(fs.resolve("udd>alice>prog").unwrap(), id);
        assert_eq!(fs.segment(id).path, "udd>alice>prog");
    }

    #[test]
    fn duplicate_and_missing_paths() {
        let mut fs = FileSystem::new();
        fs.create_segment("a>b", acl(), vec![]).unwrap();
        assert_eq!(
            fs.create_segment("a>b", acl(), vec![]),
            Err(FsError::Exists("a>b".into()))
        );
        assert!(matches!(fs.resolve("a>c"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.resolve("zzz"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn component_through_a_segment_is_rejected() {
        let mut fs = FileSystem::new();
        fs.create_segment("a>b", acl(), vec![]).unwrap();
        assert!(matches!(
            fs.resolve("a>b>c"),
            Err(FsError::NotADirectory(_))
        ));
        assert!(matches!(
            fs.create_segment("a>b>c", acl(), vec![]),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn resolving_a_directory_as_segment_is_wrong_kind() {
        let mut fs = FileSystem::new();
        fs.create_segment("a>b>c", acl(), vec![]).unwrap();
        assert!(matches!(fs.resolve("a>b"), Err(FsError::WrongKind(_))));
    }

    #[test]
    fn bad_paths() {
        let mut fs = FileSystem::new();
        assert!(matches!(fs.resolve(""), Err(FsError::BadPath(_))));
        assert!(matches!(fs.resolve("a>>b"), Err(FsError::BadPath(_))));
    }

    #[test]
    fn search_steps_accumulate_per_component() {
        let mut fs = FileSystem::new();
        fs.create_segment("a>b>c", acl(), vec![]).unwrap();
        fs.search_steps = 0;
        fs.resolve("a>b>c").unwrap();
        // Each directory has exactly one entry, so three steps total.
        assert_eq!(fs.search_steps, 3);
    }

    #[test]
    fn step_interface_walks_one_component() {
        let mut fs = FileSystem::new();
        let id = fs.create_segment("x>y", acl(), vec![]).unwrap();
        let d = match fs.step(fs.root(), "x").unwrap() {
            Entry::Dir(d) => d,
            other => panic!("{other:?}"),
        };
        assert_eq!(fs.step(d, "y").unwrap(), Entry::Segment(id));
    }
}
