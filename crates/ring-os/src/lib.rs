//! A Multics-like operating-system substrate over the ring-protection
//! hardware.
//!
//! The paper's mechanisms only matter in the context of a system that
//! uses them; this crate supplies that system:
//!
//! * access control lists that feed SDW brackets ([`acl`]), on-line
//!   storage ([`fs`]), users and per-process virtual memories
//!   ([`process`], [`state`]);
//! * a layered supervisor: ring-0 trap handling — demand segment
//!   loading, demand paging, processor multiplexing, software-mediated
//!   upward calls and downward returns ([`traps`]) — and gate services
//!   in rings 0 and 1 ([`gates`], [`services`]);
//! * fault recovery under chaos injection: parity-error
//!   classification and repair with a descriptor-segment salvager
//!   ([`recover`]) and a post-recovery protection-invariant checker
//!   ([`invariants`]);
//! * user-constructed protected subsystems in ring 2 ([`subsystems`]);
//! * staging and execution of real assembled user programs
//!   ([`driver`]), plus the world builder ([`boot`]);
//! * the comparison baselines of the evaluation: software-implemented
//!   rings à la the Honeywell 645, Graham's 1967 partial hardware, and
//!   a traditional two-mode supervisor/user machine ([`baseline`]).
//!
//! Supervisor bodies are **native procedures**: Rust closures installed
//! behind ordinary gate segments (see `ring-cpu::native`); every
//! reference they make on a caller's behalf goes through the machine's
//! validated accessors, so the paper's argument-validation story is
//! preserved end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod baseline;
pub mod boot;
pub mod conventions;
pub mod driver;
pub mod fs;
pub mod gates;
pub mod invariants;
pub mod process;
pub mod recover;
pub mod services;
pub mod state;
pub mod strings;
pub mod subsystems;
pub mod traps;
pub mod workload;

pub use acl::{Acl, AclEntry, Modes};
pub use boot::{System, SystemCheckpoint, SystemConfig};
pub use driver::{gen_call_sequence, Staged};
pub use fs::{FileSystem, SegmentId};
pub use invariants::{InvariantClass, InvariantViolation};
pub use state::{AuditRecord, ChaosRecoveryStats, OsState, SupervisorStats};
