//! Processes and their per-process virtual memories.
//!
//! "A process with a new virtual memory is created for each user when
//! he logs in to the system, and the name of the user is associated
//! with the process." Each process owns a descriptor segment; the
//! supervisor segments are shared (same SDWs installed at the same
//! segment numbers in every descriptor segment), while stacks and
//! initiated segments are per-process.

use std::collections::HashMap;

use ring_core::addr::{AbsAddr, SegNo};
use ring_core::registers::{Dbr, Ipr};
use ring_core::ring::Ring;
use ring_cpu::trap::SavedState;

use crate::conventions::segs;
use crate::fs::SegmentId;

/// Known-segment-table entry: one initiated segment of a process.
#[derive(Clone, Debug)]
pub struct KstEntry {
    /// Which stored segment is mapped here.
    pub id: SegmentId,
    /// Whether its contents have been brought into memory (demand
    /// loading happens at the first segment fault).
    pub loaded: bool,
}

/// One process.
#[derive(Clone, Debug)]
pub struct ProcessState {
    /// Owning user.
    pub user: String,
    /// The process's descriptor base register value.
    pub dbr: Dbr,
    /// Known segment table: segno → initiated segment.
    pub kst: HashMap<u32, KstEntry>,
    /// Next segment number to hand out at initiation.
    pub next_segno: u32,
    /// Processor state while not running (the scheduler swaps this with
    /// the machine's save area).
    pub saved: Option<SavedState>,
    /// Dynamic return gates created by software-mediated upward calls
    /// (a push-down stack, as the paper requires).
    pub return_gates: Vec<(Ring, Ipr)>,
    /// Abort reason if the supervisor terminated the process.
    pub aborted: Option<String>,
    /// Gate transits (HCS + ring-1) made by this process.
    pub gate_calls: u64,
    /// Software-mediated upward calls made by this process.
    pub upward_calls: u64,
    /// Times the scheduler took the processor away from this process
    /// while it was still runnable (timer runouts it lost).
    pub preemptions: u64,
    /// Page faults (minor and major) this process took.
    pub page_faults: u64,
}

impl ProcessState {
    /// Creates the bookkeeping for a process whose descriptor segment
    /// lives at `desc_base`.
    pub fn new(user: &str, desc_base: AbsAddr) -> ProcessState {
        ProcessState {
            user: user.to_string(),
            dbr: Dbr::new(
                desc_base,
                segs::DESCRIPTOR_SLOTS,
                SegNo::new(segs::STACK_BASE).expect("stack base segno"),
            ),
            kst: HashMap::new(),
            next_segno: segs::FIRST_USER,
            saved: None,
            return_gates: Vec::new(),
            aborted: None,
            gate_calls: 0,
            upward_calls: 0,
            preemptions: 0,
            page_faults: 0,
        }
    }

    /// A minimal instance for unit tests that never runs.
    pub fn new_for_test(user: &str) -> ProcessState {
        ProcessState::new(user, AbsAddr::ZERO)
    }

    /// Allocates the next free segment number.
    pub fn alloc_segno(&mut self) -> Option<u32> {
        let n = self.next_segno;
        if n < segs::DESCRIPTOR_SLOTS {
            self.next_segno = n + 1;
            Some(n)
        } else {
            None
        }
    }

    /// The initiated segment mapped at `segno`, if any.
    pub fn lookup(&self, segno: u32) -> Option<&KstEntry> {
        self.kst.get(&segno)
    }

    /// The segment number at which `id` is initiated, if any (reverse
    /// lookup; a stored segment is mapped at most once per process).
    pub fn segno_of(&self, id: SegmentId) -> Option<u32> {
        self.kst
            .iter()
            .find(|(_, e)| e.id == id)
            .map(|(segno, _)| *segno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segno_allocation_is_sequential_and_bounded() {
        let mut p = ProcessState::new_for_test("alice");
        assert_eq!(p.alloc_segno(), Some(segs::FIRST_USER));
        assert_eq!(p.alloc_segno(), Some(segs::FIRST_USER + 1));
        p.next_segno = segs::DESCRIPTOR_SLOTS;
        assert_eq!(p.alloc_segno(), None);
    }

    #[test]
    fn dbr_uses_standard_stack_base() {
        let p = ProcessState::new_for_test("alice");
        assert_eq!(p.dbr.stack_base.value(), segs::STACK_BASE);
        assert_eq!(p.dbr.bound, segs::DESCRIPTOR_SLOTS);
    }

    #[test]
    fn reverse_lookup() {
        let mut p = ProcessState::new_for_test("alice");
        p.kst.insert(
            70,
            KstEntry {
                id: SegmentId(5),
                loaded: false,
            },
        );
        assert_eq!(p.segno_of(SegmentId(5)), Some(70));
        assert_eq!(p.segno_of(SegmentId(6)), None);
        assert!(p.lookup(70).is_some());
        assert!(p.lookup(71).is_none());
    }
}
