//! Single-process microbenchmark worlds.
//!
//! These builders construct bare [`World`]s (no supervisor, no
//! scheduler) whose entire cost profile is one hot loop; the
//! throughput harness in `ring-bench` times them under both execution
//! engines, and the determinism suites replay them. Each takes the
//! fast-path switch and an iteration count and returns a world ready
//! to [`ring_cpu::machine::Machine::run`] — halting via a native trap
//! handler when the loop derails out.

use ring_core::registers::{IndWord, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::isa::{Instr, Opcode};
use ring_cpu::machine::MachineConfig;
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::{addr, World};

fn config(fastpath: bool) -> MachineConfig {
    MachineConfig {
        fastpath,
        ..MachineConfig::default()
    }
}

fn finish_world(mut w: World, code_seg: ring_core::addr::SegNo, source: &str) -> World {
    let out = ring_asm::assemble(source).expect("workload program");
    for (i, word) in out.words.iter().enumerate() {
        w.poke(code_seg, i as u32, *word);
    }
    w.start(Ring::R4, code_seg, 0);
    w
}

/// Same-ring counting loop: every instruction fast-path eligible and
/// every operand a memory reference (no immediates), so each step pays
/// the full validate/resolve sequence on the reference path.
pub fn tight_loop(fastpath: bool, iters: u64) -> World {
    let mut w = World::with_config(config(fastpath));
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.poke(data, 0, Word::new(iters));
    w.poke(data, 2, Word::new(1));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
    finish_world(
        w,
        code,
        "
loop:   aos pr1|1
        lda pr1|0
        sba pr1|2
        sta pr1|0
        tnz loop
        drl 0o777
",
    )
}

/// One cross-ring CALL/RETURN round trip per iteration.
pub fn gate_storm(fastpath: bool, iters: u64) -> World {
    let mut w = World::with_config(config(fastpath));
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let gate = w.add_segment(
        20,
        SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R4)
            .gates(1)
            .bound_words(16),
    );
    w.add_standard_stacks(16);
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    // The gate body: immediately RETURN through the pointer the caller
    // left in PR2 (real machine code, not a native stub, so fetches in
    // ring 1 are part of the measured work).
    w.poke_instr(gate, 0, Instr::pr_relative(Opcode::Return, 2, 0));
    w.poke(data, 0, Word::new(iters));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
    finish_world(
        w,
        code,
        "
loop:   eap pr2, ret
        eap pr3, gatep,*
        call pr3|0
ret:    lda pr1|0
        sba =1
        sta pr1|0
        tnz loop
        drl 0o777
gatep:  its 1, 20, 0
",
    )
}

/// Each iteration loads through a three-deep indirect chain.
pub fn indirect_chain(fastpath: bool, iters: u64) -> World {
    let mut w = World::with_config(config(fastpath));
    let code = w.add_segment(
        10,
        SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(64),
    );
    let data = w.add_segment(11, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let table = w.add_segment(12, SdwBuilder::data(Ring::R4, Ring::R4).bound_words(16));
    let trap = w.add_trap_segment();
    w.machine
        .register_native(trap, |_, _| Ok(NativeAction::Halt));
    w.write_ind_word(table, 0, IndWord::new(Ring::R4, addr(12, 2), true));
    w.write_ind_word(table, 2, IndWord::new(Ring::R4, addr(12, 4), true));
    w.write_ind_word(table, 4, IndWord::new(Ring::R4, addr(11, 2), false));
    w.poke(data, 0, Word::new(iters));
    w.poke(data, 2, Word::new(0o1234));
    w.machine.set_pr(1, PtrReg::new(Ring::R4, addr(11, 0)));
    w.machine.set_pr(2, PtrReg::new(Ring::R4, addr(12, 0)));
    finish_world(
        w,
        code,
        "
loop:   lda pr2|0,*
        lda pr1|0
        sba =1
        sta pr1|0
        tnz loop
        drl 0o777
",
    )
}
