//! Multiprocess storm workloads on a booted system.
//!
//! The *page storm* is the standard demand-paging stressor used by the
//! CLIs, the CI smoke test, and the record/replay suite: each process
//! gets a private paged data segment larger than the small-segment
//! threshold and a program that sweeps every page of it, writing as it
//! goes, for a configurable number of rounds. Run under a physical
//! frame budget smaller than the combined working sets, the processes
//! continually evict each other's pages — every crossing of the budget
//! exercises CLOCK selection, drum write-back, TLB shoot-down, and the
//! major-fault block/wake path; the interval timer meanwhile slices
//! the processor between them.
//!
//! The *gate storm* is its cross-ring sibling: each process hammers a
//! ring-1 supervisor gate (`ring1$acct_charge`) in a tight loop, so
//! the dominant cost is CALL/RETURN ring crossings and supervisor
//! dispatch rather than paging.

use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;

use crate::acl::{Acl, AclEntry, Modes};
use crate::boot::System;
use crate::conventions::{ring1, segs};
use crate::process::KstEntry;
use ring_segmem::paging::PAGE_WORDS;

/// Shape of a page-storm workload.
#[derive(Clone, Copy, Debug)]
pub struct StormSpec {
    /// Number of processes to create.
    pub procs: usize,
    /// Pages in each process's private data segment.
    pub pages: u32,
    /// Sweep rounds each process performs before exiting.
    pub rounds: u32,
}

impl Default for StormSpec {
    fn default() -> Self {
        StormSpec {
            procs: 4,
            pages: 5,
            rounds: 30,
        }
    }
}

/// One installed storm process.
#[derive(Clone, Debug)]
pub struct StormProc {
    /// Process id (`login` order).
    pub pid: usize,
    /// Code segment number of the storm program.
    pub code_segno: u32,
    /// Entry offset of the storm program.
    pub entry: u32,
    /// Segment number of the process's private data segment.
    pub data_segno: u32,
}

/// The assembly of one sweep program: touch the first word of every
/// page of `data_segno` with a read-modify-write, `rounds` times, then
/// exit via the derail convention.
fn storm_source(data_segno: u32, pages: u32, rounds: u32) -> String {
    let mut text = String::from("        lda rounds\n");
    text.push_str("loop:\n");
    for p in 0..pages {
        text.push_str(&format!("        eap pr4, p{p},*\n        aos pr4|0\n"));
    }
    text.push_str("        sba one\n        tnz loop\n");
    text.push_str(&format!("        drl 0o{:o}\n", crate::traps::EXIT_CODE));
    text.push_str(&format!("rounds: dw {rounds}\none:    dw 1\n"));
    for p in 0..pages {
        text.push_str(&format!(
            "p{p}:     its 4, {data_segno}, {}\n",
            p * PAGE_WORDS
        ));
    }
    text
}

/// Builds a page-storm world on a booted system: logs in one user per
/// process, creates each process's private paged segment in on-line
/// storage (initiated but not loaded, so the first touch takes the
/// demand-paging path), installs the sweep program, and parks every
/// process on the ready queue.
///
/// The caller still chooses who runs first ([`System::prepare`]) and
/// arms the quantum; see the CLIs for the full sequence.
///
/// # Panics
///
/// Panics on exhausted memory or assembly errors — workload building
/// is expected to be well-formed.
pub fn install_page_storm(sys: &mut System, spec: &StormSpec) -> Vec<StormProc> {
    install_storm_with(sys, spec, |data_segno| {
        storm_source(data_segno, spec.pages, spec.rounds)
    })
}

/// Like [`install_page_storm`], but every process runs a copy of the
/// caller's assembly `source` instead of the generated sweep. The
/// private paged data segment is installed first, so it is always
/// segment [`STORM_DATA_SEGNO`] — programs address it as
/// `its 4, 64, <offset>`.
///
/// # Panics
///
/// Panics on exhausted memory or assembly errors.
pub fn install_storm_program(sys: &mut System, spec: &StormSpec, source: &str) -> Vec<StormProc> {
    install_storm_with(sys, spec, |_| source.to_string())
}

/// Segment number of each storm process's private paged data segment
/// (the first user segment number, allocated before the program).
pub const STORM_DATA_SEGNO: u32 = 64;

fn install_storm_with<F>(sys: &mut System, spec: &StormSpec, source_for: F) -> Vec<StormProc>
where
    F: Fn(u32) -> String,
{
    assert!(
        u64::from(spec.pages * PAGE_WORDS) > crate::services::SMALL_SEGMENT_WORDS as u64,
        "storm data segment ({} words) must exceed the small-segment \
         threshold ({} words) or it will be loaded contiguously and \
         never page",
        spec.pages * PAGE_WORDS,
        crate::services::SMALL_SEGMENT_WORDS,
    );
    let mut out = Vec::with_capacity(spec.procs);
    for i in 0..spec.procs {
        let user = format!("storm{i}");
        let pid = sys.login(&user);
        let words = (spec.pages * PAGE_WORDS) as usize;
        let id = sys.create_segment(
            &format!("/storm/{user}/data"),
            Acl::single(
                AclEntry::new(&user, Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0)
                    .expect("well-formed ACL"),
            ),
            vec![Word::new(i as u64 + 1); words],
        );
        // Initiate the segment by hand (the host-side twin of
        // `hcs$initiate`): KST entry plus a not-present SDW, so the
        // first reference segment-faults and builds the page table.
        let data_segno = {
            let mut st = sys.state.borrow_mut();
            let proc = &mut st.processes[pid];
            let segno = proc.alloc_segno().expect("segment number");
            proc.kst.insert(segno, KstEntry { id, loaded: false });
            segno
        };
        debug_assert_eq!(data_segno, STORM_DATA_SEGNO);
        let sdw = SdwBuilder::data(Ring::R4, Ring::R4)
            .present(false)
            .bound_words(words as u32)
            .build();
        sys.install_sdw(pid, data_segno, &sdw);
        let staged = sys.install_code(pid, Ring::R4, Ring::R4, 0, &source_for(data_segno));
        sys.prepare(pid, staged.segno, 0, Ring::R4);
        sys.park(pid);
        out.push(StormProc {
            pid,
            code_segno: staged.segno,
            entry: 0,
            data_segno,
        });
    }
    activate_first(sys, &out);
    out
}

/// Shape of a gate-storm workload.
#[derive(Clone, Copy, Debug)]
pub struct GateStormSpec {
    /// Number of processes to create.
    pub procs: usize,
    /// Gate CALL/RETURN round trips each process performs before
    /// exiting.
    pub rounds: u32,
}

impl Default for GateStormSpec {
    fn default() -> Self {
        GateStormSpec {
            procs: 4,
            rounds: 30,
        }
    }
}

/// The assembly of one gate-storm program: `rounds` CALLs through the
/// ring-1 `acct_charge` gate, then exit via the derail convention. The
/// gate leaves its status in the accumulator, so the loop counter lives
/// in the process's private data segment (word 0), reached through an
/// indirect pointer — code segments are execute-only here.
fn gate_storm_source(data_segno: u32) -> String {
    format!(
        "loop:   eap pr1, args
        eap pr2, ret
        eap pr3, gatep,*
        call pr3|0
ret:    eap pr4, cntp,*
        lda pr4|0
        sba one
        sta pr4|0
        tnz loop
        drl 0o{exit:o}
one:    dw 1
gatep:  its 4, {ring1}, {entry}
cntp:   its 4, {data}, 0
args:   its 4, {data}, 1
",
        exit = crate::traps::EXIT_CODE,
        ring1 = segs::RING1,
        entry = ring1::ACCT_CHARGE,
        data = data_segno,
    )
}

/// Builds a gate-storm world on a booted system: one process per slot,
/// each with a small private data segment (round counter at word 0, a
/// unit charge argument at word 1) and a program that CALLs the ring-1
/// accounting gate `rounds` times. All processes are parked ready and
/// the first is activated, exactly as in [`install_page_storm`].
///
/// # Panics
///
/// Panics on exhausted memory or assembly errors.
pub fn install_gate_storm(sys: &mut System, spec: &GateStormSpec) -> Vec<StormProc> {
    let mut out = Vec::with_capacity(spec.procs);
    for i in 0..spec.procs {
        let user = format!("gate{i}");
        let pid = sys.login(&user);
        let data = sys.install_data(
            pid,
            Ring::R4,
            Ring::R4,
            &[Word::new(u64::from(spec.rounds)), Word::new(1)],
            16,
        );
        debug_assert_eq!(data.segno, STORM_DATA_SEGNO);
        let staged = sys.install_code(pid, Ring::R4, Ring::R4, 0, &gate_storm_source(data.segno));
        sys.prepare(pid, staged.segno, 0, Ring::R4);
        sys.park(pid);
        out.push(StormProc {
            pid,
            code_segno: staged.segno,
            entry: 0,
            data_segno: data.segno,
        });
    }
    activate_first(sys, &out);
    out
}

/// The first installed process runs immediately: point the machine at
/// it and take it back off the ready queue (it is no longer waiting).
fn activate_first(sys: &mut System, procs: &[StormProc]) {
    let first = procs[0].clone();
    sys.prepare(first.pid, first.code_segno, first.entry, Ring::R4);
    let mut st = sys.state.borrow_mut();
    st.sched.remove(first.pid);
    st.processes[first.pid].saved = None;
}
