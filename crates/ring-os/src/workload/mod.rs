//! Canned workloads, shared by every harness.
//!
//! This module is the single home for workload construction. The
//! benchmark CLIs (`ring-bench`), the fleet runner (`ring-fleet`), the
//! CI smoke steps, and the record/replay suite all build their worlds
//! here instead of keeping private copies:
//!
//! * the storm builders (re-exported at this level) — multiprocess
//!   workloads on a booted [`crate::boot::System`]: the demand-paging
//!   *page storm* ([`install_page_storm`]) and the cross-ring *gate
//!   storm* ([`install_gate_storm`]).
//! * [`micro`] — single-process microbenchmark worlds on a bare
//!   [`ring_cpu::testkit::World`] (tight loop, gate storm, indirect
//!   chain), used by the throughput harness.

pub mod micro;
mod storm;

pub use storm::{
    install_gate_storm, install_page_storm, install_storm_program, GateStormSpec, StormProc,
    StormSpec, STORM_DATA_SEGNO,
};
