//! Strings in simulated memory: one character per word, NUL-terminated.
//!
//! Gate arguments that name paths and users are passed as pointers to
//! such strings; the supervisor reads them through the *validated*
//! accessors, so a caller cannot name a string it could not itself
//! read.

use ring_core::access::Fault;
use ring_core::registers::PtrReg;
use ring_core::word::Word;
use ring_cpu::machine::Machine;

/// Longest string a gate will read (defence against unterminated
/// buffers).
pub const MAX_STRING: u32 = 256;

/// Reads a NUL-terminated string at `ptr` with full access validation.
///
/// Propagates any access-violation fault the validated reads raise. A
/// string with no terminator within [`MAX_STRING`] words is refused
/// with [`Fault::IndirectLimit`] (the supervisor treats it as a bad
/// argument).
pub fn read_string(m: &mut Machine, ptr: PtrReg) -> Result<String, Fault> {
    let mut out = String::new();
    for i in 0..MAX_STRING {
        let w = m.read_validated(PtrReg::new(
            ptr.ring,
            ring_core::addr::SegAddr::new(ptr.addr.segno, ptr.addr.wordno.wrapping_add(i)),
        ))?;
        let c = (w.raw() & 0x1ff) as u32;
        if c == 0 {
            return Ok(out);
        }
        out.push(char::from_u32(c & 0x7f).unwrap_or('?'));
    }
    Err(Fault::IndirectLimit)
}

/// Encodes `s` as words (one character per word) plus a NUL terminator.
pub fn encode_string(s: &str) -> Vec<Word> {
    s.bytes()
        .map(|b| Word::new(u64::from(b)))
        .chain(std::iter::once(Word::ZERO))
        .collect()
}

/// Writes `s` (plus terminator) at `ptr` with full access validation.
pub fn write_string(m: &mut Machine, ptr: PtrReg, s: &str) -> Result<(), Fault> {
    for (i, w) in encode_string(s).into_iter().enumerate() {
        m.write_validated(
            PtrReg::new(
                ptr.ring,
                ring_core::addr::SegAddr::new(
                    ptr.addr.segno,
                    ptr.addr.wordno.wrapping_add(i as u32),
                ),
            ),
            w,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_round_trips_ascii() {
        let v = encode_string("hi");
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].raw(), u64::from(b'h'));
        assert_eq!(v[2], Word::ZERO);
    }

    #[test]
    fn encode_empty() {
        assert_eq!(encode_string(""), vec![Word::ZERO]);
    }
}
