//! User-constructed protected subsystems (rings 2–3).
//!
//! "User A may wish to allow user B to access a sensitive data segment,
//! but only through a special program, provided by A, that audits
//! references to the segment." This module stages exactly that: a
//! sensitive data segment with brackets ending at ring 2 and an audit
//! gate segment executing in ring 2 whose gates are open to rings 3–5.
//! Ring-4 programs cannot touch the data directly; calls through the
//! gate succeed and leave an audit trail — with no supervisor
//! involvement ("the ring protection scheme allows the operation of
//! user-constructed protected subsystems without auditing them for
//! inclusion in the supervisor").

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::addr::SegNo;
use ring_core::registers::PtrReg;
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::native::NativeAction;

use crate::boot::System;
use crate::conventions::{PR_AP, PR_RP};
use crate::state::{AuditRecord, OsState};

/// Gate entries of the audit subsystem.
pub mod gate {
    /// `read(index*, result*)` — audited read of one word.
    pub const READ: u32 = 0;
    /// `sum(count*, result*)` — audited sum of the first `count` words.
    pub const SUM: u32 = 1;
    /// Number of gates.
    pub const COUNT: u32 = 2;
}

/// Handles to an installed audit subsystem.
#[derive(Clone, Copy, Debug)]
pub struct AuditSubsystem {
    /// Segment number of the sensitive data segment (brackets end at
    /// ring 2).
    pub data_segno: u32,
    /// Segment number of the audit gate segment.
    pub gate_segno: u32,
}

/// Installs the audit subsystem into process `pid`'s virtual memory:
/// the sensitive data (owned by `owner`) and the ring-2 audit gates.
///
/// # Panics
///
/// Panics on exhausted memory (world building).
pub fn install(system: &mut System, pid: usize, owner: &str, data: &[Word]) -> AuditSubsystem {
    // Sensitive data: readable and writable only through ring 2.
    let staged = system.install_data(pid, Ring::R2, Ring::R2, data, 16);
    let data_segno = staged.segno;

    // The audit gate segment: executes in ring 2, gates open to ring 5.
    let base = system
        .alloc
        .borrow_mut()
        .alloc(16)
        .expect("gate segment storage");
    let sdw = SdwBuilder::procedure(Ring::R2, Ring::R2, Ring::R5)
        .gates(gate::COUNT)
        .addr(base)
        .bound_words(16)
        .build();
    let gate_segno = system.state.borrow_mut().processes[pid]
        .alloc_segno()
        .expect("segment number");
    system.install_sdw(pid, gate_segno, &sdw);

    let owner = owner.to_string();
    let state: Rc<RefCell<OsState>> = system.state.clone();
    let data_sn = SegNo::new(data_segno).expect("segno");
    system
        .machine
        .register_native(SegNo::new(gate_segno).expect("segno"), move |m, entry| {
            // We are executing in ring 2 (the hardware switched here
            // through the gate). References to the sensitive segment
            // are made at ring 2; references to caller arguments
            // through PR1 are validated at the caller's (higher) ring.
            debug_assert_eq!(m.ring(), Ring::R2);
            let caller_ring = m.pr(PR_AP).ring;
            let status = match entry.value() {
                gate::READ => (|| {
                    let ap = m.pr(PR_AP);
                    let idx_ptr = m.arg_pointer(ap, 0).map_err(|_| 4u64)?;
                    let idx = m.read_validated(idx_ptr).map_err(|_| 2u64)?.raw() as u32;
                    let word = m
                        .read_validated(PtrReg::new(
                            Ring::R2,
                            ring_core::addr::SegAddr::new(
                                data_sn,
                                ring_core::addr::WordNo::from_bits(u64::from(idx)),
                            ),
                        ))
                        .map_err(|_| 1u64)?;
                    let res_ptr = m.arg_pointer(ap, 1).map_err(|_| 4u64)?;
                    m.write_validated(res_ptr, word).map_err(|_| 2u64)?;
                    let mut s = state.borrow_mut();
                    let user = s.current_process().user.clone();
                    s.audit_log.push(AuditRecord {
                        user,
                        caller_ring,
                        operation: format!("read[{idx}] of {owner}'s data"),
                    });
                    Ok::<u64, u64>(0)
                })()
                .unwrap_or_else(|e| e),
                gate::SUM => (|| {
                    let ap = m.pr(PR_AP);
                    let cnt_ptr = m.arg_pointer(ap, 0).map_err(|_| 4u64)?;
                    let count = m.read_validated(cnt_ptr).map_err(|_| 2u64)?.raw() as u32;
                    let mut sum = Word::ZERO;
                    for i in 0..count {
                        let w = m
                            .read_validated(PtrReg::new(
                                Ring::R2,
                                ring_core::addr::SegAddr::new(
                                    data_sn,
                                    ring_core::addr::WordNo::from_bits(u64::from(i)),
                                ),
                            ))
                            .map_err(|_| 1u64)?;
                        sum = sum.wrapping_add(w);
                    }
                    let res_ptr = m.arg_pointer(ap, 1).map_err(|_| 4u64)?;
                    m.write_validated(res_ptr, sum).map_err(|_| 2u64)?;
                    let mut s = state.borrow_mut();
                    let user = s.current_process().user.clone();
                    s.audit_log.push(AuditRecord {
                        user,
                        caller_ring,
                        operation: format!("sum[0..{count}] of {owner}'s data"),
                    });
                    Ok::<u64, u64>(0)
                })()
                .unwrap_or_else(|e| e),
                _ => 4,
            };
            m.set_a(Word::new(status));
            Ok(NativeAction::Return { via: m.pr(PR_RP) })
        });

    AuditSubsystem {
        data_segno,
        gate_segno,
    }
}
