//! Gate dispatchers: the native bodies of the HCS (ring 0) and ring-1
//! gate segments.
//!
//! A gate dispatcher runs only after the hardware CALL validation has
//! admitted the transfer (gate list, brackets, ring switch). It
//! unmarshals arguments through the argument pointer `PR1` using the
//! machine's *validated* accessors — so every reference it makes on the
//! caller's behalf is checked against the caller's effective ring,
//! exactly as the paper's argument-validation mechanism prescribes —
//! performs the service, leaves a status code in the A register, and
//! returns through the return pointer `PR2`.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::access::Fault;
use ring_core::addr::SegNo;
use ring_core::registers::PtrReg;
use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_cpu::machine::Machine;
use ring_cpu::native::NativeAction;

use crate::acl::Modes;
use crate::conventions::{hcs, ring1, segs, PR_AP, PR_RP};
use crate::services;
use crate::services::status;
use crate::state::OsState;
use crate::strings::read_string;

/// Reads argument `n` as a pointer (dereferencing the caller's
/// argument-list indirect pair with effective-ring folding).
fn arg_ptr(m: &mut Machine, n: u32) -> Result<PtrReg, Fault> {
    let ap = m.pr(PR_AP);
    m.arg_pointer(ap, n)
}

/// Reads argument `n` as a single word through its pointer.
fn arg_word(m: &mut Machine, n: u32) -> Result<Word, Fault> {
    let p = arg_ptr(m, n)?;
    m.read_validated(p)
}

/// Writes a result word through argument `n`'s pointer.
fn write_result(m: &mut Machine, n: u32, v: Word) -> Result<(), Fault> {
    let p = arg_ptr(m, n)?;
    m.write_validated(p, v)
}

fn fault_status(f: Fault) -> u64 {
    match f {
        Fault::AccessViolation { .. } => status::NO_ACCESS,
        _ => status::BAD_ARG,
    }
}

/// Decodes the packed modes word of `set_acl` (bit 0 read, bit 1 write,
/// bit 2 execute).
fn decode_modes(w: Word) -> Modes {
    Modes {
        read: w.bit(0),
        write: w.bit(1),
        execute: w.bit(2),
    }
}

/// Decodes the packed rings word of `set_acl`:
/// `R1[0..3] R2[3..6] R3[6..9] GATES[9..23]`.
fn decode_rings(w: Word) -> ((Ring, Ring, Ring), u32) {
    (
        (
            Ring::from_bits(w.field(0, 3)),
            Ring::from_bits(w.field(3, 3)),
            Ring::from_bits(w.field(6, 3)),
        ),
        w.field(9, 14) as u32,
    )
}

/// Installs the HCS and ring-1 gate dispatchers on the machine.
pub fn install(machine: &mut Machine, state: Rc<RefCell<OsState>>) {
    let st = state.clone();
    machine.register_native(SegNo::new(segs::HCS).expect("segno"), move |m, entry| {
        let mut s = st.borrow_mut();
        s.stats.gate_calls_hcs += 1;
        if !s.processes.is_empty() {
            s.current_process_mut().gate_calls += 1;
        }
        let status = hcs_entry(m, &mut s, entry.value());
        drop(s);
        m.set_a(Word::new(status));
        Ok(NativeAction::Return { via: m.pr(PR_RP) })
    });

    let st = state;
    machine.register_native(SegNo::new(segs::RING1).expect("segno"), move |m, entry| {
        let mut s = st.borrow_mut();
        s.stats.gate_calls_ring1 += 1;
        if !s.processes.is_empty() {
            s.current_process_mut().gate_calls += 1;
        }
        let status = ring1_entry(m, &mut s, entry.value());
        drop(s);
        m.set_a(Word::new(status));
        Ok(NativeAction::Return { via: m.pr(PR_RP) })
    });
}

fn hcs_entry(m: &mut Machine, s: &mut OsState, entry: u32) -> u64 {
    match entry {
        hcs::INITIATE => (|| {
            let path_ptr = arg_ptr(m, 0).map_err(fault_status)?;
            let path = read_string(m, path_ptr).map_err(fault_status)?;
            let segno = services::svc_initiate(m, s, &path)?;
            write_result(m, 1, Word::new(u64::from(segno))).map_err(fault_status)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::TERMINATE => (|| {
            let segno = arg_word(m, 0).map_err(fault_status)?;
            services::svc_terminate(m, s, segno.raw() as u32)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::SET_ACL => (|| {
            let path_ptr = arg_ptr(m, 0).map_err(fault_status)?;
            let path = read_string(m, path_ptr).map_err(fault_status)?;
            let user_ptr = arg_ptr(m, 1).map_err(fault_status)?;
            let user = read_string(m, user_ptr).map_err(fault_status)?;
            let modes = decode_modes(arg_word(m, 2).map_err(fault_status)?);
            let (rings, gates) = decode_rings(arg_word(m, 3).map_err(fault_status)?);
            // The caller's ring is bounded below by the argument
            // pointer's ring (the hardware guarantees PR rings never
            // drop below the caller's ring of execution).
            let caller_ring = m.pr(PR_AP).ring;
            services::svc_set_acl(m, s, &path, &user, modes, rings, gates, caller_ring)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::TTY_WRITE => (|| {
            let buf = arg_ptr(m, 0).map_err(fault_status)?;
            let count = arg_word(m, 1).map_err(fault_status)?.raw() as u32;
            services::svc_tty_write(m, s, buf, count)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::TTY_CONNECT => (|| {
            let buf = arg_ptr(m, 0).map_err(fault_status)?;
            let count = arg_word(m, 1).map_err(fault_status)?.raw() as u32;
            services::svc_tty_connect(m, s, buf, count)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::FS_SEARCH => (|| {
            let path_ptr = arg_ptr(m, 0).map_err(fault_status)?;
            let path = read_string(m, path_ptr).map_err(fault_status)?;
            let id = services::svc_fs_search(m, s, &path)?;
            write_result(m, 1, Word::new(u64::from(id))).map_err(fault_status)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        hcs::FS_STEP => (|| {
            let handle = arg_word(m, 0).map_err(fault_status)?.raw();
            let comp_ptr = arg_ptr(m, 1).map_err(fault_status)?;
            let component = read_string(m, comp_ptr).map_err(fault_status)?;
            let next = services::svc_fs_step(m, s, handle, &component)?;
            write_result(m, 2, Word::new(next)).map_err(fault_status)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        _ => status::BAD_ARG,
    }
}

fn ring1_entry(m: &mut Machine, s: &mut OsState, entry: u32) -> u64 {
    match entry {
        ring1::ACCT_CHARGE => (|| {
            let units = arg_word(m, 0).map_err(fault_status)?.as_signed();
            services::svc_acct_charge(m, s, units)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        ring1::ACCT_READ => (|| {
            let balance = services::svc_acct_read(m, s)?;
            write_result(m, 0, Word::from_signed(balance)).map_err(fault_status)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        ring1::IOS_WRITE => (|| {
            let buf = arg_ptr(m, 0).map_err(fault_status)?;
            let count = arg_word(m, 1).map_err(fault_status)?.raw() as u32;
            services::svc_ios_write(m, s, buf, count)?;
            Ok(status::OK)
        })()
        .unwrap_or_else(|e| e),
        _ => status::BAD_ARG,
    }
}
