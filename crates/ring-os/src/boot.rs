//! World building: booting a complete system.
//!
//! [`System::boot`] constructs the machine, lays out the shared
//! supervisor segments (trap vectors, the two gate segments, supervisor
//! data for both layers), and registers the native supervisor bodies.
//! [`System::login`] then creates a process — its own descriptor
//! segment with the supervisor template installed plus eight per-ring
//! stack segments — exactly the paper's model of a layered supervisor
//! present in the virtual memory of every process.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::addr::{AbsAddr, SegNo};
use ring_core::callret::StackRule;
use ring_core::effective::EffectiveRingRules;
use ring_core::ring::Ring;
use ring_core::sdw::{Sdw, SdwBuilder};
use ring_core::word::Word;
use ring_cpu::machine::{Machine, MachineConfig};
use ring_segmem::layout::PhysAllocator;

use crate::acl::Acl;
use crate::conventions::{frame, hcs, ring1, segs};
use crate::fs::SegmentId;
use crate::process::ProcessState;
use crate::state::OsState;

/// Configuration knobs for a booted system.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Physical memory size in words.
    pub phys_words: usize,
    /// SDW associative-memory capacity.
    pub sdw_cache: usize,
    /// Effective-ring rules (ablations).
    pub ea_rules: EffectiveRingRules,
    /// CALL stack-selection rule. Keep the default [`StackRule::DbrBase`]
    /// for booted systems: the plain Fig. 8 rule puts stacks at segment
    /// numbers 0–7, which this layout reserves for the supervisor (use
    /// bare `ring-cpu` worlds to experiment with that rule).
    pub stack_rule: StackRule,
    /// Scheduler quantum in cycles.
    pub quantum: u64,
    /// Whether the machine's fast-path execution engine (translation
    /// lookaside + predecoded instruction cache) is enabled.
    pub fastpath: bool,
    /// Physical-frame budget for demand paging. `Some(n)` caps paged
    /// segments at `n` resident frames, with CLOCK eviction to a
    /// simulated drum; `None` never reclaims frames (legacy).
    pub frame_budget: Option<u32>,
    /// Simulated cycles a drum transfer takes; a major page fault
    /// blocks the faulting process for this long.
    pub page_in_latency: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            phys_words: 2 * 1024 * 1024,
            sdw_cache: ring_segmem::sdw_cache::SdwCache::DEFAULT_CAPACITY,
            ea_rules: EffectiveRingRules::PAPER,
            stack_rule: StackRule::DbrBase,
            quantum: 5_000,
            fastpath: true,
            frame_budget: None,
            page_in_latency: 1_000,
        }
    }
}

/// A frozen boot image: a system's entire physical memory captured as
/// a shared read-only array, plus the configuration that built it.
///
/// Build a prototype system once ([`System::boot_with`] plus workload
/// installation), [`System::freeze`] it, then boot any number of
/// machines from the image with [`System::boot_from_image`]. Each
/// clone's memory is a copy-on-write view ([`ring_segmem::PhysMem::cow`])
/// over the shared image, so per-machine footprint is only the pages a
/// machine actually changes. The image is `Send + Sync` and cheap to
/// clone across threads.
#[derive(Clone)]
pub struct BootImage {
    cfg: SystemConfig,
    base: std::sync::Arc<Vec<Word>>,
}

impl BootImage {
    /// The configuration the image was frozen with (and that clones
    /// boot with).
    pub fn cfg(&self) -> SystemConfig {
        self.cfg
    }

    /// The image contents, by shared reference count.
    pub fn share(&self) -> std::sync::Arc<Vec<Word>> {
        std::sync::Arc::clone(&self.base)
    }

    /// Image length in words.
    pub fn words(&self) -> usize {
        self.base.len()
    }
}

/// A restartable world snapshot: the machine's architectural image
/// plus the supervisor's host-side state and the metrics recorder.
///
/// This is the unit of the fleet supervisor's self-healing loop: a
/// machine that wedges, double-faults, or fails its post-recovery
/// invariant check is rewound to its last checkpoint
/// ([`System::restore_checkpoint`]) and re-run — deterministically,
/// since everything influencing execution is inside the snapshot.
#[derive(Clone)]
pub struct SystemCheckpoint {
    image: ring_cpu::MachineImage,
    os: OsState,
    metrics: ring_metrics::Metrics,
    /// Simulated cycles at capture (restart bookkeeping: cycles lost
    /// to a rewind are `failure_cycles - checkpoint.cycles`).
    pub cycles: u64,
}

/// A booted system: machine plus supervisor state.
pub struct System {
    /// The processor and memory.
    pub machine: Machine,
    /// Shared supervisor state.
    pub state: Rc<RefCell<OsState>>,
    /// Shared physical allocator.
    pub alloc: Rc<RefCell<PhysAllocator>>,
    template: Vec<(u32, Sdw)>,
    cfg: SystemConfig,
}

impl System {
    /// Boots with default configuration.
    pub fn boot() -> System {
        System::boot_with(SystemConfig::default())
    }

    /// Boots with explicit configuration.
    pub fn boot_with(cfg: SystemConfig) -> System {
        System::boot_on(cfg, ring_segmem::PhysMem::new(cfg.phys_words))
    }

    /// Boots over a frozen image: physical memory becomes a
    /// copy-on-write view sharing the image's storage. The supervisor
    /// is rebuilt host-side exactly as in a fresh boot; because
    /// world-building pokes that store a word's existing value leave
    /// the overlay untouched, a clone that replays the same boot and
    /// workload sequence dirties no pages at all until it diverges.
    pub fn boot_from_image(image: &BootImage) -> System {
        let cfg = image.cfg();
        System::boot_on(
            cfg,
            ring_segmem::PhysMem::cow(image.share(), cfg.phys_words),
        )
    }

    /// Captures this system's physical memory as a shared read-only
    /// [`BootImage`]. Freeze after world building and workload
    /// installation, before any execution, so clones replay from the
    /// exact installed state.
    pub fn freeze(&self) -> BootImage {
        BootImage {
            cfg: self.cfg,
            base: self.machine.phys().freeze_base(),
        }
    }

    /// The configuration this system booted with.
    pub fn cfg(&self) -> SystemConfig {
        self.cfg
    }

    /// Boots on an explicit physical memory (flat or copy-on-write).
    fn boot_on(cfg: SystemConfig, phys: ring_segmem::PhysMem) -> System {
        let mconfig = MachineConfig {
            stack_rule: cfg.stack_rule,
            ea_rules: cfg.ea_rules,
            sdw_cache: cfg.sdw_cache,
            trap_segno: SegNo::new(segs::TRAP).expect("segno"),
            trap_vector_base: 0,
            trap_save_offset: 64,
            fastpath: cfg.fastpath,
            ..MachineConfig::default()
        };
        let mut machine = Machine::with_phys(phys, mconfig);
        let mut alloc = PhysAllocator::new(0o100, cfg.phys_words as u32);

        let mut template: Vec<(u32, Sdw)> = Vec::new();
        let mut place = |alloc: &mut PhysAllocator, segno: u32, b: SdwBuilder| {
            let probe = b.build();
            let base = alloc
                .alloc(probe.length_words())
                .expect("supervisor layout");
            let sdw = b.addr(base).build();
            template.push((segno, sdw));
        };

        // The trap segment: vectors + save area; ring-0 only.
        place(
            &mut alloc,
            segs::TRAP,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
                .write(true)
                .bound_words(256),
        );
        // The hardcore gate segment: executes in ring 0, gates open
        // through ring 5 ("procedures executing in rings 6 and 7 are
        // not given access to supervisor gates").
        place(
            &mut alloc,
            segs::HCS,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R5)
                .gates(hcs::COUNT)
                .bound_words(16),
        );
        // The ring-1 gate segment.
        place(
            &mut alloc,
            segs::RING1,
            SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R5)
                .gates(ring1::COUNT)
                .bound_words(16),
        );
        // Supervisor data, per layer.
        place(
            &mut alloc,
            segs::SUP_DATA,
            SdwBuilder::data(Ring::R0, Ring::R0).bound_words(1024),
        );
        place(
            &mut alloc,
            segs::RING1_DATA,
            SdwBuilder::data(Ring::R1, Ring::R1).bound_words(1024),
        );

        let mut os = OsState::new();
        os.quantum = cfg.quantum;
        os.frames = cfg.frame_budget.map(ring_segmem::FramePool::new);
        os.page_in_latency = cfg.page_in_latency;
        let state = Rc::new(RefCell::new(os));
        let alloc = Rc::new(RefCell::new(alloc));

        crate::traps::install(&mut machine, state.clone(), alloc.clone());
        crate::gates::install(&mut machine, state.clone());

        System {
            machine,
            state,
            alloc,
            template,
            cfg,
        }
    }

    /// Registers a user.
    pub fn add_user(&self, name: &str) {
        self.state.borrow_mut().add_user(name);
    }

    /// Creates a stored segment in on-line storage (host-level; the
    /// simulated way in is `hcs$set_acl` plus supervisor file-creation
    /// gates, which this reproduction keeps host-side).
    ///
    /// # Panics
    ///
    /// Panics on storage errors — world-building is expected to be
    /// well-formed.
    pub fn create_segment(&self, path: &str, acl: Acl, data: Vec<Word>) -> SegmentId {
        self.state
            .borrow_mut()
            .fs
            .create_segment(path, acl, data)
            .expect("create stored segment")
    }

    /// Logs `user` in: creates a process with a fresh virtual memory
    /// (descriptor segment + supervisor template + per-ring stacks) and
    /// returns its process id.
    ///
    /// # Panics
    ///
    /// Panics when physical memory for the descriptor or stacks cannot
    /// be allocated.
    pub fn login(&mut self, user: &str) -> usize {
        self.add_user(user);
        let mut alloc = self.alloc.borrow_mut();
        let desc_base = alloc
            .alloc(2 * segs::DESCRIPTOR_SLOTS)
            .expect("descriptor segment");
        // Supervisor template.
        for (segno, sdw) in &self.template {
            Self::poke_sdw(&mut self.machine, desc_base, *segno, sdw);
        }
        // Per-ring stacks: read and write brackets end at ring r.
        for r in Ring::all() {
            let base = alloc.alloc(1024).expect("stack segment");
            let sdw = SdwBuilder::data(r, r).addr(base).bound_words(1024).build();
            Self::poke_sdw(
                &mut self.machine,
                desc_base,
                segs::STACK_BASE + u32::from(r.number()),
                &sdw,
            );
            self.machine
                .phys_mut()
                .poke(base, Word::new(u64::from(frame::FIRST_FRAME)))
                .expect("stack header");
        }
        drop(alloc);
        // The new process's trap-segment SDW pair must survive chaos
        // injection: a parity error met while entering a trap is an
        // unrecoverable double fault (the hardware analogue kept its
        // trap storage on corrected memory).
        let trap_pair = desc_base.wrapping_add(2 * segs::TRAP).value();
        self.machine.chaos_protect(trap_pair, trap_pair + 2);
        let mut st = self.state.borrow_mut();
        st.processes.push(ProcessState::new(user, desc_base));
        st.processes.len() - 1
    }

    /// Installs `sdw` at `segno` in process `pid`'s descriptor segment.
    ///
    /// # Panics
    ///
    /// Panics on bad segment numbers or physical faults.
    pub fn install_sdw(&mut self, pid: usize, segno: u32, sdw: &Sdw) {
        let desc_base = self.state.borrow().processes[pid].dbr.addr;
        Self::poke_sdw(&mut self.machine, desc_base, segno, sdw);
        self.machine.translator_mut().flush_cache();
    }

    fn poke_sdw(machine: &mut Machine, desc_base: AbsAddr, segno: u32, sdw: &Sdw) {
        let base = desc_base.wrapping_add(2 * segno);
        let (w0, w1) = sdw.pack();
        machine.phys_mut().poke(base, w0).expect("descriptor poke");
        machine
            .phys_mut()
            .poke(base.wrapping_add(1), w1)
            .expect("descriptor poke");
    }

    /// Reads the SDW installed at `segno` for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics on physical faults.
    pub fn read_sdw(&self, pid: usize, segno: u32) -> Sdw {
        let desc_base = self.state.borrow().processes[pid].dbr.addr;
        let base = desc_base.wrapping_add(2 * segno);
        let w0 = self.machine.phys().peek(base).expect("descriptor peek");
        let w1 = self
            .machine
            .phys()
            .peek(base.wrapping_add(1))
            .expect("descriptor peek");
        Sdw::unpack(w0, w1)
    }

    /// Makes `pid` the current process and loads its DBR.
    ///
    /// # Panics
    ///
    /// Panics on an invalid pid.
    pub fn activate(&mut self, pid: usize) {
        let dbr = self.state.borrow().processes[pid].dbr;
        self.state.borrow_mut().current = pid;
        self.machine.load_dbr(dbr);
    }

    /// Logs process `pid` out: it stops being schedulable. Its stored
    /// segments and any shared images remain (on-line storage outlives
    /// processes).
    ///
    /// # Panics
    ///
    /// Panics on an invalid pid.
    pub fn logout(&mut self, pid: usize) {
        let mut st = self.state.borrow_mut();
        st.processes[pid].aborted = Some("logout".to_string());
        st.processes[pid].saved = None;
        st.sched.remove(pid);
    }

    /// The supervisor statistics snapshot.
    pub fn stats(&self) -> crate::state::SupervisorStats {
        self.state.borrow().stats
    }

    /// Turns on the machine's metrics recorder (ring crossings, faults,
    /// cycle histograms, per-segment heatmap).
    pub fn enable_metrics(&mut self) {
        self.machine.enable_metrics();
    }

    /// Arms deterministic chaos injection with `plan`. Must happen
    /// during world building (before execution) so record and replay
    /// see the same injection schedule.
    pub fn enable_chaos(&mut self, plan: ring_cpu::FaultPlan) {
        self.machine
            .set_chaos(ring_cpu::ChaosEngine::with_plan(plan));
    }

    /// Runs the chaos protection-invariant checker against the current
    /// world (descriptor brackets, frame-pool/PTW agreement, SDW-cache
    /// coherence). Violations come back typed
    /// ([`crate::invariants::InvariantViolation`]) so callers can
    /// classify them instead of string-matching.
    pub fn check_invariants(&self) -> Result<(), crate::invariants::InvariantViolation> {
        crate::invariants::check(&self.machine, &self.state.borrow())
    }

    /// Captures the complete simulated world — machine image (v2:
    /// registers, memory, I/O, chaos state), the supervisor's host-side
    /// state, and the metrics recorder — as a restartable checkpoint.
    ///
    /// Capture is uncounted and read-only: taking a checkpoint never
    /// perturbs the run (the fleet supervisor checkpoints on a cycle
    /// cadence mid-execution).
    pub fn checkpoint(&self) -> SystemCheckpoint {
        SystemCheckpoint {
            image: self.machine.capture_image(),
            os: self.state.borrow().clone(),
            metrics: self.machine.metrics().clone(),
            cycles: self.machine.cycles(),
        }
    }

    /// Rewinds the world to `ck`: machine image, supervisor state, and
    /// metrics recorder all restored exactly as captured. The system
    /// must have been built with the same configuration that produced
    /// the checkpoint.
    ///
    /// Restoring detaches a copy-on-write boot from its shared image
    /// (memory is rematerialized privately), which is architecturally
    /// invisible but shows up as dirty pages.
    pub fn restore_checkpoint(&mut self, ck: &SystemCheckpoint) -> Result<(), String> {
        self.machine.restore_image(&ck.image)?;
        *self.state.borrow_mut() = ck.os.clone();
        *self.machine.metrics_mut() = ck.metrics.clone();
        Ok(())
    }

    /// The supervisor's fault-recovery counters.
    pub fn chaos_stats(&self) -> crate::state::ChaosRecoveryStats {
        self.state.borrow().chaos
    }

    /// Turns on the span flight recorder: every gate CALL and trap the
    /// supervisor mediates opens a span, closed by the matching
    /// RETURN/RETT, with per-gate cycle attribution.
    pub fn enable_spans(&mut self) {
        self.machine.enable_spans();
    }

    /// Drains the recorded span events (the recorder stays enabled).
    pub fn take_span_events(&mut self) -> Vec<ring_trace::SpanEvent> {
        self.machine.take_span_events()
    }

    /// Attaches the cycle-driven sampling profiler and time-series
    /// pipeline (`ring-prof`). Per-process attribution comes free: the
    /// scheduler's dispatch events ride in the span stream, so sampled
    /// stacks are rooted at the running process. Either period can be
    /// zero to disable that pipeline; enabling sampling also enables
    /// the span recorder.
    pub fn enable_profiler(&mut self, sample_every: u64, timeseries_every: u64) {
        self.machine.enable_profiler(sample_every, timeseries_every);
    }

    /// The sampling profiler (read-only).
    pub fn profiler(&self) -> &ring_prof::Profiler {
        self.machine.profiler()
    }

    /// The interval time-series pipeline (read-only).
    pub fn timeseries(&self) -> &ring_prof::TimeSeries {
        self.machine.timeseries()
    }

    /// The cross-ring call tree of the run so far, aggregated per gate
    /// (sorted by total cycles).
    pub fn span_gate_table(&self) -> Vec<ring_trace::GateStat> {
        let tree = ring_trace::build_tree(self.machine.spans().events(), self.machine.cycles());
        ring_trace::gate_table(&tree)
    }

    /// Builds the unified observability snapshot: machine metrics and
    /// SDW-cache statistics, plus the supervisor's `os.*` counters and
    /// per-process crossing counts in the `extra` section.
    pub fn metrics_snapshot(&self) -> ring_metrics::MetricsSnapshot {
        let mut snap = self.machine.metrics_snapshot();
        let st = self.state.borrow();
        for (k, v) in st.stats.export_pairs() {
            snap.push_extra(k, v);
        }
        if self.machine.chaos().enabled() {
            for (k, v) in st.chaos.export_pairs() {
                snap.push_extra(k, v);
            }
        }
        for (pid, p) in st.processes.iter().enumerate() {
            snap.push_extra(format!("os.proc.{pid}.gate_calls"), p.gate_calls);
            snap.push_extra(format!("os.proc.{pid}.upward_calls"), p.upward_calls);
            snap.push_extra(format!("os.proc.{pid}.preemptions"), p.preemptions);
            snap.push_extra(format!("os.proc.{pid}.page_faults"), p.page_faults);
        }
        let sc = st.sched.stats;
        snap.sched = ring_metrics::SchedStats {
            context_switches: sc.context_switches,
            preemptions: sc.preemptions,
            page_faults_minor: sc.page_faults_minor,
            page_faults_major: sc.page_faults_major,
            evictions: sc.evictions,
            io_blocks: sc.io_blocks,
            page_blocks: sc.page_blocks,
            idle_cycles: sc.idle_cycles,
        };
        snap
    }

    /// The unified snapshot serialized as JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// What the typewriter on the standard channel has printed.
    pub fn tty_printed(&self) -> String {
        self.machine
            .io()
            .device(crate::services::TTY_CHANNEL as usize)
            .printed()
    }
}
