//! Supervisor services: the bodies behind the gates.
//!
//! Each service is an ordinary function over `(&mut Machine, &mut
//! OsState, ...)`; the gate dispatchers in [`crate::gates`] unmarshal
//! arguments (through validated references) and call them. Services
//! charge simulated cycles for the work a compiled supervisor would do,
//! so the benchmarks account software cost as well as hardware cost.

use ring_core::access::Fault;
use ring_core::addr::{SegAddr, SegNo};
use ring_core::registers::PtrReg;
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::io::{Direction, IoSystem};
use ring_cpu::machine::Machine;

use crate::acl::{AclEntry, Modes};
use crate::conventions::segs;
use crate::fs::{Entry, FsError};
use crate::state::OsState;

/// Service status codes returned in the A register.
pub mod status {
    /// Success.
    pub const OK: u64 = 0;
    /// Path or entry not found.
    pub const NOT_FOUND: u64 = 1;
    /// The ACL grants the caller's user no access.
    pub const NO_ACCESS: u64 = 2;
    /// No free segment numbers.
    pub const KST_FULL: u64 = 3;
    /// Malformed argument.
    pub const BAD_ARG: u64 = 4;
    /// The sole-occupant rule refused an ACL change.
    pub const SOLE_OCCUPANT: u64 = 5;
    /// I/O channel busy.
    pub const CHANNEL_BUSY: u64 = 6;
}

/// Simulated software costs, in cycles.
pub mod cost {
    /// Per character converted by the typewriter package.
    pub const CONVERT_PER_CHAR: u64 = 3;
    /// Per word copied into a supervisor buffer.
    pub const COPY_PER_WORD: u64 = 1;
    /// Per directory entry scanned during a search step.
    pub const SEARCH_PER_ENTRY: u64 = 4;
    /// Fixed bookkeeping per initiate.
    pub const INITIATE: u64 = 40;
    /// Fixed bookkeeping per terminate.
    pub const TERMINATE: u64 = 15;
    /// Fixed bookkeeping per ACL update.
    pub const SET_ACL: u64 = 25;
    /// Ring-1 stream formatting, per character.
    pub const FORMAT_PER_CHAR: u64 = 2;
    /// An internal (supervisor-to-supervisor) gate crossing, charged
    /// when a ring-1 layer invokes a ring-0 primitive.
    pub const INTERNAL_GATE_CALL: u64 = 30;
    /// Accounting update.
    pub const ACCT: u64 = 10;
}

/// Segments at most this long are loaded unpaged; longer ones are
/// paged on demand.
pub const SMALL_SEGMENT_WORDS: usize = 4096;

/// The tty output channel number.
pub const TTY_CHANNEL: u8 = 0;

/// Offset of the typewriter output buffer within `SUP_DATA`.
pub const TTY_BUF_OFFSET: u32 = 0;
/// Capacity of the typewriter output buffer, in words.
pub const TTY_BUF_WORDS: u32 = 256;

/// Converts one character to "device code" (the code-conversion step of
/// the typewriter package): sets the ninth bit.
pub fn tty_convert(c: Word) -> Word {
    Word::new((c.raw() & 0xff) | 0x100)
}

/// `initiate`: adds the segment at `path` to the current process's
/// virtual memory, returning its segment number.
///
/// The ACL of the stored segment must grant the process's user some
/// access; the SDW is built from the matching ACL entry with the
/// presence bit off, so contents are demand-loaded at the first
/// reference (segment fault).
pub fn svc_initiate(m: &mut Machine, st: &mut OsState, path: &str) -> Result<u32, u64> {
    m.charge(cost::INITIATE);
    let steps_before = st.fs.search_steps;
    let id = st.fs.resolve(path).map_err(|e| match e {
        FsError::NotFound(_) | FsError::WrongKind(_) | FsError::NotADirectory(_) => {
            status::NOT_FOUND
        }
        _ => status::BAD_ARG,
    })?;
    m.charge((st.fs.search_steps - steps_before) * cost::SEARCH_PER_ENTRY);
    let user = st.current_process().user.clone();
    let Some(entry) = st.fs.segment(id).acl.lookup(&user).cloned() else {
        st.stats.acl_denials += 1;
        return Err(status::NO_ACCESS);
    };
    if !(entry.modes.read || entry.modes.write || entry.modes.execute) {
        st.stats.acl_denials += 1;
        return Err(status::NO_ACCESS);
    }
    if let Some(existing) = st.current_process().segno_of(id) {
        return Ok(existing);
    }
    let words = st.fs.segment(id).data.len().max(1) as u32;
    let proc = st.current_process_mut();
    let segno = proc.alloc_segno().ok_or(status::KST_FULL)?;
    proc.kst
        .insert(segno, crate::process::KstEntry { id, loaded: false });
    let sdw = entry
        .apply(SdwBuilder::new())
        .present(false)
        .bound_words(words)
        .build();
    m.store_descriptor(SegNo::new(segno).expect("segno"), &sdw)
        .map_err(|_| status::BAD_ARG)?;
    Ok(segno)
}

/// `terminate`: removes `segno` from the current process's virtual
/// memory.
pub fn svc_terminate(m: &mut Machine, st: &mut OsState, segno: u32) -> Result<(), u64> {
    m.charge(cost::TERMINATE);
    let proc = st.current_process_mut();
    if proc.kst.remove(&segno).is_none() {
        return Err(status::NOT_FOUND);
    }
    let dead = SdwBuilder::new().present(false).build();
    m.store_descriptor(SegNo::new(segno).expect("segno"), &dead)
        .map_err(|_| status::BAD_ARG)?;
    Ok(())
}

/// `set_acl`: installs or replaces the ACL entry for `for_user` on the
/// segment at `path`, subject to the sole-occupant rule for
/// `caller_ring`.
///
/// If the current process has the segment initiated, its SDW is
/// rebuilt immediately ("to expect the change to be immediately
/// effective").
#[allow(clippy::too_many_arguments)]
pub fn svc_set_acl(
    m: &mut Machine,
    st: &mut OsState,
    path: &str,
    for_user: &str,
    modes: Modes,
    rings: (Ring, Ring, Ring),
    gates: u32,
    caller_ring: Ring,
) -> Result<(), u64> {
    m.charge(cost::SET_ACL);
    let id = st.fs.resolve(path).map_err(|_| status::NOT_FOUND)?;
    let entry = AclEntry::new(for_user, modes, rings, gates).ok_or(status::BAD_ARG)?;
    if st.fs.segment_mut(id).acl.set(entry, caller_ring).is_err() {
        st.stats.acl_denials += 1;
        return Err(status::SOLE_OCCUPANT);
    }
    // Immediate effectiveness for the current process.
    let user = st.current_process().user.clone();
    if let Some(segno) = st.current_process().segno_of(id) {
        if let Some(e) = st.fs.segment(id).acl.lookup(&user).cloned() {
            if let Ok(old) = m.segment_descriptor(SegNo::new(segno).expect("segno")) {
                let sdw = e
                    .apply(SdwBuilder::new())
                    .addr(old.addr)
                    .present(old.present)
                    .unpaged(old.unpaged)
                    .bound(old.bound)
                    .build();
                let _ = m.store_descriptor(SegNo::new(segno).expect("segno"), &sdw);
            }
        }
    }
    Ok(())
}

/// `fs_search`: the complete in-supervisor file search of the paper's
/// Conclusions example — resolves every component of `path` inside the
/// protected supervisor.
pub fn svc_fs_search(m: &mut Machine, st: &mut OsState, path: &str) -> Result<u32, u64> {
    let before = st.fs.search_steps;
    let id = st.fs.resolve(path).map_err(|_| status::NOT_FOUND)?;
    m.charge((st.fs.search_steps - before) * cost::SEARCH_PER_ENTRY);
    Ok(id.0)
}

/// `fs_step`: one directory-search step — the small protected primitive
/// that an *unprotected* library can call repeatedly.
///
/// `dir_handle` 0 names the root; other handles are `DirId + 1`.
/// Returns the encoded next handle: directories as `(DirId + 1)`,
/// segments as `(SegmentId | SEGMENT_FLAG)`.
pub fn svc_fs_step(
    m: &mut Machine,
    st: &mut OsState,
    dir_handle: u64,
    component: &str,
) -> Result<u64, u64> {
    let dir = if dir_handle == 0 {
        st.fs.root()
    } else {
        crate::fs::DirId((dir_handle - 1) as u32)
    };
    let before = st.fs.search_steps;
    let entry = st.fs.step(dir, component).map_err(|_| status::NOT_FOUND)?;
    m.charge((st.fs.search_steps - before) * cost::SEARCH_PER_ENTRY);
    Ok(match entry {
        Entry::Dir(d) => u64::from(d.0) + 1,
        Entry::Segment(s) => u64::from(s.0) | SEGMENT_FLAG,
    })
}

/// Flag bit marking an [`svc_fs_step`] result as a segment.
pub const SEGMENT_FLAG: u64 = 1 << 30;

/// Copies `count` already-converted words from the caller's buffer into
/// the supervisor typewriter buffer and starts the output channel —
/// the *minimal* protected typewriter primitive (only the two functions
/// that genuinely need protection: touching the shared buffer and
/// executing SIO).
pub fn svc_tty_connect(
    m: &mut Machine,
    _st: &mut OsState,
    buf: PtrReg,
    count: u32,
) -> Result<(), u64> {
    if count > TTY_BUF_WORDS {
        return Err(status::BAD_ARG);
    }
    let sup = SegNo::new(segs::SUP_DATA).expect("segno");
    for i in 0..count {
        let w = m
            .read_validated(PtrReg::new(
                buf.ring,
                SegAddr::new(buf.addr.segno, buf.addr.wordno.wrapping_add(i)),
            ))
            .map_err(|_| status::NO_ACCESS)?;
        m.write_validated(
            PtrReg::new(
                Ring::R0,
                SegAddr::from_parts(segs::SUP_DATA, TTY_BUF_OFFSET + i).expect("buffer"),
            ),
            w,
        )
        .map_err(|_| status::BAD_ARG)?;
        m.charge(cost::COPY_PER_WORD);
    }
    let sdw = m.segment_descriptor(sup).map_err(|_| status::BAD_ARG)?;
    let abs = sdw.addr.wrapping_add(TTY_BUF_OFFSET);
    let (w0, w1) = IoSystem::channel_program(TTY_CHANNEL, Direction::Output, abs, count);
    m.start_io(w0, w1).map_err(|e| match e {
        Fault::Derail { .. } => status::CHANNEL_BUSY,
        _ => status::BAD_ARG,
    })
}

/// The *monolithic* typewriter package of the paper's critique: code
/// conversion, buffer copy and channel start all execute in ring 0,
/// maximising the quantity of code with maximum privilege.
pub fn svc_tty_write(
    m: &mut Machine,
    st: &mut OsState,
    buf: PtrReg,
    count: u32,
) -> Result<(), u64> {
    if count > TTY_BUF_WORDS {
        return Err(status::BAD_ARG);
    }
    // Conversion happens in ring 0, character by character, into a
    // scratch area of the supervisor data segment.
    let scratch = TTY_BUF_OFFSET + TTY_BUF_WORDS;
    for i in 0..count {
        let raw = m
            .read_validated(PtrReg::new(
                buf.ring,
                SegAddr::new(buf.addr.segno, buf.addr.wordno.wrapping_add(i)),
            ))
            .map_err(|_| status::NO_ACCESS)?;
        m.charge(cost::CONVERT_PER_CHAR);
        m.write_validated(
            PtrReg::new(
                Ring::R0,
                SegAddr::from_parts(segs::SUP_DATA, scratch + i).expect("scratch"),
            ),
            tty_convert(raw),
        )
        .map_err(|_| status::BAD_ARG)?;
    }
    let converted = PtrReg::new(
        Ring::R0,
        SegAddr::from_parts(segs::SUP_DATA, scratch).expect("scratch"),
    );
    svc_tty_connect(m, st, converted, count)
}

/// Ring-1 stream output: formatting in the outer supervisor layer, then
/// the ring-0 primitive (the internal layering of the paper's "Use of
/// Rings" section). The internal ring-1 → ring-0 crossing is charged as
/// a constant.
pub fn svc_ios_write(
    m: &mut Machine,
    st: &mut OsState,
    buf: PtrReg,
    count: u32,
) -> Result<(), u64> {
    if count > TTY_BUF_WORDS {
        return Err(status::BAD_ARG);
    }
    // Format (convert) at ring 1 into the ring-1 data segment.
    for i in 0..count {
        let raw = m
            .read_validated(PtrReg::new(
                buf.ring,
                SegAddr::new(buf.addr.segno, buf.addr.wordno.wrapping_add(i)),
            ))
            .map_err(|_| status::NO_ACCESS)?;
        m.charge(cost::FORMAT_PER_CHAR);
        m.write_validated(
            PtrReg::new(
                Ring::R1,
                SegAddr::from_parts(segs::RING1_DATA, i).expect("ring1 buffer"),
            ),
            tty_convert(raw),
        )
        .map_err(|_| status::BAD_ARG)?;
    }
    // Internal gate call to the ring-0 primitive: a real downward call
    // switches the ring of execution to 0 for the primitive's body and
    // back on return. The crossing itself is charged as a constant.
    m.charge(cost::INTERNAL_GATE_CALL);
    st.stats.gate_calls_hcs += 1;
    let converted = PtrReg::new(
        Ring::R1,
        SegAddr::from_parts(segs::RING1_DATA, 0).expect("ring1 buffer"),
    );
    let outer = m.ipr();
    m.set_ipr(ring_core::registers::Ipr::new(Ring::R0, outer.addr));
    let result = svc_tty_connect(m, st, converted, count);
    m.set_ipr(outer);
    result
}

/// Ring-1 accounting: charge `units` to the current user's account.
pub fn svc_acct_charge(m: &mut Machine, st: &mut OsState, units: i64) -> Result<(), u64> {
    m.charge(cost::ACCT);
    let user = st.current_process().user.clone();
    *st.accounts.entry(user).or_insert(0) += units;
    Ok(())
}

/// Ring-1 accounting: read the current user's balance.
pub fn svc_acct_read(m: &mut Machine, st: &mut OsState) -> Result<i64, u64> {
    m.charge(cost::ACCT);
    let user = st.current_process().user.clone();
    Ok(*st.accounts.get(&user).unwrap_or(&0))
}
