//! Ring-0 recovery from detected hardware damage.
//!
//! A parity-error trap names the damaged physical word; this module
//! classifies what that word *was* — page-frame contents, a page-table
//! word, a descriptor-segment word, part of a loaded segment image —
//! and repairs, rebuilds, or confines accordingly:
//!
//! * **resident page frame** — a clean page is re-fetched from its
//!   home image (the copy in core was disposable); a modified page has
//!   no good copy anywhere, so the owning process is killed and the
//!   damage confined to it;
//! * **page-table word** — the mapping can no longer be trusted: the
//!   frame is abandoned, its contents preserved on the drum, and the
//!   PTW marked missing so the next reference re-faults cleanly;
//! * **descriptor-segment word** — the **salvager** walks the whole
//!   descriptor segment and rewrites every damaged or
//!   bracket-inconsistent SDW pair as missing (the paper's R1 ≤ R2 ≤ R3
//!   invariant is the salvager's consistency test); a later reference
//!   through a salvaged SDW re-faults and demand loading rebuilds it,
//!   or aborts the one process that depended on it;
//! * **loaded segment image** — the damaged word is re-poked from
//!   on-line storage;
//! * **anything else** — the damage is confined by killing the process
//!   whose address space contains the word (the current process when
//!   no owner can be named).
//!
//! Every path ends with the poison cleared, so one injection produces
//! exactly one recovery. The recovery code touches suspect structures
//! only through `peek`/`poke` (poison-blind, never faulting on
//! parity): a recovery path that could itself take a parity trap would
//! recurse into the trap handler it is running under.
//!
//! With the fast path enabled the PTW `modified` bit can under-report
//! (a TLB-hit store needn't re-walk the PTW — the same reason eviction
//! writes every victim back), so "clean page, re-fetch from image" is
//! a policy decision, not a proof; [`crate::invariants`] re-checks the
//! world after every recovery to catch any damage that escapes.

use ring_core::addr::AbsAddr;
use ring_core::sdw::Sdw;
use ring_core::word::Word;
use ring_cpu::machine::Machine;
use ring_segmem::frames::{sweep_out, Evicted};
use ring_segmem::paging::{pages_for, Ptw, PAGE_WORDS};
use ring_segmem::PageKey;

use crate::fs::SegmentId;
use crate::state::OsState;

/// What a parity recovery decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParityOutcome {
    /// The damage was repaired or confined to an already-stopped
    /// process; the faulting process resumes.
    Recovered,
    /// The damage is confined to the current process, which must die.
    KillCurrent(String),
}

/// Recovers from a parity error at physical word `abs`.
pub fn recover_parity(m: &mut Machine, s: &mut OsState, abs: u32) -> ParityOutcome {
    let Some(addr) = AbsAddr::new(abs) else {
        // A parity trap naming an impossible address: nothing to
        // repair, nothing to attribute.
        return ParityOutcome::KillCurrent(format!("parity error at bad address {abs:#o}"));
    };

    // (1) The damaged word is a PTW the frame pool relies on: abandon
    // the frame (its mapping is no longer trustworthy), preserve the
    // page on the drum, and mark the page missing so the next
    // reference re-faults it in.
    let released = s.frames.as_mut().and_then(|p| p.release_ptw(addr));
    if let Some((frame, owner)) = released {
        let victim = Evicted {
            owner,
            modified: true,
        };
        match sweep_out(m.phys_mut(), &victim, frame, PAGE_WORDS as usize) {
            Ok(words) => {
                if let Some(entry) = s
                    .processes
                    .get(owner.pid)
                    .and_then(|p| p.lookup(owner.segno))
                {
                    s.backing.store(
                        PageKey {
                            seg: entry.id.0,
                            page: owner.page,
                        },
                        words,
                    );
                }
            }
            // The frame itself is unreadable too; just unmap.
            Err(_) => {
                let _ = m.phys_mut().poke(addr, Ptw::MISSING.pack());
            }
        }
        m.translator_mut().flush_cache();
        m.phys_mut().clear_poison(abs);
        s.chaos.salvaged += 1;
        s.chaos.recovered += 1;
        return ParityOutcome::Recovered;
    }

    // (2) The damaged word sits inside a resident page frame: a clean
    // page is re-fetched from its home image; a modified page has no
    // good copy, so the owner dies.
    let frame_of = abs / PAGE_WORDS;
    let slot = s.frames.as_ref().and_then(|p| {
        p.resident_set()
            .iter()
            .find(|&&(f, _)| f == frame_of)
            .copied()
    });
    if let Some((frame, owner)) = slot {
        let modified = m
            .phys()
            .peek(owner.ptw_addr)
            .map(|w| Ptw::unpack(w).modified)
            .unwrap_or(true);
        let entry = s
            .processes
            .get(owner.pid)
            .and_then(|p| p.lookup(owner.segno))
            .cloned();
        if modified || entry.is_none() {
            m.phys_mut().clear_poison(abs);
            return kill_owner(
                s,
                owner.pid,
                &format!(
                    "parity error in modified page {}/{}",
                    owner.segno, owner.page
                ),
            );
        }
        let entry = entry.expect("checked above");
        let data = &s.fs.segment(entry.id).data;
        let base = frame * PAGE_WORDS;
        let lo = (owner.page * PAGE_WORDS) as usize;
        for i in 0..PAGE_WORDS as usize {
            let w = data.get(lo + i).copied().unwrap_or(Word::ZERO);
            let _ = m
                .phys_mut()
                .poke(AbsAddr::from_bits(u64::from(base + i as u32)), w);
        }
        m.translator_mut().flush_cache();
        m.phys_mut().clear_poison(abs);
        s.chaos.refetched += 1;
        s.chaos.recovered += 1;
        return ParityOutcome::Recovered;
    }

    // (3) The damaged word is part of some process's descriptor
    // segment: run the salvager over that descriptor segment.
    for pid in 0..s.processes.len() {
        let dbr = s.processes[pid].dbr;
        let lo = dbr.addr.value();
        let hi = lo + 2 * dbr.bound;
        if abs >= lo && abs < hi {
            let fixed = salvage_descriptor(m, s, pid);
            m.phys_mut().clear_poison(abs);
            s.chaos.salvaged += fixed;
            s.chaos.recovered += 1;
            return ParityOutcome::Recovered;
        }
    }

    // (4) The damaged word belongs to a loaded segment image: re-fetch
    // an unpaged image word from on-line storage, or mark a damaged
    // page-table word of a shared paged image missing.
    for i in 0..s.fs.segment_count() {
        let id = SegmentId(i as u32);
        let seg = s.fs.segment(id);
        let Some(img) = seg.image else { continue };
        let lo = img.addr.value();
        if img.unpaged {
            let hi = lo + seg.data.len() as u32;
            if abs >= lo && abs < hi {
                let w = seg.data[(abs - lo) as usize];
                let _ = m.phys_mut().poke(addr, w);
                m.phys_mut().clear_poison(abs);
                s.chaos.refetched += 1;
                s.chaos.recovered += 1;
                return ParityOutcome::Recovered;
            }
        } else {
            let hi = lo + pages_for(seg.data.len() as u32);
            if abs >= lo && abs < hi {
                // A PTW of a shared image outside any frame pool: drop
                // the mapping and let demand paging rebuild it.
                let _ = m.phys_mut().poke(addr, Ptw::MISSING.pack());
                m.translator_mut().flush_cache();
                m.phys_mut().clear_poison(abs);
                s.chaos.salvaged += 1;
                s.chaos.recovered += 1;
                return ParityOutcome::Recovered;
            }
        }
    }

    // (5) The damaged word is inside some process's private unpaged
    // segment (a stack, typically): the damage is that process's alone.
    if let Some(pid) = owner_of_unpaged_word(m, s, abs) {
        m.phys_mut().clear_poison(abs);
        return kill_owner(s, pid, &format!("parity error at {abs:#o}"));
    }

    // (6) No structure claims the word: confine to the running process.
    m.phys_mut().clear_poison(abs);
    ParityOutcome::KillCurrent(format!("parity error at {abs:#o}"))
}

/// Kills `pid` if it is not the current process (the caller's trap
/// return stays valid); asks the dispatcher to kill the current
/// process otherwise.
fn kill_owner(s: &mut OsState, pid: usize, reason: &str) -> ParityOutcome {
    if pid == s.current {
        return ParityOutcome::KillCurrent(reason.to_string());
    }
    crate::traps::kill_pid(s, pid, reason);
    s.chaos.killed += 1;
    ParityOutcome::Recovered
}

/// The salvager: walks `pid`'s descriptor segment and rewrites every
/// damaged pair — a poisoned word, or a present SDW whose brackets
/// violate R1 ≤ R2 ≤ R3 — as a missing SDW. Returns how many pairs it
/// rewrote. All access is by `peek`/`poke`: the structure under repair
/// is exactly the one that cannot be trusted to read cleanly.
pub fn salvage_descriptor(m: &mut Machine, s: &OsState, pid: usize) -> u64 {
    let dbr = s.processes[pid].dbr;
    let mut fixed = 0;
    let missing = Sdw::unpack(Word::ZERO, Word::ZERO);
    let (m0, m1) = missing.pack();
    for segno in 0..dbr.bound {
        let a0 = dbr.addr.wrapping_add(2 * segno);
        let a1 = a0.wrapping_add(1);
        let poisoned = m.phys().is_poisoned(a0) || m.phys().is_poisoned(a1);
        let (Ok(w0), Ok(w1)) = (m.phys().peek(a0), m.phys().peek(a1)) else {
            continue;
        };
        let sdw = Sdw::unpack(w0, w1);
        let brackets_ok = sdw.r1 <= sdw.r2 && sdw.r2 <= sdw.r3;
        if poisoned || (sdw.present && !brackets_ok) {
            let _ = m.phys_mut().poke(a0, m0);
            let _ = m.phys_mut().poke(a1, m1);
            m.phys_mut().clear_poison(a0.value());
            m.phys_mut().clear_poison(a1.value());
            fixed += 1;
        }
    }
    // The salvager may have rewritten pairs that cached translations
    // still mirror.
    m.translator_mut().flush_cache();
    fixed
}

/// Finds the process whose descriptor segment maps an unpaged present
/// segment containing physical word `abs`, walking descriptor segments
/// with poison-blind peeks. Shared supervisor segments appear in every
/// descriptor segment; the first claimant wins, which is the best
/// attribution available.
fn owner_of_unpaged_word(m: &Machine, s: &OsState, abs: u32) -> Option<usize> {
    for pid in 0..s.processes.len() {
        if s.processes[pid].aborted.is_some() {
            continue;
        }
        let dbr = s.processes[pid].dbr;
        for segno in 0..dbr.bound {
            let a0 = dbr.addr.wrapping_add(2 * segno);
            let a1 = a0.wrapping_add(1);
            if m.phys().is_poisoned(a0) || m.phys().is_poisoned(a1) {
                continue;
            }
            let (Ok(w0), Ok(w1)) = (m.phys().peek(a0), m.phys().peek(a1)) else {
                continue;
            };
            let sdw = Sdw::unpack(w0, w1);
            if !sdw.present || !sdw.unpaged {
                continue;
            }
            let lo = sdw.addr.value();
            let hi = lo + sdw.length_words();
            if abs >= lo && abs < hi {
                return Some(pid);
            }
        }
    }
    None
}
