//! The traditional supervisor/user two-mode machine.
//!
//! The paper positions rings as "a methodical generalization of the
//! traditional supervisor/user protection scheme". This fixture models
//! that ancestor: there are only two domains — user code and a kernel —
//! and *every* protected operation is a trap into the kernel (a system
//! call by derail), which validates all arguments in software and runs
//! the service with full privilege. There are no intermediate rings, so
//! user-constructed protected subsystems are impossible: anything
//! needing protection must be added to the kernel.

use ring_core::access::vector;
use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::registers::{Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::{Machine, RunExit};
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::World;

/// Kernel software costs.
pub mod cost {
    /// System-call dispatch (mode switch bookkeeping).
    pub const DISPATCH: u64 = 15;
    /// Per-argument software validation.
    pub const PER_ARG: u64 = 6;
}

/// The system-call number of the fixture's "sum arguments" service.
pub const SYS_SUM: u32 = 1;

/// Segment numbers.
pub mod segs {
    /// User code.
    pub const USER_CODE: u32 = 10;
    /// User data.
    pub const USER_DATA: u32 = 11;
}

/// The two-mode crossing fixture: user code invokes the kernel's sum
/// service on `n_args` arguments via a trap.
pub struct TwoMode {
    /// The underlying bare world.
    pub world: World,
}

impl TwoMode {
    /// Builds the fixture.
    pub fn new(n_args: u32) -> TwoMode {
        let mut world = World::new();
        let code = world.add_segment(
            segs::USER_CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
        );
        world.add_segment(
            segs::USER_DATA,
            SdwBuilder::data(Ring::R4, Ring::R4).bound_words(128),
        );
        world.add_standard_stacks(16);
        let trap = world.add_trap_segment();

        // The kernel: dispatches derail codes.
        world.machine.register_native(trap, move |m, entry| {
            if entry.value() != vector::DERAIL {
                return Ok(NativeAction::Halt);
            }
            let (_, _, _, detail) = m.fault_info()?;
            let code = detail.raw() as u32;
            if code != SYS_SUM {
                return Ok(NativeAction::Halt); // exit convention
            }
            m.charge(cost::DISPATCH);
            let mut state = m.saved_state()?;
            // Validate then execute with full privilege: read each
            // argument pair through the caller's view, then run.
            let ap = state.prs[1];
            let n = state.x[7];
            let mut sum = Word::ZERO;
            for i in 0..n {
                let slot = PtrReg::new(
                    state.ipr.ring,
                    SegAddr::new(ap.addr.segno, ap.addr.wordno.wrapping_add(2 * i)),
                );
                let argp = m.read_pointer_validated(slot)?;
                m.charge(cost::PER_ARG);
                sum = sum.wrapping_add(m.read_validated(argp)?);
            }
            m.write_validated(
                PtrReg::new(
                    Ring::R0,
                    SegAddr::from_parts(segs::USER_DATA, 63).expect("result"),
                ),
                sum,
            )?;
            // Resume *after* the trapping instruction (a system call
            // returns to the next instruction, unlike a fault retry).
            state.ipr = Ipr::new(
                state.ipr.ring,
                SegAddr::new(state.ipr.addr.segno, state.ipr.addr.wordno.wrapping_add(1)),
            );
            m.set_saved_state(&state)?;
            Ok(NativeAction::Resume)
        });

        // User program: point PR1 at the argument list, trap, exit.
        let mut asm = format!(
            "
        eap pr1, args
        drl {SYS_SUM}
        drl 0o777
args:
"
        );
        for i in 0..n_args.max(1) {
            asm.push_str(&format!("        its 4, {}, {}\n", segs::USER_DATA, i));
        }
        let out = ring_asm::assemble(&asm).expect("user program");
        for (i, w) in out.words.iter().enumerate() {
            world.poke(code, i as u32, *w);
        }
        let data = SegNo::new(segs::USER_DATA).expect("segno");
        for i in 0..n_args.max(1) {
            world.poke(data, i, Word::new(u64::from(10 + i)));
        }

        let mut f = TwoMode { world };
        f.reset(n_args);
        f
    }

    /// Resets to the start of the user program.
    pub fn reset(&mut self, n_args: u32) {
        self.world.machine.clear_halt();
        let code = SegNo::new(segs::USER_CODE).expect("segno");
        self.world
            .machine
            .set_ipr(Ipr::new(Ring::R4, SegAddr::new(code, WordNo::ZERO)));
        for n in 0..8 {
            self.world
                .machine
                .set_pr(n, PtrReg::new(Ring::R4, SegAddr::new(code, WordNo::ZERO)));
        }
        self.world.machine.set_xreg(7, n_args);
    }

    /// Runs one system-call round trip, returning its cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if the run does not halt cleanly.
    pub fn run_once(&mut self, n_args: u32) -> u64 {
        self.reset(n_args);
        let before = self.world.machine.cycles();
        let exit = self.world.machine.run(10_000);
        assert_eq!(exit, RunExit::Halted, "two-mode round trip must halt");
        self.world.machine.cycles() - before
    }

    /// The result word the kernel stored.
    pub fn result(&self) -> Word {
        self.world
            .peek(SegNo::new(segs::USER_DATA).expect("segno"), 63)
    }

    /// Direct access to the machine.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.world.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_call_round_trip_computes() {
        let mut f = TwoMode::new(3);
        let cycles = f.run_once(3);
        assert!(cycles > 0);
        assert_eq!(f.result().raw(), 10 + 11 + 12);
        // Two traps: the system call and the exit derail.
        assert_eq!(f.world.machine.stats().traps, 2);
    }

    #[test]
    fn matches_hardware_fixture_result() {
        for n in 1..=4 {
            let mut t = TwoMode::new(n);
            t.run_once(n);
            let mut h = crate::baseline::hardware::HardRings::new(n, Ring::R1);
            h.run_once(n);
            assert_eq!(t.result(), h.result(), "same computation, n={n}");
        }
    }

    #[test]
    fn trap_based_call_costs_more_than_hardware_call() {
        let two = TwoMode::new(2).run_once(2);
        let hard = crate::baseline::hardware::HardRings::new(2, Ring::R1).run_once(2);
        assert!(
            two > hard,
            "a trap-based protected call must cost more (two={two}, hard={hard})"
        );
    }
}
