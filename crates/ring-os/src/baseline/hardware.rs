//! The hardware-ring fixture matched to [`crate::baseline::soft645`]:
//! the *same* workload — ring-4 user code calling a ring-1 service with
//! `n` arguments — running on the paper's hardware mechanisms. One
//! descriptor segment, brackets and gates in the SDW, CALL/RETURN cross
//! rings without a single trap, and argument references are validated
//! per reference by the effective-ring machinery instead of up front by
//! a gatekeeper.

use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::registers::{Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::RunExit;
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::World;

/// Segment numbers (aligned with the soft645 fixture for readability).
pub mod segs {
    /// User (ring 4) code segment.
    pub const USER_CODE: u32 = 10;
    /// User data segment.
    pub const USER_DATA: u32 = 11;
    /// The protected ring-1 service segment.
    pub const SERVICE: u32 = 20;
}

/// The hardware-rings crossing fixture.
pub struct HardRings {
    /// The underlying bare world.
    pub world: World,
    user_entry: u32,
}

impl HardRings {
    /// Builds the fixture. The service reads its `n_args` arguments
    /// through the automatically validated argument pointers, sums
    /// them, and stores the sum at `USER_DATA[63]` through a
    /// caller-level pointer. `target_ring` selects the service's
    /// execute bracket (use `Ring::R4` for the same-ring control).
    pub fn new(n_args: u32, target_ring: Ring) -> HardRings {
        let mut world = World::new();
        let code = world.add_segment(
            segs::USER_CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
        );
        world.add_segment(
            segs::USER_DATA,
            SdwBuilder::data(Ring::R4, Ring::R4).bound_words(128),
        );
        let service = world.add_segment(
            segs::SERVICE,
            SdwBuilder::procedure(target_ring, target_ring, Ring::R5)
                .gates(1)
                .bound_words(16),
        );
        world.add_standard_stacks(16);
        let trap = world.add_trap_segment();
        world
            .machine
            .register_native(trap, |_, _| Ok(NativeAction::Halt));

        // The service: argument references go through arg_pointer /
        // read_validated, i.e. the hardware validates each one at the
        // caller's effective ring — no gatekeeper anywhere.
        world.machine.register_native(service, move |m, _| {
            let ap = m.pr(1);
            let n = m.xreg(7);
            let mut sum = Word::ZERO;
            for i in 0..n {
                let argp = m.arg_pointer(ap, i)?;
                sum = sum.wrapping_add(m.read_validated(argp)?);
            }
            m.write_validated(
                PtrReg::new(
                    m.pr(1).ring,
                    SegAddr::from_parts(segs::USER_DATA, 63).expect("result"),
                ),
                sum,
            )?;
            Ok(NativeAction::Return { via: m.pr(2) })
        });

        // Identical user program to the soft645 fixture.
        let mut asm = String::from(
            "
        eap pr1, args
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0
ret0:   drl 0o777
gatep:  its 4, 20, 0
args:
",
        );
        for i in 0..n_args.max(1) {
            asm.push_str(&format!("        its 4, {}, {}\n", segs::USER_DATA, i));
        }
        let out = ring_asm::assemble(&asm).expect("user program");
        for (i, w) in out.words.iter().enumerate() {
            world.poke(code, i as u32, *w);
        }
        let data = SegNo::new(segs::USER_DATA).expect("segno");
        for i in 0..n_args.max(1) {
            world.poke(data, i, Word::new(u64::from(10 + i)));
        }

        let mut f = HardRings {
            world,
            user_entry: 0,
        };
        f.reset(n_args);
        f
    }

    /// Resets the processor to the start of the user program.
    pub fn reset(&mut self, n_args: u32) {
        self.world.machine.clear_halt();
        let code = SegNo::new(segs::USER_CODE).expect("segno");
        self.world.machine.set_ipr(Ipr::new(
            Ring::R4,
            SegAddr::new(code, WordNo::new(self.user_entry).expect("entry")),
        ));
        for n in 0..8 {
            self.world
                .machine
                .set_pr(n, PtrReg::new(Ring::R4, SegAddr::new(code, WordNo::ZERO)));
        }
        self.world.machine.set_xreg(7, n_args);
    }

    /// Runs one call/return round trip, returning its cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if the run does not halt cleanly.
    pub fn run_once(&mut self, n_args: u32) -> u64 {
        self.reset(n_args);
        let before = self.world.machine.cycles();
        let exit = self.world.machine.run(10_000);
        assert_eq!(exit, RunExit::Halted, "hardware round trip must halt");
        self.world.machine.cycles() - before
    }

    /// The result word the service stored.
    pub fn result(&self) -> Word {
        self.world
            .peek(SegNo::new(segs::USER_DATA).expect("segno"), 63)
    }

    /// Traps taken so far (should stay at the single exit derail per
    /// run for the cross-ring case — that is the paper's point).
    pub fn traps(&self) -> u64 {
        self.world.machine.stats().traps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_ring_call_takes_no_crossing_traps() {
        let mut f = HardRings::new(3, Ring::R1);
        let cycles = f.run_once(3);
        assert!(cycles > 0);
        assert_eq!(f.result().raw(), 10 + 11 + 12);
        // Only the exit derail trapped; the downward call and upward
        // return were pure hardware.
        assert_eq!(f.traps(), 1);
        let st = f.world.machine.stats();
        assert_eq!(st.calls_downward, 1);
        assert_eq!(st.returns_upward, 1);
    }

    #[test]
    fn same_ring_and_cross_ring_cost_identically() {
        let same = HardRings::new(2, Ring::R4).run_once(2);
        let cross = HardRings::new(2, Ring::R1).run_once(2);
        assert_eq!(
            same, cross,
            "the headline claim: a protected-subsystem call is identical \
             to a companion-procedure call"
        );
    }

    #[test]
    fn matches_soft645_result_for_all_arg_counts() {
        for n in 1..=6 {
            let mut h = HardRings::new(n, Ring::R1);
            h.run_once(n);
            let mut s = crate::baseline::soft645::Soft645::new(n);
            s.run_once(n);
            assert_eq!(h.result(), s.result(), "same computation, n={n}");
        }
    }

    #[test]
    fn hardware_is_cheaper_than_software_rings() {
        let hard = HardRings::new(4, Ring::R1).run_once(4);
        let soft = crate::baseline::soft645::Soft645::new(4).run_once(4);
        assert!(
            soft > 2 * hard,
            "software rings should cost several times hardware rings \
             (hard={hard}, soft={soft})"
        );
    }
}
