//! Software-implemented rings, as on the Honeywell 645.
//!
//! "Because the Honeywell 645 was designed around the usual
//! supervisor/user protection method, the version of Multics for this
//! machine implements rings by trapping to a supervisor procedure when
//! downward calls and upward returns are performed."
//!
//! The scheme modelled here is the Graham–Daley software implementation
//! the paper describes: **one descriptor segment per ring**. An SDW in
//! ring r's descriptor segment describes what ring r may do — there are
//! no brackets spanning rings, so a cross-ring transfer is simply an
//! access violation in the current descriptor segment. A software
//! *gatekeeper* fields that violation: it looks the target up in its
//! gate table, validates the argument list in software (the hardware
//! cannot), switches the DBR to the target ring's descriptor segment
//! (flushing the SDW associative memory), and resumes in the callee.
//! The subsequent upward return faults symmetrically and is switched
//! back.
//!
//! Every cost the paper's hardware removes is present: two traps per
//! call/return pair, per-argument software validation, two DBR loads,
//! and two associative-memory flushes.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::access::vector;
use ring_core::addr::{AbsAddr, SegAddr, SegNo, WordNo};
use ring_core::registers::{Dbr, Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::{Machine, MachineConfig, RunExit};
use ring_cpu::native::NativeAction;
use ring_segmem::layout::PhysAllocator;

/// Software gatekeeper cycle costs (the work a 645 supervisor did on
/// every crossing).
pub mod cost {
    /// Gate-table lookup and legality checks.
    pub const GATE_VALIDATE: u64 = 20;
    /// Per-argument software validation (read the indirect pair, check
    /// the caller's access to the target).
    pub const PER_ARG: u64 = 6;
    /// DBR switch bookkeeping (beyond the counted memory traffic and
    /// the associative-memory flush it causes).
    pub const DBR_SWITCH: u64 = 8;
    /// Return-path bookkeeping.
    pub const RETURN_VALIDATE: u64 = 12;
}

/// Gatekeeper statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoftStats {
    /// Downward crossings mediated.
    pub crossings: u64,
    /// Upward returns mediated.
    pub returns: u64,
    /// Arguments validated in software.
    pub args_validated: u64,
    /// Violations that matched neither a gate nor a pending return.
    pub refused: u64,
}

struct GateTable {
    /// Registered software gates: (location, target ring).
    gates: Vec<(SegAddr, Ring)>,
    /// Pending returns: (continuation, caller ring) — a push-down
    /// stack.
    pending: Vec<(SegAddr, Ring)>,
    stats: SoftStats,
}

/// Standard segment numbers of the fixture.
pub mod segs {
    /// Trap segment (present in every ring's descriptor).
    pub const TRAP: u32 = 1;
    /// User (ring 4) code segment.
    pub const USER_CODE: u32 = 10;
    /// User data segment.
    pub const USER_DATA: u32 = 11;
    /// The protected (ring 1) service segment.
    pub const SERVICE: u32 = 20;
    /// Stack base (`+ ring`).
    pub const STACK_BASE: u32 = 48;
    /// Descriptor slots per ring.
    pub const SLOTS: u32 = 64;
}

/// A machine running the 645-style software-ring scheme, set up for the
/// crossing benchmark: ring-4 user code calling a ring-1 service with
/// `n_args` arguments.
pub struct Soft645 {
    /// The machine.
    pub machine: Machine,
    desc: [AbsAddr; 8],
    user_entry: u32,
    stats: Rc<RefCell<GateTable>>,
}

fn poke_sdw(m: &mut Machine, desc: AbsAddr, segno: u32, sdw: &ring_core::sdw::Sdw) {
    let base = desc.wrapping_add(2 * segno);
    let (w0, w1) = sdw.pack();
    m.phys_mut().poke(base, w0).expect("descriptor poke");
    m.phys_mut()
        .poke(base.wrapping_add(1), w1)
        .expect("descriptor poke");
}

impl Soft645 {
    /// Builds the fixture. The service body reads its `n_args`
    /// arguments (with *software*-supplied full privilege, as a 645
    /// supervisor did after gatekeeper validation), sums them, and
    /// stores the sum at `USER_DATA[63]`.
    pub fn new(n_args: u32) -> Soft645 {
        let config = MachineConfig {
            trap_segno: SegNo::new(segs::TRAP).expect("segno"),
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(512 * 1024, config);
        let mut alloc = PhysAllocator::new(0o100, 512 * 1024);

        // Storage shared by all rings' descriptors.
        let trap_store = alloc.alloc(256).expect("trap storage");
        let code_store = alloc.alloc(256).expect("code storage");
        let data_store = alloc.alloc(128).expect("data storage");
        let service_store = alloc.alloc(16).expect("service storage");
        let stack_store: Vec<AbsAddr> = (0..8).map(|_| alloc.alloc(256).expect("stack")).collect();

        // Per-ring descriptor segments: flags-only views. Brackets are
        // pinned to [r, r] so the one ring the descriptor serves sees
        // exactly its flags.
        let mut desc = [AbsAddr::ZERO; 8];
        for r in Ring::all() {
            let d = alloc.alloc(2 * segs::SLOTS).expect("descriptor");
            desc[r.number() as usize] = d;
            // Trap segment: ring-0 only, present everywhere (the trap
            // forces ring 0; its fetch is validated in the *current*
            // descriptor segment).
            poke_sdw(
                &mut machine,
                d,
                segs::TRAP,
                &SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0)
                    .write(true)
                    .addr(trap_store)
                    .bound_words(256)
                    .build(),
            );
            // User code: executable only in ring 4's view; readable in
            // ring 1's view (the supervisor reads argument lists).
            let user_code = if r == Ring::R4 {
                SdwBuilder::procedure(r, r, r)
            } else {
                SdwBuilder::new().rings(r, r, r).read(true)
            };
            poke_sdw(
                &mut machine,
                d,
                segs::USER_CODE,
                &user_code.addr(code_store).bound_words(256).build(),
            );
            // User data: read/write in both the user view and the
            // supervisor view.
            poke_sdw(
                &mut machine,
                d,
                segs::USER_DATA,
                &SdwBuilder::data(r, r)
                    .addr(data_store)
                    .bound_words(128)
                    .build(),
            );
            // The service segment: executable only in ring 1's view;
            // present-but-not-executable in ring 4's view, so the CALL
            // faults there (the crossing trap).
            let service = if r == Ring::R1 {
                SdwBuilder::procedure(r, r, r)
            } else {
                SdwBuilder::new().rings(r, r, r).read(true)
            };
            poke_sdw(
                &mut machine,
                d,
                segs::SERVICE,
                &service.addr(service_store).bound_words(16).build(),
            );
            // Stacks.
            for s in Ring::all() {
                poke_sdw(
                    &mut machine,
                    d,
                    segs::STACK_BASE + u32::from(s.number()),
                    &SdwBuilder::data(r, r)
                        .addr(stack_store[s.number() as usize])
                        .bound_words(256)
                        .build(),
                );
            }
        }

        let table = Rc::new(RefCell::new(GateTable {
            gates: vec![(
                SegAddr::from_parts(segs::SERVICE, 0).expect("gate"),
                Ring::R1,
            )],
            pending: Vec::new(),
            stats: SoftStats::default(),
        }));

        // The gatekeeper: a native ring-0 trap handler.
        let gk = table.clone();
        let desc_copy = desc;
        machine.register_native(SegNo::new(segs::TRAP).expect("segno"), move |m, entry| {
            let v = entry.value();
            if v == vector::DERAIL || v != vector::ACCESS_VIOLATION {
                return Ok(NativeAction::Halt);
            }
            let (_, _, target, _) = m.fault_info()?;
            let mut t = gk.borrow_mut();
            // Downward crossing?
            if let Some(&(_, tring)) = t.gates.iter().find(|(g, _)| *g == target) {
                t.stats.crossings += 1;
                m.charge(cost::GATE_VALIDATE);
                let mut state = m.saved_state()?;
                // Software argument validation: read each indirect pair
                // through the caller's view and check the named word is
                // accessible to the caller. The fixture convention puts
                // the argument count in the caller's X7.
                let ap = state.prs[1];
                let nargs = state.x[7];
                for i in 0..nargs {
                    let slot = PtrReg::new(
                        state.ipr.ring,
                        SegAddr::new(ap.addr.segno, ap.addr.wordno.wrapping_add(2 * i)),
                    );
                    let argp = m.read_pointer_validated(slot)?;
                    let _ = m.read_validated(argp)?;
                    m.charge(cost::PER_ARG);
                    t.stats.args_validated += 1;
                }
                // Record the pending return and switch worlds.
                t.pending.push((state.prs[2].addr, state.ipr.ring));
                m.charge(cost::DBR_SWITCH);
                m.load_dbr(Dbr::new(
                    desc_copy[tring.number() as usize],
                    segs::SLOTS,
                    SegNo::new(segs::STACK_BASE).expect("segno"),
                ));
                state.ipr = Ipr::new(tring, target);
                m.set_saved_state(&state)?;
                return Ok(NativeAction::Resume);
            }
            // Upward return?
            if let Some(pos) = t.pending.iter().rposition(|(cont, _)| *cont == target) {
                let (cont, cring) = t.pending.remove(pos);
                t.stats.returns += 1;
                m.charge(cost::RETURN_VALIDATE + cost::DBR_SWITCH);
                m.load_dbr(Dbr::new(
                    desc_copy[cring.number() as usize],
                    segs::SLOTS,
                    SegNo::new(segs::STACK_BASE).expect("segno"),
                ));
                let mut state = m.saved_state()?;
                state.ipr = Ipr::new(cring, cont);
                m.set_saved_state(&state)?;
                return Ok(NativeAction::Resume);
            }
            t.stats.refused += 1;
            Ok(NativeAction::Halt)
        });

        // The service body: native in the SERVICE segment. Reads the
        // arguments with supervisor privilege (ring-1 view), sums them,
        // stores the sum, then attempts the hardware RETURN — which
        // faults in the ring-1 view and is mediated back.
        machine.register_native(SegNo::new(segs::SERVICE).expect("segno"), move |m, _| {
            let ap = m.pr(1);
            let n = m.xreg(7);
            let mut sum = Word::ZERO;
            for i in 0..n {
                // Read the indirect pair with ring-1 privilege (the
                // gatekeeper already validated it in software).
                let w0 = m.read_validated(PtrReg::new(
                    Ring::R1,
                    SegAddr::new(ap.addr.segno, ap.addr.wordno.wrapping_add(2 * i)),
                ))?;
                let (_, addr) = ring_core::addr::unpack_pointer(w0);
                let v = m.read_validated(PtrReg::new(Ring::R1, addr))?;
                sum = sum.wrapping_add(v);
            }
            m.write_validated(
                PtrReg::new(
                    Ring::R1,
                    SegAddr::from_parts(segs::USER_DATA, 63).expect("result"),
                ),
                sum,
            )?;
            Ok(NativeAction::Return { via: m.pr(2) })
        });

        // User program: set up AP/RP, CALL the service, exit.
        let mut asm = String::from(
            "
        eap pr1, args
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0
ret0:   drl 0o777
gatep:  its 4, 20, 0
args:
",
        );
        for i in 0..n_args.max(1) {
            asm.push_str(&format!("        its 4, {}, {}\n", segs::USER_DATA, i));
        }
        let out = ring_asm::assemble(&asm).expect("user program");
        for (i, w) in out.words.iter().enumerate() {
            machine
                .phys_mut()
                .poke(code_store.wrapping_add(i as u32), *w)
                .expect("code poke");
        }
        // Argument values.
        for i in 0..n_args.max(1) {
            machine
                .phys_mut()
                .poke(data_store.wrapping_add(i), Word::new(u64::from(10 + i)))
                .expect("data poke");
        }

        let mut fixture = Soft645 {
            machine,
            desc,
            user_entry: 0,
            stats: table,
        };
        fixture.reset(n_args);
        fixture
    }

    /// Resets the processor to the start of the user program (ring 4,
    /// ring-4 descriptor segment), with X7 = `n_args`.
    pub fn reset(&mut self, n_args: u32) {
        self.machine.clear_halt();
        self.machine.load_dbr(Dbr::new(
            self.desc[4],
            segs::SLOTS,
            SegNo::new(segs::STACK_BASE).expect("segno"),
        ));
        self.machine.set_ipr(Ipr::new(
            Ring::R4,
            SegAddr::new(
                SegNo::new(segs::USER_CODE).expect("segno"),
                WordNo::new(self.user_entry).expect("entry"),
            ),
        ));
        for n in 0..8 {
            self.machine.set_pr(
                n,
                PtrReg::new(
                    Ring::R4,
                    SegAddr::from_parts(segs::USER_CODE, 0).expect("addr"),
                ),
            );
        }
        self.machine.set_xreg(7, n_args);
    }

    /// Runs one complete call/return round trip, returning the cycles
    /// it consumed.
    ///
    /// # Panics
    ///
    /// Panics if the run does not halt cleanly.
    pub fn run_once(&mut self, n_args: u32) -> u64 {
        self.reset(n_args);
        let before = self.machine.cycles();
        let exit = self.machine.run(10_000);
        assert_eq!(exit, RunExit::Halted, "soft645 round trip must halt");
        self.machine.cycles() - before
    }

    /// The result word the service stored.
    pub fn result(&self) -> Word {
        let d = self.desc[4].wrapping_add(2 * segs::USER_DATA);
        let w0 = self.machine.phys().peek(d).expect("sdw");
        let w1 = self.machine.phys().peek(d.wrapping_add(1)).expect("sdw");
        let base = ring_core::sdw::Sdw::unpack(w0, w1).addr;
        self.machine
            .phys()
            .peek(base.wrapping_add(63))
            .expect("result")
    }

    /// Gatekeeper statistics.
    pub fn stats(&self) -> SoftStats {
        self.stats.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_is_mediated_twice_and_computes() {
        let mut f = Soft645::new(3);
        let cycles = f.run_once(3);
        assert!(cycles > 0);
        let st = f.stats();
        // run_once after new(): new() only resets, so exactly one round
        // trip has happened.
        assert_eq!(st.crossings, 1, "one downward crossing");
        assert_eq!(st.returns, 1, "one upward return");
        assert_eq!(st.args_validated, 3);
        assert_eq!(st.refused, 0);
        assert_eq!(f.result().raw(), 10 + 11 + 12);
    }

    #[test]
    fn cost_grows_with_argument_count() {
        let c1 = Soft645::new(1).run_once(1);
        let c8 = Soft645::new(8).run_once(8);
        assert!(
            c8 > c1 + 7 * cost::PER_ARG,
            "software validation cost is per-argument: {c1} vs {c8}"
        );
    }

    #[test]
    fn repeated_runs_are_stable() {
        let mut f = Soft645::new(2);
        let a = f.run_once(2);
        let b = f.run_once(2);
        assert_eq!(a, b, "steady-state cost is deterministic");
        assert_eq!(f.stats().crossings, 2);
    }
}
