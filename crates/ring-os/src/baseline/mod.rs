//! Comparison baselines for the evaluation.
//!
//! * [`soft645`] — software-implemented rings as on the Honeywell 645:
//!   one descriptor segment per ring, every ring crossing trapping to a
//!   software gatekeeper that validates the gate and arguments and
//!   switches the DBR.
//! * [`two_mode`] — the traditional supervisor/user two-mode machine:
//!   every protected operation is a trap into the kernel.
//! * [`graham67`] — Graham's 1967 partial hardware proposal (from the
//!   paper's Background): brackets in hardware, software intervention
//!   on all ring crossings.
//! * [`hardware`] — the matched fixture running the same workload on
//!   the paper's hardware mechanisms, for like-for-like comparison.

pub mod graham67;
pub mod hardware;
pub mod soft645;
pub mod two_mode;
