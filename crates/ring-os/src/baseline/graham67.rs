//! Graham's 1967 partial hardware implementation.
//!
//! From the paper's Background section: "Graham, in 1967, proposed a
//! partial hardware implementation of rings of protection which
//! included three ring numbers embedded in segment descriptor words,
//! and a processor ring register, but which **still required software
//! intervention on all ring crossings**."
//!
//! This baseline sits between the 645 software scheme and the paper's
//! full hardware: per-reference validation (brackets, effective rings)
//! is free hardware work and there is a single descriptor segment per
//! process — no DBR switching, no gatekeeper argument validation — but
//! every CALL that would change the ring, and the matching RETURN,
//! traps to a software ring-crossing handler.
//!
//! Modelling: the service segment's gate extension is withheld
//! (`R3 == R2`), so a cross-ring CALL faults (`AboveGateExtension`) and
//! the handler validates the gate against a software table and performs
//! the downward switch. The matching upward return also required
//! software in Graham's scheme; since our machine *would* perform it in
//! hardware, the handler plants a sentinel return pointer into a
//! trap-only segment, so the callee's RETURN faults and the handler
//! completes the upward switch — software intervention on both
//! crossings, exactly as the Background describes.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::access::vector;
use ring_core::addr::{SegAddr, SegNo, WordNo};
use ring_core::registers::{Ipr, PtrReg};
use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;
use ring_core::word::Word;
use ring_cpu::machine::RunExit;
use ring_cpu::native::NativeAction;
use ring_cpu::testkit::World;

/// Software crossing costs (cheaper than the 645 gatekeeper: no
/// argument validation — the hardware brackets handle references — and
/// no descriptor-segment switch).
pub mod cost {
    /// Gate-table lookup and ring switch on the way down.
    pub const CROSS_DOWN: u64 = 18;
    /// Return validation and ring switch on the way up.
    pub const CROSS_UP: u64 = 14;
}

/// Segment numbers.
pub mod segs {
    /// User code.
    pub const USER_CODE: u32 = 10;
    /// User data.
    pub const USER_DATA: u32 = 11;
    /// The ring-1 service.
    pub const SERVICE: u32 = 20;
    /// The sentinel "return lands here and traps" segment.
    pub const SENTINEL: u32 = 30;
}

/// Crossing statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrahamStats {
    /// Software-mediated downward crossings.
    pub downs: u64,
    /// Software-mediated upward returns.
    pub ups: u64,
}

/// The Graham-1967 fixture: ring-4 user code calling a ring-1 service
/// with `n_args` arguments, both crossings mediated by software while
/// all per-reference validation stays in hardware.
pub struct Graham67 {
    /// The underlying world.
    pub world: World,
    stats: Rc<RefCell<GrahamStats>>,
}

impl Graham67 {
    /// Builds the fixture (same workload as the other baselines).
    pub fn new(n_args: u32) -> Graham67 {
        let mut world = World::new();
        let code = world.add_segment(
            segs::USER_CODE,
            SdwBuilder::procedure(Ring::R4, Ring::R4, Ring::R4).bound_words(256),
        );
        world.add_segment(
            segs::USER_DATA,
            SdwBuilder::data(Ring::R4, Ring::R4).bound_words(128),
        );
        // The service: brackets in hardware, but NO gate extension —
        // the cross-ring call must trap for software.
        let service = world.add_segment(
            segs::SERVICE,
            SdwBuilder::procedure(Ring::R1, Ring::R1, Ring::R1)
                .gates(1)
                .bound_words(16),
        );
        // Sentinel segment: nothing is executable here at any ring the
        // callee can name, so a RETURN through it always traps.
        world.add_segment(
            segs::SENTINEL,
            SdwBuilder::procedure(Ring::R0, Ring::R0, Ring::R0).bound_words(16),
        );
        world.add_standard_stacks(16);
        let trap = world.add_trap_segment();

        let stats = Rc::new(RefCell::new(GrahamStats::default()));
        type Pending = (Ring, SegAddr);
        let pending: Rc<RefCell<Vec<Pending>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let stats = stats.clone();
            let pending = pending.clone();
            world.machine.register_native(trap, move |m, entry| {
                let v = entry.value();
                if v != vector::ACCESS_VIOLATION && v != vector::DOWNWARD_RETURN {
                    return Ok(NativeAction::Halt);
                }
                let (_, _, target, _) = m.fault_info()?;
                let mut state = m.saved_state()?;
                if target.segno.value() == segs::SERVICE && target.wordno == WordNo::ZERO {
                    // The downward crossing: validate the software gate
                    // table (one entry), switch the ring register, and
                    // plant the sentinel return pointer.
                    stats.borrow_mut().downs += 1;
                    m.charge(cost::CROSS_DOWN);
                    pending
                        .borrow_mut()
                        .push((state.ipr.ring, state.prs[2].addr));
                    state.prs[2] = PtrReg::new(
                        Ring::R1,
                        SegAddr::from_parts(segs::SENTINEL, 0).expect("sentinel"),
                    );
                    state.ipr = Ipr::new(Ring::R1, target);
                    m.set_saved_state(&state)?;
                    return Ok(NativeAction::Resume);
                }
                if target.segno.value() == segs::SENTINEL {
                    // The upward crossing: complete the return.
                    let Some((ring, cont)) = pending.borrow_mut().pop() else {
                        return Ok(NativeAction::Halt);
                    };
                    stats.borrow_mut().ups += 1;
                    m.charge(cost::CROSS_UP);
                    state.ipr = Ipr::new(ring, cont);
                    for pr in state.prs.iter_mut() {
                        *pr = pr.with_ring_floor(ring);
                    }
                    m.set_saved_state(&state)?;
                    return Ok(NativeAction::Resume);
                }
                Ok(NativeAction::Halt)
            });
        }

        // The service body: per-reference hardware validation of
        // arguments (this scheme HAS effective rings), then RETURN via
        // the planted sentinel.
        world.machine.register_native(service, |m, _| {
            let ap = m.pr(1);
            let n = m.xreg(7);
            let mut sum = Word::ZERO;
            for i in 0..n {
                let argp = m.arg_pointer(ap, i)?;
                sum = sum.wrapping_add(m.read_validated(argp)?);
            }
            m.write_validated(
                PtrReg::new(
                    m.pr(1).ring,
                    SegAddr::from_parts(segs::USER_DATA, 63).expect("result"),
                ),
                sum,
            )?;
            Ok(NativeAction::Return { via: m.pr(2) })
        });

        // Identical user program to the other fixtures.
        let mut asm = String::from(
            "
        eap pr1, args
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0
ret0:   drl 0o777
gatep:  its 4, 20, 0
args:
",
        );
        for i in 0..n_args.max(1) {
            asm.push_str(&format!("        its 4, {}, {}\n", segs::USER_DATA, i));
        }
        let out = ring_asm::assemble(&asm).expect("user program");
        for (i, w) in out.words.iter().enumerate() {
            world.poke(code, i as u32, *w);
        }
        let data = SegNo::new(segs::USER_DATA).expect("segno");
        for i in 0..n_args.max(1) {
            world.poke(data, i, Word::new(u64::from(10 + i)));
        }

        let mut f = Graham67 { world, stats };
        f.reset(n_args);
        f
    }

    /// Resets to the start of the user program.
    pub fn reset(&mut self, n_args: u32) {
        self.world.machine.clear_halt();
        let code = SegNo::new(segs::USER_CODE).expect("segno");
        self.world
            .machine
            .set_ipr(Ipr::new(Ring::R4, SegAddr::new(code, WordNo::ZERO)));
        for n in 0..8 {
            self.world
                .machine
                .set_pr(n, PtrReg::new(Ring::R4, SegAddr::new(code, WordNo::ZERO)));
        }
        self.world.machine.set_xreg(7, n_args);
    }

    /// Runs one round trip, returning its cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if the run does not halt cleanly.
    pub fn run_once(&mut self, n_args: u32) -> u64 {
        self.reset(n_args);
        let before = self.world.machine.cycles();
        let exit = self.world.machine.run(10_000);
        assert_eq!(exit, RunExit::Halted, "graham67 round trip must halt");
        self.world.machine.cycles() - before
    }

    /// The result word the service stored.
    pub fn result(&self) -> Word {
        self.world
            .peek(SegNo::new(segs::USER_DATA).expect("segno"), 63)
    }

    /// Crossing statistics.
    pub fn stats(&self) -> GrahamStats {
        *self.stats.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::hardware::HardRings;
    use crate::baseline::soft645::Soft645;

    #[test]
    fn both_crossings_are_software_but_compute_matches() {
        let mut f = Graham67::new(3);
        let cycles = f.run_once(3);
        assert!(cycles > 0);
        assert_eq!(f.result().raw(), 10 + 11 + 12);
        let st = f.stats();
        assert_eq!(st.downs, 1);
        assert_eq!(st.ups, 1);
    }

    #[test]
    fn sits_between_645_and_full_hardware() {
        let n = 2;
        let hard = HardRings::new(n, Ring::R1).run_once(n);
        let graham = Graham67::new(n).run_once(n);
        let soft = Soft645::new(n).run_once(n);
        assert!(
            hard < graham && graham < soft,
            "cost ordering 1971-hardware < Graham-67 < 645-software: \
             {hard} < {graham} < {soft}"
        );
    }

    #[test]
    fn argument_cost_is_hardware_not_gatekeeper() {
        // Unlike the 645 gatekeeper, Graham's scheme validates argument
        // references in hardware: the crossing cost is flat in the
        // argument count (only the service's own reads grow).
        let c1 = Graham67::new(1).run_once(1);
        let c8 = Graham67::new(8).run_once(8);
        let hard1 = HardRings::new(1, Ring::R1).run_once(1);
        let hard8 = HardRings::new(8, Ring::R1).run_once(8);
        assert_eq!(
            c8 - c1,
            hard8 - hard1,
            "per-argument growth identical to full hardware"
        );
    }
}
