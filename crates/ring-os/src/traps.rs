//! The ring-0 trap dispatcher.
//!
//! Installed as the native body of the trap segment; entered by the
//! hardware at `vector` after it has forced ring 0 and saved the
//! processor state. Handles:
//!
//! * **segment faults** — demand loading of initiated segments (memory
//!   multiplexing, a ring-0 function in the paper's layering);
//! * **page faults** — demand paging of large segments;
//! * **timer runout** — processor multiplexing (round-robin);
//! * **upward calls / downward returns** — the two ring crossings the
//!   hardware hands to software, implemented with a per-process
//!   push-down stack of dynamically created return gates;
//! * **I/O completions**;
//! * **derail `EXIT_CODE`** — orderly process exit;
//! * everything else — process abort.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::access::{vector, Fault};
use ring_core::addr::{SegAddr, SegNo};
use ring_core::registers::Ipr;
use ring_cpu::machine::Machine;
use ring_cpu::native::NativeAction;
use ring_segmem::layout::PhysAllocator;
use ring_segmem::paging::{pages_for, Ptw, PAGE_WORDS};

use crate::conventions::{segs, PR_RP};
use crate::services::SMALL_SEGMENT_WORDS;
use crate::state::OsState;

/// The derail code user programs raise to exit cleanly.
pub const EXIT_CODE: u32 = 0o777;

/// Installs the trap dispatcher on the machine.
pub fn install(
    machine: &mut Machine,
    state: Rc<RefCell<OsState>>,
    alloc: Rc<RefCell<PhysAllocator>>,
) {
    machine.register_native(SegNo::new(segs::TRAP).expect("segno"), move |m, entry| {
        let mut s = state.borrow_mut();
        let mut a = alloc.borrow_mut();
        dispatch(m, &mut s, &mut a, entry.value())
    });
}

fn dispatch(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    v: u32,
) -> Result<NativeAction, Fault> {
    match v {
        vector::SEGMENT_FAULT => {
            let (_, _, addr, _) = m.fault_info()?;
            s.stats.segment_faults += 1;
            match load_segment(m, s, a, addr.segno.value()) {
                Ok(()) => Ok(NativeAction::Resume),
                Err(reason) => abort_current(m, s, &reason),
            }
        }
        vector::PAGE_FAULT => {
            let (_, _, addr, _) = m.fault_info()?;
            s.stats.page_faults += 1;
            match load_page(m, s, a, addr) {
                Ok(()) => Ok(NativeAction::Resume),
                Err(reason) => abort_current(m, s, &reason),
            }
        }
        vector::TIMER_RUNOUT => {
            s.stats.schedules += 1;
            schedule(m, s)
        }
        vector::IO_COMPLETION => {
            s.stats.io_completions += 1;
            Ok(NativeAction::Resume)
        }
        vector::UPWARD_CALL => {
            s.stats.upward_calls += 1;
            if !s.processes.is_empty() {
                s.current_process_mut().upward_calls += 1;
            }
            upward_call(m, s)
        }
        vector::DOWNWARD_RETURN => {
            s.stats.downward_returns += 1;
            downward_return(m, s)
        }
        vector::DERAIL => {
            let (_, _, _, detail) = m.fault_info()?;
            if detail.raw() as u32 == EXIT_CODE {
                abort_current(m, s, "exit")
            } else {
                abort_current(m, s, &format!("derail {}", detail.raw()))
            }
        }
        _ => {
            let fault = m.last_fault();
            abort_current(
                m,
                s,
                &fault
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| format!("vector {v}")),
            )
        }
    }
}

/// Brings an initiated segment into memory (first reference).
fn load_segment(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    segno: u32,
) -> Result<(), String> {
    let entry = s
        .current_process()
        .lookup(segno)
        .cloned()
        .ok_or_else(|| format!("segment fault on unknown segment {segno}"))?;
    let sn = SegNo::new(segno).expect("segno");
    let mut sdw = m
        .segment_descriptor(sn)
        .map_err(|e| format!("descriptor read: {e}"))?;
    // Shared segments: if another process (or this one, earlier)
    // already brought the segment in, map the same storage.
    if let Some(img) = s.fs.segment(entry.id).image {
        sdw.addr = img.addr;
        sdw.unpaged = img.unpaged;
        sdw.present = true;
        m.store_descriptor(sn, &sdw)
            .map_err(|e| format!("descriptor write: {e}"))?;
        s.current_process_mut()
            .kst
            .get_mut(&segno)
            .expect("entry just looked up")
            .loaded = true;
        return Ok(());
    }
    let data = s.fs.segment(entry.id).data.clone();
    if data.len() <= SMALL_SEGMENT_WORDS {
        let words = sdw.length_words();
        let base = a.alloc(words).map_err(|e| format!("out of memory: {e}"))?;
        for (i, w) in data.iter().enumerate() {
            m.phys_mut()
                .poke(base.wrapping_add(i as u32), *w)
                .map_err(|e| e.to_string())?;
        }
        sdw.addr = base;
        sdw.unpaged = true;
    } else {
        let npages = pages_for(data.len() as u32);
        let pt = a.alloc(npages).map_err(|e| format!("out of memory: {e}"))?;
        for i in 0..npages {
            m.phys_mut()
                .poke(pt.wrapping_add(i), Ptw::MISSING.pack())
                .map_err(|e| e.to_string())?;
        }
        sdw.addr = pt;
        sdw.unpaged = false;
    }
    sdw.present = true;
    m.store_descriptor(sn, &sdw)
        .map_err(|e| format!("descriptor write: {e}"))?;
    s.fs.segment_mut(entry.id).image = Some(crate::fs::LoadedImage {
        addr: sdw.addr,
        unpaged: sdw.unpaged,
    });
    s.current_process_mut()
        .kst
        .get_mut(&segno)
        .expect("entry just looked up")
        .loaded = true;
    Ok(())
}

/// Brings one page of a paged segment into memory.
fn load_page(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    addr: SegAddr,
) -> Result<(), String> {
    let segno = addr.segno.value();
    let entry = s
        .current_process()
        .lookup(segno)
        .cloned()
        .ok_or_else(|| format!("page fault on unknown segment {segno}"))?;
    let sdw = m
        .segment_descriptor(addr.segno)
        .map_err(|e| format!("descriptor read: {e}"))?;
    if sdw.unpaged {
        return Err("page fault on unpaged segment".into());
    }
    let page = addr.wordno.value() / PAGE_WORDS;
    let frame = a.alloc_frame().map_err(|e| format!("out of frames: {e}"))?;
    let base = frame * PAGE_WORDS;
    let data = &s.fs.segment(entry.id).data;
    let lo = (page * PAGE_WORDS) as usize;
    let hi = ((page + 1) * PAGE_WORDS) as usize;
    for (i, w) in data
        .iter()
        .skip(lo)
        .take(hi.saturating_sub(lo).min(data.len().saturating_sub(lo)))
        .enumerate()
    {
        m.phys_mut()
            .poke(
                ring_core::addr::AbsAddr::from_bits(u64::from(base + i as u32)),
                *w,
            )
            .map_err(|e| e.to_string())?;
    }
    let ptw = Ptw::present(frame).ok_or("frame number overflow")?;
    m.phys_mut()
        .poke(sdw.addr.wrapping_add(page), ptw.pack())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Round-robin processor multiplexing on timer runout.
fn schedule(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let cur = s.current;
    let running = m.saved_state()?;
    s.processes[cur].saved = Some(running);
    // Next runnable process that has a saved state to resume.
    let n = s.processes.len();
    let next = (1..=n)
        .map(|k| (cur + k) % n)
        .find(|&i| s.processes[i].aborted.is_none() && s.processes[i].saved.is_some());
    if let Some(next) = next {
        s.current = next;
        s.schedule_trace.push(next);
        let dbr = s.processes[next].dbr;
        let resume = s.processes[next].saved.take().expect("checked");
        m.load_dbr(dbr);
        m.set_saved_state(&resume)?;
    } else {
        s.processes[cur].saved = None;
    }
    let quantum = s.quantum;
    m.set_timer(Some(quantum));
    Ok(NativeAction::Resume)
}

/// Software-mediated upward call: validate the target, push a dynamic
/// return gate, and enter the higher ring.
fn upward_call(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let (_, eff_ring, target, _) = m.fault_info()?;
    let mut state = m.saved_state()?;
    let sdw = match m.segment_descriptor(target.segno) {
        Ok(s) => s,
        Err(_) => return abort_current(m, s, "upward call: bad target segment"),
    };
    // Software validation mirroring Fig. 8: the target must be
    // executable, entered at a gate, and genuinely above the caller.
    if !sdw.execute || !sdw.in_bounds(target.wordno) {
        return abort_current(m, s, "upward call: target not executable");
    }
    if !sdw.is_gate(target.wordno) {
        return abort_current(m, s, "upward call: not a gate");
    }
    let new_ring = sdw.r1;
    if new_ring <= eff_ring {
        return abort_current(m, s, "upward call: not actually upward");
    }
    // The caller's declared return point (PR2) becomes the dynamic
    // return gate; the saved IPR is the CALL itself.
    let caller_ring = state.ipr.ring;
    let continuation = Ipr::new(caller_ring, state.prs[PR_RP].addr);
    s.push_return_gate(caller_ring, continuation);
    // Enter the higher ring: floor every PR ring, as a hardware upward
    // switch would.
    state.ipr = Ipr::new(new_ring, target);
    for pr in state.prs.iter_mut() {
        *pr = pr.with_ring_floor(new_ring);
    }
    m.set_saved_state(&state)?;
    Ok(NativeAction::Resume)
}

/// Software-mediated downward return: verify against the top return
/// gate and restore the caller's ring.
fn downward_return(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let (_, _, target, _) = m.fault_info()?;
    let Some((gate_ring, continuation)) = s.pop_return_gate() else {
        s.stats.forged_returns_refused += 1;
        return abort_current(m, s, "downward return with no return gate");
    };
    // The returning procedure must name exactly the continuation the
    // upward call recorded ("the intervening software verifies the
    // restored stack pointer register value").
    if target != continuation.addr {
        s.stats.forged_returns_refused += 1;
        s.current_process_mut()
            .return_gates
            .push((gate_ring, continuation));
        return abort_current(m, s, "downward return to wrong continuation");
    }
    let mut state = m.saved_state()?;
    state.ipr = Ipr::new(gate_ring, continuation.addr);
    m.set_saved_state(&state)?;
    Ok(NativeAction::Resume)
}

/// Aborts the current process; switches to another runnable process or
/// halts the machine if none remains.
fn abort_current(m: &mut Machine, s: &mut OsState, reason: &str) -> Result<NativeAction, Fault> {
    if reason != "exit" {
        s.stats.aborts += 1;
    }
    let cur = s.current;
    s.processes[cur].aborted = Some(reason.to_string());
    let n = s.processes.len();
    let next = (1..=n)
        .map(|k| (cur + k) % n)
        .find(|&i| s.processes[i].aborted.is_none() && s.processes[i].saved.is_some());
    if let Some(next) = next {
        s.current = next;
        s.schedule_trace.push(next);
        let dbr = s.processes[next].dbr;
        let resume = s.processes[next].saved.take().expect("checked");
        m.load_dbr(dbr);
        m.set_saved_state(&resume)?;
        Ok(NativeAction::Resume)
    } else {
        Ok(NativeAction::Halt)
    }
}
