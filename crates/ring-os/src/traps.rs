//! The ring-0 trap dispatcher.
//!
//! Installed as the native body of the trap segment; entered by the
//! hardware at `vector` after it has forced ring 0 and saved the
//! processor state. Handles:
//!
//! * **segment faults** — demand loading of initiated segments (memory
//!   multiplexing, a ring-0 function in the paper's layering);
//! * **page faults** — demand paging of large segments, with CLOCK
//!   eviction to a simulated drum when a physical-frame budget is
//!   configured; a *major* fault (page refilled from the drum) blocks
//!   the faulting process for the transfer latency and dispatches
//!   another;
//! * **timer runout** — processor multiplexing: round-robin over the
//!   ready queue, blocked processes skipped;
//! * **upward calls / downward returns** — the two ring crossings the
//!   hardware hands to software, implemented with a per-process
//!   push-down stack of dynamically created return gates;
//! * **I/O completions** — wake processes blocked on the channel;
//! * **derail `EXIT_CODE`** — orderly process exit;
//! * **derail `IO_WAIT_CODE`** — block until the channel named in the
//!   A register completes, instead of spinning on a status word;
//! * **parity errors** — classify and repair the damaged word through
//!   [`crate::recover`], then re-check the protection invariants
//!   ([`crate::invariants`]); unrepairable damage kills one process,
//!   never the system;
//! * **I/O errors** — a channel watchdog fired in place of a lost
//!   completion interrupt: wake the stranded waiter;
//! * everything else — process abort.
//!
//! Demand paging additionally consumes armed drum transfer errors from
//! the chaos engine: a failed read is retried with exponential backoff
//! (bounded — the process dies after [`MAX_DRUM_RETRIES`]), a failed
//! write is retried immediately.
//!
//! Every dispatch — timer preemption, block, wake, abort — goes
//! through `dispatch_to`, which reloads the DBR (flushing the SDW
//! cache and TLB with it, exactly as the paper's hardware requires on
//! an address-space switch) and notes the decision on the scheduler
//! trace and span stream.

use std::cell::RefCell;
use std::rc::Rc;

use ring_core::access::{vector, Fault};
use ring_core::addr::{AbsAddr, SegAddr, SegNo};
use ring_core::registers::Ipr;
use ring_cpu::io::NUM_CHANNELS;
use ring_cpu::machine::Machine;
use ring_cpu::native::NativeAction;
use ring_sched::BlockReason;
use ring_segmem::frames::{sweep_out, FrameOwner};
use ring_segmem::layout::PhysAllocator;
use ring_segmem::paging::{pages_for, Ptw, PAGE_WORDS};
use ring_segmem::PageKey;

use crate::conventions::{segs, PR_RP};
use crate::services::SMALL_SEGMENT_WORDS;
use crate::state::OsState;

/// The derail code user programs raise to exit cleanly.
pub const EXIT_CODE: u32 = 0o777;

/// The derail code that blocks the process until the I/O channel named
/// in the A register completes (the supervisor's "wait" primitive).
pub const IO_WAIT_CODE: u32 = 0o776;

/// Consecutive drum-read failures a page-in survives before the
/// supervisor gives up and kills the faulting process.
pub const MAX_DRUM_RETRIES: u32 = 3;

/// Installs the trap dispatcher on the machine.
pub fn install(
    machine: &mut Machine,
    state: Rc<RefCell<OsState>>,
    alloc: Rc<RefCell<PhysAllocator>>,
) {
    machine.register_native(SegNo::new(segs::TRAP).expect("segno"), move |m, entry| {
        let mut s = state.borrow_mut();
        let mut a = alloc.borrow_mut();
        dispatch(m, &mut s, &mut a, entry.value())
    });
}

fn dispatch(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    v: u32,
) -> Result<NativeAction, Fault> {
    match v {
        vector::SEGMENT_FAULT => {
            let (_, _, addr, _) = m.fault_info()?;
            s.stats.segment_faults += 1;
            match load_segment(m, s, a, addr.segno.value()) {
                Ok(()) => Ok(NativeAction::Resume),
                Err(reason) => abort_current(m, s, &reason),
            }
        }
        vector::PAGE_FAULT => {
            let (_, _, addr, _) = m.fault_info()?;
            s.stats.page_faults += 1;
            match load_page(m, s, a, addr) {
                Ok(None) => Ok(NativeAction::Resume),
                Ok(Some(wake_at)) => {
                    // Major fault: the process sleeps out the drum
                    // transfer. The saved IPR points at the faulting
                    // instruction, so it restarts transparently on
                    // wake-up.
                    let saved = m.saved_state()?;
                    let cur = s.current;
                    s.processes[cur].saved = Some(saved);
                    s.sched.block(cur, BlockReason::PageWait { wake_at });
                    next_or_idle(m, s)
                }
                Err(reason) => abort_current(m, s, &reason),
            }
        }
        vector::TIMER_RUNOUT => {
            s.stats.schedules += 1;
            schedule(m, s)
        }
        vector::IO_COMPLETION => {
            s.stats.io_completions += 1;
            if let Some(Fault::IoCompletion { channel }) = m.last_fault() {
                s.sched.wake_io(channel);
            }
            Ok(NativeAction::Resume)
        }
        vector::PARITY_ERROR => {
            let (_, _, _, detail) = m.fault_info()?;
            let abs = detail.raw() as u32;
            let outcome = crate::recover::recover_parity(m, s, abs);
            if crate::invariants::check(m, s).is_err() {
                s.chaos.invariant_failures += 1;
            }
            match outcome {
                crate::recover::ParityOutcome::Recovered => Ok(NativeAction::Resume),
                crate::recover::ParityOutcome::KillCurrent(reason) => {
                    s.chaos.killed += 1;
                    abort_current(m, s, &reason)
                }
            }
        }
        vector::IO_ERROR => {
            // The channel watchdog fired in place of a completion whose
            // interrupt was lost. The transfer itself finished (the
            // device did the work; only the interrupt vanished), so
            // waking the stranded waiter fully recovers.
            let (_, _, _, detail) = m.fault_info()?;
            let channel = (detail.raw() >> 18) as u8;
            s.chaos.io_timeouts += 1;
            s.chaos.recovered += 1;
            s.sched.wake_io(channel);
            Ok(NativeAction::Resume)
        }
        vector::UPWARD_CALL => {
            s.stats.upward_calls += 1;
            if !s.processes.is_empty() {
                s.current_process_mut().upward_calls += 1;
            }
            upward_call(m, s)
        }
        vector::DOWNWARD_RETURN => {
            s.stats.downward_returns += 1;
            downward_return(m, s)
        }
        vector::DERAIL => {
            let (_, _, _, detail) = m.fault_info()?;
            let code = detail.raw() as u32;
            if code == EXIT_CODE {
                abort_current(m, s, "exit")
            } else if code == IO_WAIT_CODE {
                io_wait(m, s)
            } else {
                abort_current(m, s, &format!("derail {}", detail.raw()))
            }
        }
        _ => {
            let fault = m.last_fault();
            abort_current(
                m,
                s,
                &fault
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| format!("vector {v}")),
            )
        }
    }
}

/// Brings an initiated segment into memory (first reference).
fn load_segment(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    segno: u32,
) -> Result<(), String> {
    let entry = s
        .current_process()
        .lookup(segno)
        .cloned()
        .ok_or_else(|| format!("segment fault on unknown segment {segno}"))?;
    let sn = SegNo::new(segno).expect("segno");
    let mut sdw = m
        .segment_descriptor(sn)
        .map_err(|e| format!("descriptor read: {e}"))?;
    // Shared segments: if another process (or this one, earlier)
    // already brought the segment in, map the same storage.
    if let Some(img) = s.fs.segment(entry.id).image {
        sdw.addr = img.addr;
        sdw.unpaged = img.unpaged;
        sdw.present = true;
        m.store_descriptor(sn, &sdw)
            .map_err(|e| format!("descriptor write: {e}"))?;
        s.current_process_mut()
            .kst
            .get_mut(&segno)
            .expect("entry just looked up")
            .loaded = true;
        return Ok(());
    }
    let data = s.fs.segment(entry.id).data.clone();
    if data.len() <= SMALL_SEGMENT_WORDS {
        let words = sdw.length_words();
        let base = a.alloc(words).map_err(|e| format!("out of memory: {e}"))?;
        for (i, w) in data.iter().enumerate() {
            m.phys_mut()
                .poke(base.wrapping_add(i as u32), *w)
                .map_err(|e| e.to_string())?;
        }
        sdw.addr = base;
        sdw.unpaged = true;
    } else {
        let npages = pages_for(data.len() as u32);
        let pt = a.alloc(npages).map_err(|e| format!("out of memory: {e}"))?;
        for i in 0..npages {
            m.phys_mut()
                .poke(pt.wrapping_add(i), Ptw::MISSING.pack())
                .map_err(|e| e.to_string())?;
        }
        sdw.addr = pt;
        sdw.unpaged = false;
    }
    sdw.present = true;
    m.store_descriptor(sn, &sdw)
        .map_err(|e| format!("descriptor write: {e}"))?;
    s.fs.segment_mut(entry.id).image = Some(crate::fs::LoadedImage {
        addr: sdw.addr,
        unpaged: sdw.unpaged,
    });
    s.current_process_mut()
        .kst
        .get_mut(&segno)
        .expect("entry just looked up")
        .loaded = true;
    Ok(())
}

/// Brings one page of a paged segment into memory.
///
/// Under a frame budget the frame comes from the CLOCK pool, possibly
/// evicting a victim page to the backing store first (with a full
/// translation shoot-down, since the victim may be mapped in any
/// address space). Returns `Ok(Some(wake_at))` when the fill came from
/// the drum — a *major* fault whose transfer latency the caller must
/// sleep out — and `Ok(None)` for a *minor* fault filled from the file
/// image.
fn load_page(
    m: &mut Machine,
    s: &mut OsState,
    a: &mut PhysAllocator,
    addr: SegAddr,
) -> Result<Option<u64>, String> {
    let segno = addr.segno.value();
    let entry = s
        .current_process()
        .lookup(segno)
        .cloned()
        .ok_or_else(|| format!("page fault on unknown segment {segno}"))?;
    let sdw = m
        .segment_descriptor(addr.segno)
        .map_err(|e| format!("descriptor read: {e}"))?;
    if sdw.unpaged {
        return Err("page fault on unpaged segment".into());
    }
    let page = addr.wordno.value() / PAGE_WORDS;
    let ptw_addr = sdw.addr.wrapping_add(page);
    let cur = s.current;
    let key = PageKey {
        seg: entry.id.0,
        page,
    };
    // An armed drum read error hits before any frame changes hands:
    // the fill would come from the drum and the transfer fails. Retry
    // with exponential backoff by leaving the PTW missing — the
    // instruction re-faults after the sleep — and give up (killing the
    // process, not the system) after MAX_DRUM_RETRIES.
    if s.backing.contains(key) && m.chaos_mut().take_drum_read_error() {
        let attempts = s.drum_attempts.entry((cur, segno, page)).or_insert(0);
        *attempts += 1;
        let n = *attempts;
        s.chaos.drum_retries += 1;
        if n > MAX_DRUM_RETRIES {
            s.drum_attempts.remove(&(cur, segno, page));
            return Err(format!(
                "drum read for segment {segno} page {page} failed after {MAX_DRUM_RETRIES} retries"
            ));
        }
        return Ok(Some(m.cycles() + (s.page_in_latency << n)));
    }
    let mut victim = None;
    let frame = match s.frames.as_mut() {
        Some(pool) => {
            let got = pool
                .acquire(
                    a,
                    m.phys_mut(),
                    FrameOwner {
                        pid: cur,
                        segno,
                        page,
                        ptw_addr,
                    },
                )
                .map_err(|e| format!("frame acquisition: {e}"))?;
            victim = got.victim;
            got.frame
        }
        None => a.alloc_frame().map_err(|e| format!("out of frames: {e}"))?,
    };
    if let Some(v) = victim {
        // Sweep the victim out to the drum under its stored-segment
        // identity (several processes may map the same segment through
        // one page table), unmap its PTW, and shoot down every cached
        // translation: the victim may be mapped in any address space,
        // and the CLOCK sweep also cleared used bits that the TLB
        // would otherwise keep stale.
        let vseg = s.processes[v.owner.pid]
            .lookup(v.owner.segno)
            .map(|e| e.id.0)
            .ok_or_else(|| {
                format!(
                    "victim page has no KST entry: pid {} segno {}",
                    v.owner.pid, v.owner.segno
                )
            })?;
        let words =
            sweep_out(m.phys_mut(), &v, frame, PAGE_WORDS as usize).map_err(|e| e.to_string())?;
        // An armed drum write error fails the first transfer of the
        // victim to the drum; the supervisor retries (modelled as an
        // immediate success — the words are still in hand).
        if m.chaos_mut().take_drum_write_error() {
            s.chaos.drum_retries += 1;
            s.chaos.recovered += 1;
        }
        s.backing.store(
            PageKey {
                seg: vseg,
                page: v.owner.page,
            },
            words,
        );
        s.sched.stats.evictions += 1;
        m.translator_mut().flush_cache();
    }
    let base = frame * PAGE_WORDS;
    let fetched = s.backing.fetch(key);
    let major = fetched.is_some();
    if let Some(words) = fetched {
        // Refill from the drum (consuming the drum copy, which goes
        // stale the moment the page is writable in core). The words
        // are copied eagerly for simulation simplicity; the block the
        // caller applies models the transfer time.
        for (i, w) in words.iter().enumerate() {
            m.phys_mut()
                .poke(AbsAddr::from_bits(u64::from(base + i as u32)), *w)
                .map_err(|e| e.to_string())?;
        }
    } else {
        let data = &s.fs.segment(entry.id).data;
        let lo = (page * PAGE_WORDS) as usize;
        let hi = ((page + 1) * PAGE_WORDS) as usize;
        for (i, w) in data
            .iter()
            .skip(lo)
            .take(hi.saturating_sub(lo).min(data.len().saturating_sub(lo)))
            .enumerate()
        {
            m.phys_mut()
                .poke(AbsAddr::from_bits(u64::from(base + i as u32)), *w)
                .map_err(|e| e.to_string())?;
        }
    }
    let ptw = Ptw::present(frame).ok_or("frame number overflow")?;
    m.phys_mut()
        .poke(sdw.addr.wrapping_add(page), ptw.pack())
        .map_err(|e| e.to_string())?;
    s.processes[cur].page_faults += 1;
    // The fill succeeded: any drum-retry history for this page has
    // resolved into a recovery.
    if s.drum_attempts.remove(&(cur, segno, page)).is_some() {
        s.chaos.recovered += 1;
    }
    if major {
        s.sched.stats.page_faults_major += 1;
        Ok(Some(m.cycles() + s.page_in_latency))
    } else {
        s.sched.stats.page_faults_minor += 1;
        Ok(None)
    }
}

/// Round-robin processor multiplexing on timer runout: the preempted
/// process goes to the back of the ready queue and the head runs next.
fn schedule(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let cur = s.current;
    let running = m.saved_state()?;
    s.processes[cur].saved = Some(running);
    s.sched.wake_due(m.cycles());
    s.sched.make_ready(cur);
    let next = pop_ready(s).expect("current process is on the ready queue");
    if next != cur {
        s.sched.stats.preemptions += 1;
        s.processes[cur].preemptions += 1;
    }
    dispatch_to(m, s, next)?;
    m.set_timer(Some(s.quantum));
    Ok(NativeAction::Resume)
}

/// Blocks the current process until the I/O channel named in its A
/// register completes (derail `IO_WAIT_CODE`).
fn io_wait(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let mut saved = m.saved_state()?;
    let channel = (saved.a.raw() as usize) % NUM_CHANNELS;
    // The saved IPR points at the DRL itself; resume past it once the
    // wait is over.
    saved.ipr = Ipr::new(
        saved.ipr.ring,
        SegAddr::new(saved.ipr.addr.segno, saved.ipr.addr.wordno.wrapping_add(1)),
    );
    if !m.io().busy(channel) {
        // The completion already arrived; nothing to wait for.
        m.set_saved_state(&saved)?;
        return Ok(NativeAction::Resume);
    }
    let cur = s.current;
    s.processes[cur].saved = Some(saved);
    s.sched.block(
        cur,
        BlockReason::IoWait {
            channel: channel as u8,
        },
    );
    next_or_idle(m, s)
}

/// Pops ready processes until a live one surfaces (aborted processes
/// may linger on the queue if they died while waiting).
fn pop_ready(s: &mut OsState) -> Option<usize> {
    while let Some(pid) = s.sched.pop_next() {
        if s.processes[pid].aborted.is_none() {
            return Some(pid);
        }
    }
    None
}

/// Gives the processor to `next`: reload its DBR (flushing the SDW
/// cache and TLB — the address space changed), restore its saved state
/// into the trap save area, and note the dispatch for the trace.
fn dispatch_to(m: &mut Machine, s: &mut OsState, next: usize) -> Result<(), Fault> {
    if next != s.current {
        s.sched.stats.context_switches += 1;
    }
    s.current = next;
    s.schedule_trace.push(next);
    let dbr = s.processes[next].dbr;
    let resume = s.processes[next]
        .saved
        .take()
        .expect("dispatched process has a saved state");
    m.load_dbr(dbr);
    m.set_saved_state(&resume)?;
    m.note_sched(next as u32);
    Ok(())
}

/// Dispatches the next ready process, or idles the machine forward to
/// the next wake-up event if every live process is blocked.
fn next_or_idle(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    if let Some(next) = pop_ready(s) {
        dispatch_to(m, s, next)?;
        if m.timer().is_some() {
            m.set_timer(Some(s.quantum));
        }
        return Ok(NativeAction::Resume);
    }
    idle_advance(m, s)
}

/// Every live process is blocked: charge simulated time straight to
/// the earliest wake-up event (page-in completion or awaited channel
/// completion), wake whoever it unblocks, and dispatch. Halts the
/// machine when nothing will ever wake.
fn idle_advance(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let now = m.cycles();
    let mut target = s.sched.next_page_wake();
    for pid in 0..s.processes.len() {
        if let Some(BlockReason::IoWait { channel }) = s.sched.blocked_reason(pid) {
            match m.io().channel_done_at(channel as usize) {
                Some(t) => target = Some(target.map_or(t, |x| x.min(t))),
                // The channel already went quiet (its completion was
                // delivered before the block): wake the waiter now.
                None => {
                    s.sched.wake_io(channel);
                }
            }
        }
    }
    if let Some(next) = pop_ready(s) {
        dispatch_to(m, s, next)?;
        if m.timer().is_some() {
            m.set_timer(Some(s.quantum));
        }
        return Ok(NativeAction::Resume);
    }
    let Some(target) = target else {
        // No pending page-in, no awaited channel: nothing will ever
        // wake a process again.
        return Ok(NativeAction::Halt);
    };
    let delta = target.saturating_sub(now);
    m.charge(delta);
    s.sched.stats.idle_cycles += delta;
    s.sched.wake_due(target);
    for pid in 0..s.processes.len() {
        if let Some(BlockReason::IoWait { channel }) = s.sched.blocked_reason(pid) {
            if matches!(m.io().channel_done_at(channel as usize), Some(t) if t <= target) {
                s.sched.wake_io(channel);
            }
        }
    }
    match pop_ready(s) {
        Some(next) => {
            dispatch_to(m, s, next)?;
            if m.timer().is_some() {
                // The idle charge lands on this same step, so pad the
                // quantum by it: the woken process still gets a full
                // quantum of its own execution.
                m.set_timer(Some(s.quantum + delta));
            }
            Ok(NativeAction::Resume)
        }
        None => Ok(NativeAction::Halt),
    }
}

/// Software-mediated upward call: validate the target, push a dynamic
/// return gate, and enter the higher ring.
fn upward_call(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let (_, eff_ring, target, _) = m.fault_info()?;
    let mut state = m.saved_state()?;
    let sdw = match m.segment_descriptor(target.segno) {
        Ok(s) => s,
        Err(_) => return abort_current(m, s, "upward call: bad target segment"),
    };
    // Software validation mirroring Fig. 8: the target must be
    // executable, entered at a gate, and genuinely above the caller.
    if !sdw.execute || !sdw.in_bounds(target.wordno) {
        return abort_current(m, s, "upward call: target not executable");
    }
    if !sdw.is_gate(target.wordno) {
        return abort_current(m, s, "upward call: not a gate");
    }
    let new_ring = sdw.r1;
    if new_ring <= eff_ring {
        return abort_current(m, s, "upward call: not actually upward");
    }
    // The caller's declared return point (PR2) becomes the dynamic
    // return gate; the saved IPR is the CALL itself.
    let caller_ring = state.ipr.ring;
    let continuation = Ipr::new(caller_ring, state.prs[PR_RP].addr);
    s.push_return_gate(caller_ring, continuation);
    // Enter the higher ring: floor every PR ring, as a hardware upward
    // switch would.
    state.ipr = Ipr::new(new_ring, target);
    for pr in state.prs.iter_mut() {
        *pr = pr.with_ring_floor(new_ring);
    }
    m.set_saved_state(&state)?;
    Ok(NativeAction::Resume)
}

/// Software-mediated downward return: verify against the top return
/// gate and restore the caller's ring.
fn downward_return(m: &mut Machine, s: &mut OsState) -> Result<NativeAction, Fault> {
    let (_, _, target, _) = m.fault_info()?;
    let Some((gate_ring, continuation)) = s.pop_return_gate() else {
        s.stats.forged_returns_refused += 1;
        return abort_current(m, s, "downward return with no return gate");
    };
    // The returning procedure must name exactly the continuation the
    // upward call recorded ("the intervening software verifies the
    // restored stack pointer register value").
    if target != continuation.addr {
        s.stats.forged_returns_refused += 1;
        s.current_process_mut()
            .return_gates
            .push((gate_ring, continuation));
        return abort_current(m, s, "downward return to wrong continuation");
    }
    let mut state = m.saved_state()?;
    state.ipr = Ipr::new(gate_ring, continuation.addr);
    m.set_saved_state(&state)?;
    Ok(NativeAction::Resume)
}

/// Kills process `pid` without dispatching: marks it aborted and
/// removes it from the scheduler. Chaos recovery uses this to confine
/// damage to a process that is not currently running; the running
/// process's trap return stays valid.
pub(crate) fn kill_pid(s: &mut OsState, pid: usize, reason: &str) {
    if s.processes[pid].aborted.is_some() {
        return;
    }
    s.stats.aborts += 1;
    s.processes[pid].aborted = Some(reason.to_string());
    s.processes[pid].saved = None;
    s.sched.remove(pid);
}

/// Aborts the current process; switches to another live process (or
/// idles to one's wake-up) or halts the machine if none remains.
fn abort_current(m: &mut Machine, s: &mut OsState, reason: &str) -> Result<NativeAction, Fault> {
    if reason != "exit" {
        s.stats.aborts += 1;
    }
    let cur = s.current;
    s.processes[cur].aborted = Some(reason.to_string());
    s.processes[cur].saved = None;
    s.sched.remove(cur);
    s.sched.wake_due(m.cycles());
    next_or_idle(m, s)
}
