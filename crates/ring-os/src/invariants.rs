//! The chaos invariant checker.
//!
//! After a recovery claims success, these checks re-establish that the
//! protection state the paper's hardware depends on is actually
//! consistent:
//!
//! 1. every present SDW in every live process's descriptor segment
//!    satisfies R1 ≤ R2 ≤ R3 (the access-bracket ordering of Fig. 2 —
//!    a descriptor violating it grants rings it should deny);
//! 2. the frame pool maps each physical frame at most once, and every
//!    resident slot's PTW still names the slot's frame (no two
//!    processes can reach one writable frame through divergent
//!    bookkeeping);
//! 3. every SDW-cache entry agrees with the in-memory descriptor pair
//!    it caches for the current address space (a stale cached
//!    descriptor would outlive the salvager's repairs).
//!
//! The checker never panics and never takes a counted (faultable)
//! read: it peeks, and skips words that are still poisoned — those are
//! damage awaiting their own trap, not inconsistency.

use ring_cpu::machine::Machine;
use ring_segmem::paging::Ptw;

use ring_core::sdw::Sdw;

use crate::state::OsState;

/// Which protection invariant a violation broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantClass {
    /// An SDW grants access its brackets should deny (R1 ≤ R2 ≤ R3
    /// broken in a live descriptor segment).
    BracketOrdering,
    /// The frame pool and the page tables disagree about who owns a
    /// physical frame.
    FramePool,
    /// A cached SDW no longer matches the descriptor pair it caches.
    SdwCacheCoherence,
}

impl InvariantClass {
    /// Stable machine-readable name (report keys, quarantine lists).
    pub fn key(self) -> &'static str {
        match self {
            InvariantClass::BracketOrdering => "bracket_ordering",
            InvariantClass::FramePool => "frame_pool",
            InvariantClass::SdwCacheCoherence => "sdw_cache_coherence",
        }
    }
}

/// A typed invariant violation: which invariant broke, plus a
/// human-readable description of the first inconsistency found.
///
/// This is an error type (not an assertion) because a violation is an
/// *outcome* the fleet supervisor classifies and heals around — a
/// machine whose recovery left the protection state inconsistent is
/// restarted from a checkpoint, and quarantined if that keeps failing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke.
    pub class: InvariantClass,
    /// What, precisely, is inconsistent.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.class.key(), self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(class: InvariantClass, detail: String) -> InvariantViolation {
    InvariantViolation { class, detail }
}

/// Checks the protection invariants; returns the first violation
/// found, typed by invariant class.
pub fn check(m: &Machine, s: &OsState) -> Result<(), InvariantViolation> {
    check_descriptor_brackets(m, s).map_err(|d| violation(InvariantClass::BracketOrdering, d))?;
    check_frame_pool(m, s).map_err(|d| violation(InvariantClass::FramePool, d))?;
    check_sdw_cache_coherence(m, s).map_err(|d| violation(InvariantClass::SdwCacheCoherence, d))
}

/// Invariant 1: bracket ordering in every live descriptor segment.
fn check_descriptor_brackets(m: &Machine, s: &OsState) -> Result<(), String> {
    for (pid, p) in s.processes.iter().enumerate() {
        if p.aborted.is_some() {
            continue;
        }
        let dbr = p.dbr;
        for segno in 0..dbr.bound {
            let a0 = dbr.addr.wrapping_add(2 * segno);
            let a1 = a0.wrapping_add(1);
            if m.phys().is_poisoned(a0) || m.phys().is_poisoned(a1) {
                continue;
            }
            let (Ok(w0), Ok(w1)) = (m.phys().peek(a0), m.phys().peek(a1)) else {
                return Err(format!(
                    "pid {pid}: descriptor pair for segment {segno} is out of physical bounds"
                ));
            };
            let sdw = Sdw::unpack(w0, w1);
            if sdw.present && !(sdw.r1 <= sdw.r2 && sdw.r2 <= sdw.r3) {
                return Err(format!(
                    "pid {pid}: segment {segno} violates R1 <= R2 <= R3 ({:?} {:?} {:?})",
                    sdw.r1, sdw.r2, sdw.r3
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 2: frame-pool / page-table agreement.
fn check_frame_pool(m: &Machine, s: &OsState) -> Result<(), String> {
    let Some(pool) = s.frames.as_ref() else {
        return Ok(());
    };
    let mut seen = std::collections::HashSet::new();
    for &(frame, owner) in pool.resident_set() {
        if !seen.insert(frame) {
            return Err(format!("frame {frame} is resident in two pool slots"));
        }
        if m.phys().is_poisoned(owner.ptw_addr) {
            continue;
        }
        let Ok(w) = m.phys().peek(owner.ptw_addr) else {
            return Err(format!(
                "frame {frame}: PTW address {:#o} is out of physical bounds",
                owner.ptw_addr.value()
            ));
        };
        let ptw = Ptw::unpack(w);
        if !ptw.present || ptw.frame != frame {
            return Err(format!(
                "frame {frame}: pool says pid {} seg {} page {}, but the PTW maps {}",
                owner.pid,
                owner.segno,
                owner.page,
                if ptw.present {
                    format!("frame {}", ptw.frame)
                } else {
                    "nothing".to_string()
                }
            ));
        }
    }
    Ok(())
}

/// Invariant 3: the SDW cache agrees with the current descriptor
/// segment.
fn check_sdw_cache_coherence(m: &Machine, s: &OsState) -> Result<(), String> {
    if s.processes.is_empty() {
        return Ok(());
    }
    let dbr = s.processes[s.current].dbr;
    for entry in m.translator().export_cache_state().entries.iter().flatten() {
        let (segno, cached) = entry;
        let Some(a0) = dbr.sdw_addr(*segno) else {
            return Err(format!(
                "SDW cache holds segment {} beyond the descriptor bound",
                segno.value()
            ));
        };
        let a1 = a0.wrapping_add(1);
        if m.phys().is_poisoned(a0) || m.phys().is_poisoned(a1) {
            continue;
        }
        let (Ok(w0), Ok(w1)) = (m.phys().peek(a0), m.phys().peek(a1)) else {
            continue;
        };
        if Sdw::unpack(w0, w1) != *cached {
            return Err(format!(
                "SDW cache entry for segment {} disagrees with the descriptor segment",
                segno.value()
            ));
        }
    }
    Ok(())
}
