//! Access control lists.
//!
//! "The users that are permitted to access each segment are named by an
//! access control list associated with each segment. ... The gate list
//! and the numbers specifying the read, write, and execute brackets and
//! gate extension in each SDW all come from the access control list
//! entry which permitted the process to include the corresponding
//! segment in its virtual memory."
//!
//! The sole-occupant constraint of the paper's software facility is
//! enforced here too: "a program executing in ring n cannot specify R1,
//! R2, or R3 values of less than n in an access control list entry of
//! any segment."

use ring_core::ring::Ring;
use ring_core::sdw::SdwBuilder;

/// Mode flags of an ACL entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Modes {
    /// Read permitted.
    pub read: bool,
    /// Write permitted.
    pub write: bool,
    /// Execute permitted.
    pub execute: bool,
}

impl Modes {
    /// Read+write (data segment).
    pub const RW: Modes = Modes {
        read: true,
        write: true,
        execute: false,
    };
    /// Read+execute (pure procedure).
    pub const RE: Modes = Modes {
        read: true,
        write: false,
        execute: true,
    };
    /// Read only.
    pub const R: Modes = Modes {
        read: true,
        write: false,
        execute: false,
    };
    /// No access (an explicit null entry).
    pub const NONE: Modes = Modes {
        read: false,
        write: false,
        execute: false,
    };
}

/// One entry of an access control list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AclEntry {
    /// User name the entry applies to; `"*"` matches every user.
    pub user: String,
    /// Permission flags.
    pub modes: Modes,
    /// Ring brackets `(R1, R2, R3)` granted by this entry.
    pub rings: (Ring, Ring, Ring),
    /// Gate count granted by this entry.
    pub gates: u32,
}

impl AclEntry {
    /// Creates an entry, checking `R1 <= R2 <= R3`.
    pub fn new(
        user: &str,
        modes: Modes,
        rings: (Ring, Ring, Ring),
        gates: u32,
    ) -> Option<AclEntry> {
        let (r1, r2, r3) = rings;
        if !(r1 <= r2 && r2 <= r3) {
            return None;
        }
        Some(AclEntry {
            user: user.to_string(),
            modes,
            rings,
            gates,
        })
    }

    /// Applies the entry's access fields to an SDW builder (the ACL →
    /// SDW flow of the paper).
    pub fn apply(&self, b: SdwBuilder) -> SdwBuilder {
        b.rings(self.rings.0, self.rings.1, self.rings.2)
            .read(self.modes.read)
            .write(self.modes.write)
            .execute(self.modes.execute)
            .gates(self.gates)
    }
}

/// An access control list: ordered entries, first match wins.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// An empty list (no access for anyone).
    pub fn new() -> Acl {
        Acl::default()
    }

    /// A list with a single entry.
    pub fn single(entry: AclEntry) -> Acl {
        Acl {
            entries: vec![entry],
        }
    }

    /// Appends an entry (matched after all existing entries).
    pub fn push(&mut self, entry: AclEntry) {
        self.entries.push(entry);
    }

    /// Replaces the entry for exactly `user`, or appends one.
    ///
    /// Returns `Err` with a description if `setter_ring` violates the
    /// sole-occupant constraint: a program executing in ring n may not
    /// specify R1, R2 or R3 below n.
    pub fn set(&mut self, entry: AclEntry, setter_ring: Ring) -> Result<(), String> {
        let (r1, r2, r3) = entry.rings;
        if r1 < setter_ring || r2 < setter_ring || r3 < setter_ring {
            return Err(format!(
                "ring {setter_ring} may not grant brackets ({r1},{r2},{r3})"
            ));
        }
        match self.entries.iter_mut().find(|e| e.user == entry.user) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
        Ok(())
    }

    /// The first entry matching `user` (exact name before wildcard, in
    /// list order).
    pub fn lookup(&self, user: &str) -> Option<&AclEntry> {
        self.entries
            .iter()
            .find(|e| e.user == user || e.user == "*")
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: &str, top: Ring) -> AclEntry {
        AclEntry::new(user, Modes::RW, (top, top, top), 0).unwrap()
    }

    #[test]
    fn first_match_wins_and_wildcard_matches_all() {
        let mut acl = Acl::new();
        acl.push(entry("alice", Ring::R2));
        acl.push(entry("*", Ring::R5));
        assert_eq!(acl.lookup("alice").unwrap().rings.0, Ring::R2);
        assert_eq!(acl.lookup("bob").unwrap().rings.0, Ring::R5);
        let empty = Acl::new();
        assert!(empty.lookup("alice").is_none());
    }

    #[test]
    fn entry_ring_ordering_enforced() {
        assert!(AclEntry::new("u", Modes::R, (Ring::R3, Ring::R2, Ring::R4), 0).is_none());
        assert!(AclEntry::new("u", Modes::R, (Ring::R2, Ring::R2, Ring::R4), 0).is_some());
    }

    #[test]
    fn sole_occupant_constraint() {
        let mut acl = Acl::new();
        // Ring-4 program cannot grant ring-2 brackets.
        let e = entry("mallory", Ring::R2);
        assert!(acl.set(e.clone(), Ring::R4).is_err());
        // Ring-1 supervisor can.
        assert!(acl.set(e, Ring::R1).is_ok());
        // Ring-4 may grant ring-4-and-above brackets.
        assert!(acl.set(entry("bob", Ring::R5), Ring::R4).is_ok());
    }

    #[test]
    fn set_replaces_in_place() {
        let mut acl = Acl::new();
        acl.set(entry("alice", Ring::R4), Ring::R0).unwrap();
        acl.set(entry("alice", Ring::R5), Ring::R0).unwrap();
        assert_eq!(acl.len(), 1);
        assert_eq!(acl.lookup("alice").unwrap().rings.0, Ring::R5);
    }

    #[test]
    fn entry_applies_to_sdw() {
        let e = AclEntry::new("alice", Modes::RE, (Ring::R1, Ring::R1, Ring::R5), 3).unwrap();
        let sdw = e.apply(SdwBuilder::new()).build();
        assert!(sdw.read && sdw.execute && !sdw.write);
        assert_eq!(sdw.r1, Ring::R1);
        assert_eq!(sdw.r3, Ring::R5);
        assert_eq!(sdw.gate, 3);
    }
}
