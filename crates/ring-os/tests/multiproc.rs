//! End-to-end multiprogramming: DBR-switched processes sharing the
//! one simulated processor under a preemptive quantum and a physical
//! frame budget, with demand paging to a simulated drum.

use ring_cpu::machine::RunExit;
use ring_cpu::recorder::{replay, run_recorded, Recorder};
use ring_os::boot::{System, SystemConfig};
use ring_os::workload::{install_page_storm, GateStormSpec, StormProc, StormSpec};

fn build(spec: StormSpec, frames: u32, quantum: u64) -> (System, Vec<StormProc>) {
    let cfg = SystemConfig {
        quantum,
        frame_budget: Some(frames),
        ..SystemConfig::default()
    };
    let mut sys = System::boot_with(cfg);
    let procs = install_page_storm(&mut sys, &spec);
    sys.machine.set_timer(Some(quantum));
    (sys, procs)
}

#[test]
fn four_process_storm_completes_under_frame_pressure() {
    let spec = StormSpec {
        procs: 4,
        pages: 5,
        rounds: 30,
    };
    // 16 frames for a 20-page combined working set: the processes must
    // continually evict each other.
    let (mut sys, procs) = build(spec, 16, 400);
    let exit = sys.machine.run(5_000_000);
    assert_eq!(exit, RunExit::Halted, "storm should run to completion");
    let st = sys.state.borrow();
    for p in &procs {
        let ps = &st.processes[p.pid];
        assert_eq!(
            ps.aborted.as_deref(),
            Some("exit"),
            "process {} should exit cleanly",
            p.pid
        );
        assert!(
            ps.preemptions >= 1,
            "process {} should lose the processor at least once",
            p.pid
        );
        assert!(
            ps.page_faults >= 1,
            "process {} should take at least one page fault",
            p.pid
        );
    }
    let sc = st.sched.stats;
    assert!(sc.context_switches > 0, "processes should interleave");
    assert!(
        sc.evictions > 0,
        "20 pages under a 16-frame budget must evict"
    );
    assert!(
        sc.page_faults_major > 0,
        "evicted pages must fault back in from the drum"
    );
    assert!(
        sc.page_faults_minor >= 20,
        "every page's first touch is a minor fault"
    );
    assert!(!st.backing.is_empty() || st.backing.writes() > 0);
    drop(st);
    // The scheduler section reaches the metrics snapshot.
    let json = sys.metrics_json();
    assert!(json.contains("\"scheduler\""));
    assert!(json.contains("\"context_switches\""));
}

#[test]
fn storm_sweeps_increment_every_page() {
    // One process, frames fewer than its pages: every round re-faults
    // pages back in through the drum, and the idler sleeps out each
    // transfer (no other process is ready). The arithmetic must still
    // be exact: each page's first word ends at seed + rounds.
    let spec = StormSpec {
        procs: 1,
        pages: 5,
        rounds: 10,
    };
    let (mut sys, procs) = build(spec, 2, 1_000);
    let exit = sys.machine.run(2_000_000);
    assert_eq!(exit, RunExit::Halted);
    let st = sys.state.borrow();
    assert_eq!(st.processes[0].aborted.as_deref(), Some("exit"));
    assert!(st.sched.stats.page_faults_major > 0);
    assert!(
        st.sched.stats.idle_cycles > 0,
        "page waits idle the machine"
    );
    // Read the final page contents back: resident pages from their
    // frames, evicted pages from the drum.
    let entry = st.processes[0]
        .lookup(procs[0].data_segno)
        .expect("storm segment initiated");
    let seg = entry.id.0;
    drop(st);
    let sdw = sys.read_sdw(0, procs[0].data_segno);
    for page in 0..spec.pages {
        let key = ring_segmem::PageKey { seg, page };
        let st = sys.state.borrow();
        let want = 1 + u64::from(spec.rounds);
        let got = if let Some(words) = st.backing.peek(key) {
            words[0].raw()
        } else {
            let ptw = ring_segmem::paging::Ptw::unpack(
                sys.machine
                    .phys()
                    .peek(sdw.addr.wrapping_add(page))
                    .expect("ptw"),
            );
            assert!(ptw.present, "page neither on drum nor resident");
            sys.machine
                .phys()
                .peek(ring_core::addr::AbsAddr::from_bits(u64::from(
                    ptw.frame * ring_segmem::paging::PAGE_WORDS,
                )))
                .expect("frame word")
                .raw()
        };
        assert_eq!(got, want, "page {page} first word");
    }
}

#[test]
fn three_process_storm_replays_bit_identically() {
    let spec = StormSpec {
        procs: 3,
        pages: 5,
        rounds: 20,
    };
    // Record a run that takes page faults, evictions, and timer
    // preemptions.
    let (mut a, _) = build(spec, 8, 300);
    let mut rec = Recorder::start(&a.machine, "page-storm", 10_000);
    let exit = run_recorded(&mut a.machine, 5_000_000, &mut rec);
    assert_eq!(exit, RunExit::Halted);
    {
        let st = a.state.borrow();
        assert!(st.sched.stats.preemptions > 0, "recording has preemptions");
        assert!(st.sched.stats.evictions > 0, "recording has evictions");
    }
    let recording = rec.finish(&a.machine);

    // Replay in an identically rebuilt world: the host-side kernel
    // state re-evolves from the same start, and the machine must match
    // the recording bit for bit — including every timer-interrupt
    // delivery point, which the final image's cycle and register state
    // pins down exactly.
    let (mut b, _) = build(spec, 8, 300);
    let report = replay(&mut b.machine, &recording).expect("replay applies");
    assert!(report.ok, "divergence: {:?}", report.mismatch);
    // The replayed kernel made the same scheduling decisions.
    assert_eq!(
        a.state.borrow().schedule_trace,
        b.state.borrow().schedule_trace,
        "schedule trace must replay identically"
    );
}

#[test]
fn scheduler_paints_per_process_spans() {
    let spec = StormSpec {
        procs: 2,
        pages: 5,
        rounds: 10,
    };
    let (mut sys, _) = build(spec, 4, 300);
    sys.enable_spans();
    let exit = sys.machine.run(2_000_000);
    assert_eq!(exit, RunExit::Halted);
    let events = sys.take_span_events();
    let mut pids_seen = std::collections::BTreeSet::new();
    for ev in &events {
        if let ring_trace::SpanEvent::Sched { pid, .. } = ev {
            pids_seen.insert(*pid);
        }
    }
    assert_eq!(
        pids_seen.into_iter().collect::<Vec<_>>(),
        vec![0, 1],
        "both processes get scheduler spans"
    );
    let doc = ring_trace::perfetto::chrome_trace_json(&events, sys.machine.cycles());
    assert!(doc.contains("\"run p0\""));
    assert!(doc.contains("\"run p1\""));
}

#[test]
fn storm_matches_with_fastpath_off() {
    // The scheduler, pager, and idler must be invisible to the
    // fastpath ablation: both machines make the same decisions and
    // retire the same instructions.
    let spec = StormSpec {
        procs: 3,
        pages: 5,
        rounds: 10,
    };
    let run = |fastpath: bool| {
        let cfg = SystemConfig {
            quantum: 350,
            frame_budget: Some(8),
            fastpath,
            ..SystemConfig::default()
        };
        let mut sys = System::boot_with(cfg);
        install_page_storm(&mut sys, &spec);
        sys.machine.set_timer(Some(350));
        let exit = sys.machine.run(5_000_000);
        assert_eq!(exit, RunExit::Halted);
        let st = sys.state.borrow();
        (
            sys.machine.stats().instructions,
            st.schedule_trace.clone(),
            st.sched.stats,
        )
    };
    let (instr_on, trace_on, stats_on) = run(true);
    let (instr_off, trace_off, stats_off) = run(false);
    assert_eq!(instr_on, instr_off, "instruction counts must match");
    assert_eq!(trace_on, trace_off, "schedule traces must match");
    assert_eq!(stats_on, stats_off, "scheduler counters must match");
}

#[test]
fn processes_keep_private_page_contents() {
    // Every process seeds its pages with pid+1 and adds `rounds`; if
    // paging ever let one process's write land in another's frame, the
    // final sums would be off.
    let spec = StormSpec {
        procs: 3,
        pages: 5,
        rounds: 15,
    };
    let (mut sys, procs) = build(spec, 4, 250);
    let exit = sys.machine.run(5_000_000);
    assert_eq!(exit, RunExit::Halted);
    let sdws: Vec<_> = procs
        .iter()
        .map(|p| sys.read_sdw(p.pid, p.data_segno))
        .collect();
    let st = sys.state.borrow();
    for (p, sdw) in procs.iter().zip(&sdws) {
        let seg = st.processes[p.pid].lookup(p.data_segno).unwrap().id.0;
        let want = p.pid as u64 + 1 + u64::from(spec.rounds);
        for page in 0..spec.pages {
            let key = ring_segmem::PageKey { seg, page };
            let got = if let Some(words) = st.backing.peek(key) {
                words[0].raw()
            } else {
                let ptw = ring_segmem::paging::Ptw::unpack(
                    sys.machine
                        .phys()
                        .peek(sdw.addr.wrapping_add(page))
                        .expect("ptw"),
                );
                assert!(ptw.present);
                sys.machine
                    .phys()
                    .peek(ring_core::addr::AbsAddr::from_bits(u64::from(
                        ptw.frame * ring_segmem::paging::PAGE_WORDS,
                    )))
                    .expect("frame word")
                    .raw()
            };
            assert_eq!(got, want, "process {} page {page}", p.pid);
        }
    }
}

#[test]
fn gate_storm_processes_hammer_ring1_and_exit() {
    let cfg = SystemConfig {
        quantum: 400,
        ..SystemConfig::default()
    };
    let mut sys = System::boot_with(cfg);
    let spec = GateStormSpec {
        procs: 3,
        rounds: 20,
    };
    let procs = ring_os::workload::install_gate_storm(&mut sys, &spec);
    sys.enable_metrics();
    sys.machine.set_timer(Some(400));
    let exit = sys.machine.run(5_000_000);
    assert_eq!(exit, RunExit::Halted, "gate storm should run to completion");
    let st = sys.state.borrow();
    for p in &procs {
        let ps = &st.processes[p.pid];
        assert_eq!(
            ps.aborted.as_deref(),
            Some("exit"),
            "process {} should exit cleanly",
            p.pid
        );
        assert_eq!(
            ps.gate_calls,
            u64::from(spec.rounds),
            "process {} should make one gate call per round",
            p.pid
        );
    }
    assert!(
        st.sched.stats.context_switches > 0,
        "processes should interleave under the quantum"
    );
}

#[test]
fn boot_from_image_replays_bit_identically_and_stays_clean() {
    let cfg = SystemConfig {
        quantum: 400,
        phys_words: 1 << 17,
        frame_budget: Some(8),
        ..SystemConfig::default()
    };
    let spec = StormSpec {
        procs: 2,
        pages: 5,
        rounds: 10,
    };
    // Prototype: boot, install, freeze — never run.
    let mut proto = System::boot_with(cfg);
    install_page_storm(&mut proto, &spec);
    let image = proto.freeze();

    let run = |mut sys: System| {
        install_page_storm(&mut sys, &spec);
        sys.enable_metrics();
        sys.machine.set_timer(Some(400));
        let exit = sys.machine.run(5_000_000);
        assert_eq!(exit, RunExit::Halted);
        (sys.metrics_json(), sys.machine.phys().dirty_pages())
    };

    let (flat_json, _) = run(System::boot_with(cfg));
    let mut cow_sys = System::boot_from_image(&image);
    assert!(cow_sys.machine.phys().is_cow());
    let before_run = cow_sys.machine.phys().dirty_pages();
    assert_eq!(
        before_run, 0,
        "replaying the identical world build must dirty no pages"
    );
    install_page_storm(&mut cow_sys, &spec);
    assert_eq!(
        cow_sys.machine.phys().dirty_pages(),
        0,
        "replaying the identical workload install must dirty no pages"
    );
    cow_sys.enable_metrics();
    cow_sys.machine.set_timer(Some(400));
    let exit = cow_sys.machine.run(5_000_000);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(
        cow_sys.metrics_json(),
        flat_json,
        "copy-on-write boot must be architecturally invisible"
    );
    let dirty = cow_sys.machine.phys().dirty_pages() as usize;
    let total = image.words().div_ceil(1024);
    assert!(
        dirty < total / 2,
        "execution should dirty a minority of the image ({dirty}/{total})"
    );
}
