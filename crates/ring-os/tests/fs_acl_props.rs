//! Property tests of the storage hierarchy and access control lists.

use proptest::prelude::*;
use ring_core::ring::Ring;
use ring_os::acl::{Acl, AclEntry, Modes};
use ring_os::fs::{FileSystem, FsError};

fn arb_component() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn arb_path() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(arb_component(), 1..5)
}

proptest! {
    /// Every created segment resolves back to its own id, and its
    /// recorded path matches.
    #[test]
    fn created_paths_resolve(paths in proptest::collection::vec(arb_path(), 1..20)) {
        let mut fs = FileSystem::new();
        let mut created = Vec::new();
        for p in &paths {
            let path = p.join(">");
            match fs.create_segment(&path, Acl::new(), vec![]) {
                Ok(id) => created.push((path, id)),
                // Collisions with earlier paths (same name, or a
                // directory/segment conflict) are legitimate refusals.
                Err(FsError::Exists(_)) | Err(FsError::NotADirectory(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
        for (path, id) in created {
            prop_assert_eq!(fs.resolve(&path).unwrap(), id);
            prop_assert_eq!(&fs.segment(id).path, &path);
        }
    }

    /// Resolution never succeeds for a path that was not created (and
    /// is not a directory of one).
    #[test]
    fn unknown_paths_fail(p1 in arb_path(), p2 in arb_path()) {
        prop_assume!(p1 != p2);
        let mut fs = FileSystem::new();
        fs.create_segment(&p1.join(">"), Acl::new(), vec![]).unwrap();
        let other = p2.join(">");
        if other != p1.join(">") {
            prop_assert!(fs.resolve(&other).is_err());
        }
    }

    /// Search-step accounting is monotone: every resolve adds at least
    /// one scanned entry per component.
    #[test]
    fn search_steps_are_monotone(p in arb_path()) {
        let mut fs = FileSystem::new();
        let path = p.join(">");
        fs.create_segment(&path, Acl::new(), vec![]).unwrap();
        let before = fs.search_steps;
        fs.resolve(&path).unwrap();
        prop_assert!(fs.search_steps >= before + p.len() as u64);
    }

    /// ACL precedence: an exact entry ahead of the wildcard wins; a
    /// wildcard matches everyone else; entries added under the
    /// sole-occupant rule never carry brackets below the setter's ring.
    #[test]
    fn acl_precedence_and_sole_occupant(
        users in proptest::collection::vec("[a-z]{1,5}", 1..6),
        setter in 0u8..8,
        granted in 0u8..8,
    ) {
        let setter_ring = Ring::new(setter).unwrap();
        let g = Ring::new(granted).unwrap();
        let mut acl = Acl::new();
        let entry = AclEntry::new(&users[0], Modes::RW, (g, g, g), 0).unwrap();
        let res = acl.set(entry, setter_ring);
        if granted < setter {
            prop_assert!(res.is_err(), "sole occupant must refuse");
            prop_assert!(acl.lookup(&users[0]).is_none());
        } else {
            prop_assert!(res.is_ok());
            prop_assert_eq!(acl.lookup(&users[0]).unwrap().rings.0, g);
            // Wildcard after: other users hit the wildcard.
            let wild = AclEntry::new("*", Modes::R, (Ring::R7, Ring::R7, Ring::R7), 0).unwrap();
            acl.set(wild, setter_ring).unwrap();
            for u in users.iter().skip(1) {
                if u != &users[0] {
                    prop_assert_eq!(&acl.lookup(u).unwrap().user, "*");
                }
            }
        }
    }

    /// AclEntry::apply produces an SDW whose brackets equal the entry's.
    #[test]
    fn acl_entry_applies_exactly(
        r1 in 0u8..8,
        d2 in 0u8..8,
        d3 in 0u8..8,
        gates in 0u32..100,
        flags in any::<[bool; 3]>(),
    ) {
        let a = Ring::new(r1).unwrap();
        let b = Ring::new((r1 + d2).min(7)).unwrap();
        let c = Ring::new((r1 + d2 + d3).min(7)).unwrap();
        let entry = AclEntry::new(
            "u",
            Modes { read: flags[0], write: flags[1], execute: flags[2] },
            (a, b, c),
            gates,
        ).unwrap();
        let sdw = entry.apply(ring_core::sdw::SdwBuilder::new()).build();
        prop_assert_eq!(sdw.r1, a);
        prop_assert_eq!(sdw.r2, b);
        prop_assert_eq!(sdw.r3, c);
        prop_assert_eq!(sdw.read, flags[0]);
        prop_assert_eq!(sdw.write, flags[1]);
        prop_assert_eq!(sdw.execute, flags[2]);
        prop_assert_eq!(sdw.gate, gates);
    }
}
