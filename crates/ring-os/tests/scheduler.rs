//! Scheduler behaviour at scale: fairness over many processes,
//! survival of aborted processes, and the cost of context switches
//! (DBR load + SDW-cache flush) showing up in the accounting.

use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_cpu::machine::RunExit;
use ring_os::{System, SystemConfig};

/// Builds `n` processes, each incrementing a private counter forever,
/// and runs them under the round-robin scheduler.
fn counting_world(n: usize, quantum: u64) -> (System, Vec<(usize, u32)>) {
    let mut sys = System::boot_with(SystemConfig {
        quantum,
        ..SystemConfig::default()
    });
    let mut procs = Vec::new();
    for i in 0..n {
        let pid = sys.login(&format!("user{i}"));
        let data = sys.install_data(pid, Ring::R4, Ring::R4, &[Word::ZERO], 16);
        let src = format!(
            "
        eap pr4, ctr,*
loop:   aos pr4|0
        tra loop
ctr:    its 4, {}, 0
",
            data.segno
        );
        let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &src);
        procs.push((pid, data.segno, code.segno));
    }
    // Park everyone but process 0 ready-to-run; start 0 live.
    for &(pid, _, code) in procs.iter().skip(1) {
        sys.prepare(pid, code, 0, Ring::R4);
        sys.park(pid);
    }
    let (p0, _, c0) = procs[0];
    sys.prepare(p0, c0, 0, Ring::R4);
    sys.machine.set_timer(Some(quantum));
    let out = procs.iter().map(|&(pid, d, _)| (pid, d)).collect();
    (sys, out)
}

fn counters(sys: &System, procs: &[(usize, u32)]) -> Vec<u64> {
    procs
        .iter()
        .map(|&(pid, segno)| {
            let sdw = sys.read_sdw(pid, segno);
            sys.machine.phys().peek(sdw.addr).unwrap().raw()
        })
        .collect()
}

#[test]
fn ten_processes_share_fairly() {
    let (mut sys, procs) = counting_world(10, 300);
    assert_eq!(sys.machine.run(40_000), RunExit::BudgetExhausted);
    let counts = counters(&sys, &procs);
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(min > 0, "every process ran: {counts:?}");
    assert!(
        max <= 3 * min.max(1),
        "round-robin keeps shares within 3x: {counts:?}"
    );
    assert!(sys.stats().schedules as usize >= 10, "many switches");
}

#[test]
fn aborted_process_is_skipped_but_others_continue() {
    let mut sys = System::boot_with(SystemConfig {
        quantum: 300,
        ..SystemConfig::default()
    });
    // Process 0 loops forever; process 1 faults immediately.
    let p0 = sys.login("good");
    let d0 = sys.install_data(p0, Ring::R4, Ring::R4, &[Word::ZERO], 16);
    let c0 = {
        let src = format!(
            "
        eap pr4, ctr,*
loop:   aos pr4|0
        tra loop
ctr:    its 4, {}, 0
",
            d0.segno
        );
        sys.install_code(p0, Ring::R4, Ring::R4, 0, &src)
    };
    let p1 = sys.login("bad");
    let c1 = sys.install_code(
        p1,
        Ring::R4,
        Ring::R4,
        0,
        "
        eap pr4, wildp,*
        lda pr4|0           ; faults: segment 1 is ring-0 only
        drl 0o777
wildp:  its 4, 1, 100
",
    );
    sys.prepare(p1, c1.segno, 0, Ring::R4);
    sys.park(p1);
    sys.prepare(p0, c0.segno, 0, Ring::R4);
    sys.machine.set_timer(Some(300));
    assert_eq!(sys.machine.run(5_000), RunExit::BudgetExhausted);
    assert!(
        sys.state.borrow().processes[p1].aborted.is_some(),
        "the bad process aborted"
    );
    let sdw = sys.read_sdw(p0, d0.segno);
    let n0 = sys.machine.phys().peek(sdw.addr).unwrap().raw();
    assert!(n0 > 1000, "the good process kept the machine: {n0}");
}

#[test]
fn context_switches_flush_the_sdw_cache() {
    let (mut sys, _procs) = counting_world(2, 200);
    sys.machine.translator_mut().reset_cache_stats();
    sys.machine.run(5_000);
    let stats = sys.machine.translator().cache_stats();
    let switches = sys.stats().schedules;
    assert!(
        stats.flushes >= switches,
        "every DBR switch flushes: {} flushes vs {} switches",
        stats.flushes,
        switches
    );
    assert!(
        stats.misses > switches,
        "post-switch misses re-walk descriptors"
    );
}
