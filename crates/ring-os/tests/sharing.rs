//! Segment sharing: "a single segment may be part of several virtual
//! memories at the same time, allowing straightforward sharing of
//! segments among users" — with per-user brackets, because the SDW
//! fields "come from the access control list entry which permitted the
//! process to include the corresponding segment in its virtual memory".

use ring_core::ring::Ring;
use ring_core::word::Word;
use ring_cpu::machine::RunExit;
use ring_os::acl::{Acl, AclEntry, Modes};
use ring_os::conventions::{hcs, segs};
use ring_os::strings::encode_string;
use ring_os::{System, SystemConfig};

/// A program that initiates `path` (staged in its scratch segment),
/// then either writes `value` at word 5 or reads word 5 into
/// scratch[101].
fn initiate_then(sys: &mut System, pid: usize, path: &str, write_value: Option<u64>) -> u32 {
    let mut data = encode_string(path);
    data.resize(128, Word::ZERO);
    let scratch = sys.install_data(pid, Ring::R4, Ring::R4, &data, 128);
    let action = match write_value {
        Some(v) => format!(
            "
        lda ={v}
        sta pr4|110,*"
        ),
        None => "
        lda pr4|110,*
        sta pr4|101"
            .to_string(),
    };
    let src = format!(
        "
        eap pr4, scratchp,*
        eap pr1, args
        eap pr2, ret0
        eap pr3, gatep,*
        call pr3|0
ret0:   tnz out
        lda pr4|100
        als 18
        ora =5
        sta pr4|110
        stz pr4|111
{action}
        lda =0
out:    drl 0o777
gatep:  its 4, {hcs_seg}, {init}
scratchp: its 4, {sc}, 0
args:   its 4, {sc}, 0
        its 4, {sc}, 100
",
        hcs_seg = segs::HCS,
        init = hcs::INITIATE,
        sc = scratch.segno,
    );
    let code = sys.install_code(pid, Ring::R4, Ring::R4, 0, &src);
    assert_eq!(
        sys.run_user(pid, code.segno, 0, Ring::R4, 20_000),
        RunExit::Halted
    );
    scratch.segno
}

#[test]
fn writes_by_one_user_are_seen_by_another() {
    let mut sys = System::boot_with(SystemConfig::default());
    let mut acl = Acl::new();
    acl.push(AclEntry::new("alice", Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    acl.push(AclEntry::new("bob", Modes::R, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    sys.create_segment("shared>board", acl, vec![Word::ZERO; 16]);

    let alice = sys.login("alice");
    let bob = sys.login("bob");

    // Alice writes 0o555 at word 5 of the shared segment.
    initiate_then(&mut sys, alice, "shared>board", Some(0o555));
    assert_eq!(sys.machine.a().raw(), 0, "alice's write succeeded");

    // Bob reads word 5 through HIS OWN virtual memory: one shared
    // image, so he sees alice's write.
    let bob_scratch = initiate_then(&mut sys, bob, "shared>board", None);
    assert_eq!(sys.machine.a().raw(), 0, "bob's read succeeded");
    let sdw = sys.read_sdw(bob, bob_scratch);
    assert_eq!(
        sys.machine.phys().peek(sdw.addr.wrapping_add(101)).unwrap(),
        Word::new(0o555),
        "bob sees alice's write through the shared segment"
    );
    // Exactly one demand load happened for the shared segment (plus
    // nothing for bob beyond descriptor mapping).
    assert_eq!(sys.stats().segment_faults, 2, "both faulted...");
    // ...but the second fault mapped the existing image rather than
    // copying: the stored image is recorded once.
    let id = sys.state.borrow_mut().fs.resolve("shared>board").unwrap();
    assert!(sys.state.borrow().fs.segment(id).image.is_some());
}

#[test]
fn per_user_brackets_differ_on_the_same_segment() {
    // Bob's entry is read-only: his write to the shared segment must
    // fault even though alice's identical write succeeded.
    let mut sys = System::boot();
    let mut acl = Acl::new();
    acl.push(AclEntry::new("alice", Modes::RW, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    acl.push(AclEntry::new("bob", Modes::R, (Ring::R4, Ring::R4, Ring::R4), 0).unwrap());
    sys.create_segment("shared>board", acl, vec![Word::ZERO; 16]);

    let alice = sys.login("alice");
    let bob = sys.login("bob");
    initiate_then(&mut sys, alice, "shared>board", Some(1));
    assert_eq!(sys.machine.a().raw(), 0);

    initiate_then(&mut sys, bob, "shared>board", Some(2));
    let reason = sys.state.borrow().processes[bob].aborted.clone().unwrap();
    assert!(
        reason.contains("write") && reason.contains("permission flag off"),
        "bob's ACL entry grants no write: {reason}"
    );
}
